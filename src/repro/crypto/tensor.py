"""Encrypted tensors: Paillier homomorphisms lifted to whole arrays.

The protocol exchanges multi-dimensional tensors (Section II-A), so the
scalar homomorphic operations of :mod:`repro.crypto.paillier` are lifted
here to an :class:`EncryptedTensor` — a shape plus a flat tuple of
ciphertexts, with the accumulated fixed-point exponent threaded through so
the data provider knows how to rescale after decryption.

The linear primitives a neural network needs are provided directly:
element-wise addition, element-wise plaintext multiplication, and the
affine map ``y = W x + b`` (Eq. (3) of the paper), which fully-connected
and (via im2col) convolution layers reduce to.

:class:`PackedEncryptedTensor` is the lane-packed counterpart for
batched inference: one ciphertext per tensor *position*, carrying the
same position of B batch samples as fixed-width lanes
(:class:`repro.crypto.encoding.LanePacker`), so every homomorphic
operation — and every modular exponentiation underneath — serves all B
samples at once.  Both classes expose the same linear primitives; the
packed one keeps the invariant that its lanes always sit at the
packer's canonical offset (operations that disturb the offset rebias
before returning).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import PaillierEngine
    from .sparse import SparseMatvecPlan

from ..errors import EncodingError, KeyMismatchError
from .encoding import LanePacker, SignedEncoder
from .paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
)


def _flatten_int_array(values: np.ndarray) -> list[int]:
    """Flatten an integer ndarray to a list of Python ints (row-major)."""
    array = np.asarray(values)
    if array.dtype == object:
        # Object arrays hold arbitrary-precision Python ints (or other
        # integer-likes); coerce each cell explicitly.
        return [int(v) for v in array.reshape(-1).tolist()]
    if not np.issubdtype(array.dtype, np.integer):
        raise EncodingError(
            "EncryptedTensor operations need integer arrays; scale "
            "floats first (see repro.scaling)"
        )
    # .tolist() converts the whole buffer to Python ints in one C call.
    return array.reshape(-1).tolist()


class EncryptedTensor:
    """An encrypted multi-dimensional array under a single public key.

    Attributes:
        public_key: the Paillier key all elements are encrypted under.
        shape: logical tensor shape (row-major element order).
        exponent: accumulated base-10 fixed-point exponent of the
            plaintext values (decryption divides by ``10**exponent``).
    """

    __slots__ = ("public_key", "shape", "exponent", "_cells")

    def __init__(
        self,
        public_key: PaillierPublicKey,
        cells: Sequence[EncryptedNumber],
        shape: Tuple[int, ...],
        exponent: int = 0,
    ):
        size = 1
        for dim in shape:
            size *= dim
        if size != len(cells):
            raise EncodingError(
                f"shape {shape} implies {size} elements, got {len(cells)}"
            )
        self.public_key = public_key
        self.shape = tuple(shape)
        self.exponent = exponent
        self._cells = tuple(cells)

    # ------------------------------------------------------------------
    # Construction / deconstruction
    # ------------------------------------------------------------------

    @classmethod
    def encrypt(
        cls,
        values: np.ndarray,
        public_key: PaillierPublicKey,
        rng: random.Random | None = None,
        exponent: int = 0,
        engine: "PaillierEngine | None" = None,
    ) -> "EncryptedTensor":
        """Encrypt an integer ndarray element by element.

        Routed through the batched engine: with ``rng`` the output is
        bit-identical to the historical scalar loop; without it the
        blinding factors come from the engine's offline pool.

        Args:
            values: integer array (already scaled to fixed point).
            public_key: encryption key.
            rng: randomness source for probabilistic encryption; omit
                to draw blinding factors from the engine's pool.
            exponent: fixed-point exponent the integers carry.
            engine: batched crypto engine; defaults to the shared
                sequential engine for ``public_key``.
        """
        from .engine import default_engine

        values = np.asarray(values)
        if engine is None:
            engine = default_engine(public_key)
        encoder = SignedEncoder(public_key)
        cells = engine.encrypt_many(
            [encoder.encode(v) for v in _flatten_int_array(values)],
            rng=rng,
        )
        return cls(public_key, cells, values.shape, exponent)

    def decrypt(
        self,
        private_key: PaillierPrivateKey,
        engine: "PaillierEngine | None" = None,
    ) -> np.ndarray:
        """Decrypt to a signed-integer ndarray (dtype=object for headroom).

        Pass an ``engine`` holding the private key to decrypt in
        process-pool chunks."""
        encoder = SignedEncoder(self.public_key)
        if engine is not None:
            residues = engine.decrypt_many(self._cells)
        else:
            residues = [private_key.decrypt(cell) for cell in self._cells]
        flat = [encoder.decode(residue) for residue in residues]
        return np.array(flat, dtype=object).reshape(self.shape)

    def decrypt_float(
        self,
        private_key: PaillierPrivateKey,
        engine: "PaillierEngine | None" = None,
    ) -> np.ndarray:
        """Decrypt and rescale by the accumulated exponent to float64."""
        ints = self.decrypt(private_key, engine=engine)
        scale = 10 ** self.exponent
        return np.array(
            [int(v) / scale for v in ints.reshape(-1)], dtype=np.float64
        ).reshape(self.shape)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._cells)

    def cells(self) -> Tuple[EncryptedNumber, ...]:
        """The flat row-major ciphertext cells (read-only view)."""
        return self._cells

    def reshape(self, shape: Tuple[int, ...]) -> "EncryptedTensor":
        """Reinterpret the flat cells under a new shape (no crypto work)."""
        return EncryptedTensor(self.public_key, self._cells, shape,
                               self.exponent)

    def flatten(self) -> "EncryptedTensor":
        return self.reshape((self.size,))

    def gather(self, indices: Sequence[int]) -> "EncryptedTensor":
        """Select flat cells by index, e.g. a conv receptive field."""
        cells = [self._cells[i] for i in indices]
        return EncryptedTensor(
            self.public_key, cells, (len(cells),), self.exponent
        )

    @classmethod
    def concatenate(
        cls, parts: Sequence["EncryptedTensor"]
    ) -> "EncryptedTensor":
        """Concatenate flat tensors produced by partitioned threads."""
        if not parts:
            raise EncodingError("cannot concatenate zero tensors")
        key = parts[0].public_key
        exponent = parts[0].exponent
        cells: list[EncryptedNumber] = []
        for part in parts:
            if part.public_key.n != key.n:
                raise KeyMismatchError(
                    "cannot concatenate tensors under different keys"
                )
            if part.exponent != exponent:
                raise EncodingError(
                    "cannot concatenate tensors with different exponents: "
                    f"{part.exponent} vs {exponent}"
                )
            cells.extend(part.cells())
        return cls(key, cells, (len(cells),), exponent)

    # ------------------------------------------------------------------
    # Homomorphic arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "EncryptedTensor") -> None:
        if other.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "operands are encrypted under different keys"
            )
        if other.shape != self.shape:
            raise EncodingError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )
        if other.exponent != self.exponent:
            raise EncodingError(
                "fixed-point exponents differ: "
                f"{self.exponent} vs {other.exponent}"
            )

    def add(self, other: "EncryptedTensor") -> "EncryptedTensor":
        """Element-wise homomorphic addition of two encrypted tensors."""
        self._check_compatible(other)
        cells = [a + b for a, b in zip(self._cells, other.cells())]
        return EncryptedTensor(self.public_key, cells, self.shape,
                               self.exponent)

    def add_plain(
        self, values: np.ndarray, rng: random.Random, exponent: int = 0
    ) -> "EncryptedTensor":
        """Add a plaintext integer array (encrypted on the fly)."""
        plain = EncryptedTensor.encrypt(
            np.asarray(values), self.public_key, rng, exponent
        )
        return self.add(plain)

    def mul_plain(self, weights: np.ndarray) -> "EncryptedTensor":
        """Element-wise homomorphic multiplication by integer weights.

        The result's exponent is the sum of both operands' exponents
        when the weights carry one; callers pass scaled-integer weights
        and bump the exponent via :meth:`with_exponent`.
        """
        flat_w = _flatten_int_array(np.asarray(weights))
        if len(flat_w) != self.size:
            raise EncodingError(
                f"weight count {len(flat_w)} != tensor size {self.size}"
            )
        cells = [c * w for c, w in zip(self._cells, flat_w)]
        return EncryptedTensor(self.public_key, cells, self.shape,
                               self.exponent)

    def rerandomized(self, rng: random.Random) -> "EncryptedTensor":
        """Refresh every cell's randomness (same plaintexts)."""
        cells = [cell.rerandomized(rng) for cell in self._cells]
        return EncryptedTensor(self.public_key, cells, self.shape,
                               self.exponent)

    def with_exponent(self, exponent: int) -> "EncryptedTensor":
        """Return the same ciphertexts tagged with a new exponent."""
        return EncryptedTensor(self.public_key, self._cells, self.shape,
                               exponent)

    def affine(
        self,
        weights: np.ndarray,
        bias: "np.ndarray | EncryptedTensor",
        rng: random.Random | None = None,
        weight_exponent: int = 0,
        engine: "PaillierEngine | None" = None,
        plan: "SparseMatvecPlan | None" = None,
    ) -> "EncryptedTensor":
        """Compute ``y = W x + b`` homomorphically (Eq. (3) of the paper).

        Args:
            weights: integer matrix of shape (out_dim, in_dim).
            bias: either an integer vector of shape (out_dim,) — scaled
                to the *output* exponent (input + weight exponent) and
                encrypted on the fly — or an already-encrypted bias
                tensor of the same shape (the model provider's bias is
                static per stage, so callers cache its encryption).
            rng: randomness for encrypting a plaintext bias.
            weight_exponent: fixed-point exponent the weights carry; the
                output tensor's exponent is input + weight exponent.
            engine: batched crypto engine; when given, the matvec runs
                through its per-ciphertext power caches (and process
                pool, if configured) instead of the scalar loop.  Both
                paths produce identical ciphertexts.
            plan: optional per-layer sparse plan for a pruned/clustered
                weight matrix — routes through the engine's compressed
                ``fc_matvec`` (zero-skip, cluster dedup, cross-call
                power cache).  Implies the engine path (the shared
                default engine is used when ``engine`` is omitted).

        Returns:
            encrypted vector of shape (out_dim,).
        """
        if plan is not None and engine is None:
            from .engine import default_engine

            engine = default_engine(self.public_key)
        x = self.flatten()
        weights = np.asarray(weights)
        if weights.ndim != 2 or weights.shape[1] != x.size:
            raise EncodingError(
                f"weights shape {weights.shape} incompatible with input "
                f"size {x.size}"
            )
        out_dim = weights.shape[0]
        out_exponent = self.exponent + weight_exponent
        if isinstance(bias, EncryptedTensor):
            if bias.shape != (out_dim,):
                raise EncodingError(
                    f"encrypted bias shape {bias.shape} != ({out_dim},)"
                )
            if bias.public_key.n != self.public_key.n:
                raise KeyMismatchError(
                    "bias encrypted under a different key"
                )
            bias_cells = list(bias.cells())
        else:
            bias = np.asarray(bias)
            if bias.shape != (out_dim,):
                raise EncodingError(
                    f"bias shape {bias.shape} != ({out_dim},)"
                )
            encoder = SignedEncoder(self.public_key)
            if engine is not None:
                bias_cells = engine.encrypt_many(
                    [encoder.encode(int(b)) for b in bias], rng=rng,
                )
            else:
                if rng is None:
                    raise EncodingError(
                        "affine needs an rng or an engine to encrypt a "
                        "plaintext bias"
                    )
                bias_cells = [
                    self.public_key.encrypt(encoder.encode(int(b)), rng)
                    for b in bias
                ]
        cells = x.cells()
        if engine is not None:
            raw_cells = [c.ciphertext for c in cells]
            raw_bias = [b.ciphertext for b in bias_cells]
            if plan is not None:
                raw = engine.fc_matvec(raw_cells, weights, raw_bias,
                                       plan=plan)
            else:
                raw = engine.matvec(raw_cells, weights, raw_bias)
            out_cells = [EncryptedNumber(self.public_key, c) for c in raw]
            return EncryptedTensor(
                self.public_key, out_cells, (out_dim,), out_exponent
            )
        out_cells: list[EncryptedNumber] = []
        for j in range(out_dim):
            acc = bias_cells[j]
            row = weights[j]
            for i in range(x.size):
                w = int(row[i])
                if w == 0:
                    continue
                acc = acc + cells[i] * w
            out_cells.append(acc)
        return EncryptedTensor(
            self.public_key, out_cells, (out_dim,), out_exponent
        )


    def __repr__(self) -> str:
        return (
            f"EncryptedTensor(shape={self.shape}, exponent={self.exponent}, "
            f"key_size={self.public_key.key_size})"
        )


class PackedEncryptedTensor:
    """A batch of encrypted tensors, lane-packed one position per cell.

    Cell ``i`` encrypts the lane-packed batch-axis slice of flat tensor
    position ``i``: lane ``k`` of cell ``i`` holds sample ``k``'s value
    at position ``i``.  All homomorphic operations therefore touch
    every sample with a single modular exponentiation per position —
    the per-element cost is divided by the batch size.

    Invariant: the lanes of every cell sit at the packer's canonical
    offset.  Operations whose raw ciphertext algebra disturbs the
    offset (addition doubles it, plaintext multiplication scales it)
    rebias before returning — one extra modular multiply per cell.

    Attributes:
        public_key: the Paillier key all cells are encrypted under.
        packer: lane geometry (lanes, magnitude, guard bits).
        batch: occupied lanes (the batch size; may be < packer.lanes).
        shape: logical per-sample tensor shape (row-major cells).
        exponent: accumulated base-10 fixed-point exponent.
    """

    __slots__ = ("public_key", "packer", "batch", "shape", "exponent",
                 "_cells")

    def __init__(
        self,
        public_key: PaillierPublicKey,
        cells: Sequence[EncryptedNumber],
        shape: Tuple[int, ...],
        packer: LanePacker,
        batch: int,
        exponent: int = 0,
    ):
        size = 1
        for dim in shape:
            size *= dim
        if size != len(cells):
            raise EncodingError(
                f"shape {shape} implies {size} cells, got {len(cells)}"
            )
        if not 1 <= batch <= packer.lanes:
            raise EncodingError(
                f"batch {batch} out of range [1, {packer.lanes}]"
            )
        if packer.public_key.n != public_key.n:
            raise KeyMismatchError(
                "packer was built for a different public key"
            )
        self.public_key = public_key
        self.packer = packer
        self.batch = batch
        self.shape = tuple(shape)
        self.exponent = exponent
        self._cells = tuple(cells)

    # ------------------------------------------------------------------
    # Construction / deconstruction
    # ------------------------------------------------------------------

    @classmethod
    def encrypt_batch(
        cls,
        values: np.ndarray,
        packer: LanePacker,
        rng: random.Random | None = None,
        exponent: int = 0,
        engine: "PaillierEngine | None" = None,
    ) -> "PackedEncryptedTensor":
        """Encrypt a batch of integer tensors, one cell per position.

        Args:
            values: integer array of shape ``(batch, *sample_shape)``
                (already scaled to fixed point).
            packer: lane geometry; ``batch`` must fit its lane count.
            rng: randomness source (bit-identical to the scalar
                reference); omit to use the engine's blinding pool.
            exponent: fixed-point exponent the integers carry.
            engine: batched crypto engine; defaults to the shared
                sequential engine for the packer's key.
        """
        from .engine import default_engine

        values = np.asarray(values)
        if values.ndim < 1 or values.shape[0] < 1:
            raise EncodingError(
                "encrypt_batch needs a leading batch axis"
            )
        batch = values.shape[0]
        sample_shape = values.shape[1:]
        if engine is None:
            engine = default_engine(packer.public_key)
        # (batch, positions) -> per-position lane vectors.
        flat = np.asarray(
            [_flatten_int_array(sample) for sample in values],
            dtype=object,
        )
        lanes_per_position = flat.T.tolist()
        cells = engine.encrypt_many_packed(lanes_per_position, packer,
                                           rng=rng)
        return cls(packer.public_key, cells, sample_shape, packer,
                   batch, exponent)

    def decrypt(
        self,
        private_key: PaillierPrivateKey,
        engine: "PaillierEngine | None" = None,
    ) -> np.ndarray:
        """Decrypt to shape ``(batch, *shape)`` (dtype=object ints)."""
        if engine is not None:
            lanes = engine.decrypt_many_packed(
                self._cells, self.packer, count=self.batch
            )
        else:
            lanes = [
                self.packer.unpack(private_key.decrypt(cell),
                                   count=self.batch)
                for cell in self._cells
            ]
        # lanes is (positions, batch); transpose to batch-major.
        per_sample = np.array(lanes, dtype=object).T
        return per_sample.reshape((self.batch,) + self.shape)

    def decrypt_float(
        self,
        private_key: PaillierPrivateKey,
        engine: "PaillierEngine | None" = None,
    ) -> np.ndarray:
        """Decrypt and rescale by the accumulated exponent to float64."""
        ints = self.decrypt(private_key, engine=engine)
        scale = 10 ** self.exponent
        return np.array(
            [int(v) / scale for v in ints.reshape(-1)], dtype=np.float64
        ).reshape((self.batch,) + self.shape)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Cells (per-sample positions), not total packed values."""
        return len(self._cells)

    def cells(self) -> Tuple[EncryptedNumber, ...]:
        """The flat row-major packed cells (read-only view)."""
        return self._cells

    def _like(self, cells: Sequence[EncryptedNumber],
              shape: Tuple[int, ...],
              exponent: int | None = None) -> "PackedEncryptedTensor":
        return PackedEncryptedTensor(
            self.public_key, cells, shape, self.packer, self.batch,
            self.exponent if exponent is None else exponent,
        )

    def reshape(self, shape: Tuple[int, ...]) -> "PackedEncryptedTensor":
        """Reinterpret the cells under a new per-sample shape."""
        return self._like(self._cells, shape)

    def flatten(self) -> "PackedEncryptedTensor":
        return self.reshape((self.size,))

    def gather(self, indices: Sequence[int]) -> "PackedEncryptedTensor":
        """Select flat cells by index, e.g. a conv receptive field."""
        cells = [self._cells[i] for i in indices]
        return self._like(cells, (len(cells),))

    @classmethod
    def concatenate(
        cls, parts: Sequence["PackedEncryptedTensor"]
    ) -> "PackedEncryptedTensor":
        """Concatenate flat packed tensors from partitioned threads."""
        if not parts:
            raise EncodingError("cannot concatenate zero tensors")
        first = parts[0]
        cells: list[EncryptedNumber] = []
        for part in parts:
            if part.public_key.n != first.public_key.n:
                raise KeyMismatchError(
                    "cannot concatenate tensors under different keys"
                )
            if part.exponent != first.exponent:
                raise EncodingError(
                    "cannot concatenate tensors with different "
                    f"exponents: {part.exponent} vs {first.exponent}"
                )
            if part.packer != first.packer or part.batch != first.batch:
                raise EncodingError(
                    "cannot concatenate tensors with different lane "
                    "geometry"
                )
            cells.extend(part.cells())
        return first._like(cells, (len(cells),))

    def with_exponent(self, exponent: int) -> "PackedEncryptedTensor":
        """Return the same ciphertexts tagged with a new exponent."""
        return self._like(self._cells, self.shape, exponent)

    def rerandomized(self, rng: random.Random) -> "PackedEncryptedTensor":
        """Refresh every cell's randomness (same plaintexts)."""
        cells = [cell.rerandomized(rng) for cell in self._cells]
        return self._like(cells, self.shape)

    # ------------------------------------------------------------------
    # Homomorphic arithmetic
    # ------------------------------------------------------------------

    def _add_plain_residue(self, cells: Sequence[EncryptedNumber],
                           residues: Sequence[int]
                           ) -> list[EncryptedNumber]:
        """``E(m) * (1 + n*r) = E(m + r)`` per cell — the rebias step."""
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        return [
            EncryptedNumber(
                self.public_key,
                c.ciphertext * (1 + n * (r % n)) % n_sq,
            )
            for c, r in zip(cells, residues)
        ]

    def add(self, other: "PackedEncryptedTensor"
            ) -> "PackedEncryptedTensor":
        """Element-wise homomorphic addition across all lanes at once."""
        if other.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "operands are encrypted under different keys"
            )
        if other.shape != self.shape:
            raise EncodingError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )
        if other.exponent != self.exponent:
            raise EncodingError(
                "fixed-point exponents differ: "
                f"{self.exponent} vs {other.exponent}"
            )
        if other.packer != self.packer or other.batch != self.batch:
            raise EncodingError("lane geometry differs between operands")
        summed = [a + b for a, b in zip(self._cells, other.cells())]
        # Lane contents now carry 2x the canonical offset; subtract one.
        rebias = self.packer.rebias_residue(-self.packer.offset)
        cells = self._add_plain_residue(summed, [rebias] * len(summed))
        return self._like(cells, self.shape)

    def mul_plain(self, weights: np.ndarray) -> "PackedEncryptedTensor":
        """Element-wise multiplication by integer weights, all lanes."""
        flat_w = _flatten_int_array(np.asarray(weights))
        if len(flat_w) != self.size:
            raise EncodingError(
                f"weight count {len(flat_w)} != tensor size {self.size}"
            )
        scaled = [c * w for c, w in zip(self._cells, flat_w)]
        # Lane k now holds w*v + w*offset; bring it back to v' + offset.
        offset = self.packer.offset
        rebias = [self.packer.rebias_residue(offset - w * offset)
                  for w in flat_w]
        cells = self._add_plain_residue(scaled, rebias)
        return self._like(cells, self.shape)

    def affine(
        self,
        weights: np.ndarray,
        bias: "np.ndarray | PackedEncryptedTensor",
        rng: random.Random | None = None,
        weight_exponent: int = 0,
        engine: "PaillierEngine | None" = None,
        plan: "SparseMatvecPlan | None" = None,
    ) -> "PackedEncryptedTensor":
        """Packed ``y = W x + b``: one matvec serves the whole batch.

        Args:
            weights: integer matrix of shape (out_dim, in_dim).
            bias: either an integer vector of shape (out_dim,) — scaled
                to the *output* exponent, broadcast across lanes and
                encrypted on the fly — or an already-packed encrypted
                bias of per-sample shape ``(out_dim,)``.
            rng: randomness for encrypting a plaintext bias.
            weight_exponent: fixed-point exponent the weights carry.
            engine: batched crypto engine; defaults to the shared
                sequential engine for this key.
            plan: optional per-layer sparse plan — the packed matvec
                then runs through the compressed engine path and
                rebiases from the plan's row weight sums.
        """
        from .engine import default_engine

        if engine is None:
            engine = default_engine(self.public_key)
        x = self.flatten()
        weights = np.asarray(weights)
        if weights.ndim != 2 or weights.shape[1] != x.size:
            raise EncodingError(
                f"weights shape {weights.shape} incompatible with input "
                f"size {x.size}"
            )
        out_dim = weights.shape[0]
        out_exponent = self.exponent + weight_exponent
        if isinstance(bias, PackedEncryptedTensor):
            if bias.shape != (out_dim,):
                raise EncodingError(
                    f"packed bias shape {bias.shape} != ({out_dim},)"
                )
            if bias.packer != self.packer or bias.batch != self.batch:
                raise EncodingError(
                    "bias lane geometry differs from the input's"
                )
            bias_cells = list(bias.cells())
        else:
            bias = np.asarray(bias)
            if bias.shape != (out_dim,):
                raise EncodingError(
                    f"bias shape {bias.shape} != ({out_dim},)"
                )
            lanes = [[int(b)] * self.batch for b in bias]
            bias_cells = engine.encrypt_many_packed(lanes, self.packer,
                                                    rng=rng)
        raw = engine.fc_matvec_packed(
            [c.ciphertext for c in x.cells()],
            weights,
            [b.ciphertext for b in bias_cells],
            self.packer,
            plan=plan,
        )
        out_cells = [EncryptedNumber(self.public_key, c) for c in raw]
        return PackedEncryptedTensor(
            self.public_key, out_cells, (out_dim,), self.packer,
            self.batch, out_exponent,
        )

    def __repr__(self) -> str:
        return (
            f"PackedEncryptedTensor(shape={self.shape}, "
            f"batch={self.batch}, lanes={self.packer.lanes}, "
            f"exponent={self.exponent}, "
            f"key_size={self.public_key.key_size})"
        )
