"""Encrypted tensors: Paillier homomorphisms lifted to whole arrays.

The protocol exchanges multi-dimensional tensors (Section II-A), so the
scalar homomorphic operations of :mod:`repro.crypto.paillier` are lifted
here to an :class:`EncryptedTensor` — a shape plus a flat tuple of
ciphertexts, with the accumulated fixed-point exponent threaded through so
the data provider knows how to rescale after decryption.

The linear primitives a neural network needs are provided directly:
element-wise addition, element-wise plaintext multiplication, and the
affine map ``y = W x + b`` (Eq. (3) of the paper), which fully-connected
and (via im2col) convolution layers reduce to.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import PaillierEngine

from ..errors import EncodingError, KeyMismatchError
from .encoding import SignedEncoder
from .paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
)


def _flatten_int_array(values: np.ndarray) -> list[int]:
    """Flatten an integer ndarray to a list of Python ints (row-major)."""
    array = np.asarray(values)
    if array.dtype == object:
        # Object arrays hold arbitrary-precision Python ints (or other
        # integer-likes); coerce each cell explicitly.
        return [int(v) for v in array.reshape(-1).tolist()]
    if not np.issubdtype(array.dtype, np.integer):
        raise EncodingError(
            "EncryptedTensor operations need integer arrays; scale "
            "floats first (see repro.scaling)"
        )
    # .tolist() converts the whole buffer to Python ints in one C call.
    return array.reshape(-1).tolist()


class EncryptedTensor:
    """An encrypted multi-dimensional array under a single public key.

    Attributes:
        public_key: the Paillier key all elements are encrypted under.
        shape: logical tensor shape (row-major element order).
        exponent: accumulated base-10 fixed-point exponent of the
            plaintext values (decryption divides by ``10**exponent``).
    """

    __slots__ = ("public_key", "shape", "exponent", "_cells")

    def __init__(
        self,
        public_key: PaillierPublicKey,
        cells: Sequence[EncryptedNumber],
        shape: Tuple[int, ...],
        exponent: int = 0,
    ):
        size = 1
        for dim in shape:
            size *= dim
        if size != len(cells):
            raise EncodingError(
                f"shape {shape} implies {size} elements, got {len(cells)}"
            )
        self.public_key = public_key
        self.shape = tuple(shape)
        self.exponent = exponent
        self._cells = tuple(cells)

    # ------------------------------------------------------------------
    # Construction / deconstruction
    # ------------------------------------------------------------------

    @classmethod
    def encrypt(
        cls,
        values: np.ndarray,
        public_key: PaillierPublicKey,
        rng: random.Random | None = None,
        exponent: int = 0,
        engine: "PaillierEngine | None" = None,
    ) -> "EncryptedTensor":
        """Encrypt an integer ndarray element by element.

        Routed through the batched engine: with ``rng`` the output is
        bit-identical to the historical scalar loop; without it the
        blinding factors come from the engine's offline pool.

        Args:
            values: integer array (already scaled to fixed point).
            public_key: encryption key.
            rng: randomness source for probabilistic encryption; omit
                to draw blinding factors from the engine's pool.
            exponent: fixed-point exponent the integers carry.
            engine: batched crypto engine; defaults to the shared
                sequential engine for ``public_key``.
        """
        from .engine import default_engine

        values = np.asarray(values)
        if engine is None:
            engine = default_engine(public_key)
        encoder = SignedEncoder(public_key)
        cells = engine.encrypt_many(
            [encoder.encode(v) for v in _flatten_int_array(values)],
            rng=rng,
        )
        return cls(public_key, cells, values.shape, exponent)

    def decrypt(
        self,
        private_key: PaillierPrivateKey,
        engine: "PaillierEngine | None" = None,
    ) -> np.ndarray:
        """Decrypt to a signed-integer ndarray (dtype=object for headroom).

        Pass an ``engine`` holding the private key to decrypt in
        process-pool chunks."""
        encoder = SignedEncoder(self.public_key)
        if engine is not None:
            residues = engine.decrypt_many(self._cells)
        else:
            residues = [private_key.decrypt(cell) for cell in self._cells]
        flat = [encoder.decode(residue) for residue in residues]
        return np.array(flat, dtype=object).reshape(self.shape)

    def decrypt_float(
        self,
        private_key: PaillierPrivateKey,
        engine: "PaillierEngine | None" = None,
    ) -> np.ndarray:
        """Decrypt and rescale by the accumulated exponent to float64."""
        ints = self.decrypt(private_key, engine=engine)
        scale = 10 ** self.exponent
        return np.array(
            [int(v) / scale for v in ints.reshape(-1)], dtype=np.float64
        ).reshape(self.shape)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._cells)

    def cells(self) -> Tuple[EncryptedNumber, ...]:
        """The flat row-major ciphertext cells (read-only view)."""
        return self._cells

    def reshape(self, shape: Tuple[int, ...]) -> "EncryptedTensor":
        """Reinterpret the flat cells under a new shape (no crypto work)."""
        return EncryptedTensor(self.public_key, self._cells, shape,
                               self.exponent)

    def flatten(self) -> "EncryptedTensor":
        return self.reshape((self.size,))

    def gather(self, indices: Sequence[int]) -> "EncryptedTensor":
        """Select flat cells by index, e.g. a conv receptive field."""
        cells = [self._cells[i] for i in indices]
        return EncryptedTensor(
            self.public_key, cells, (len(cells),), self.exponent
        )

    @classmethod
    def concatenate(
        cls, parts: Sequence["EncryptedTensor"]
    ) -> "EncryptedTensor":
        """Concatenate flat tensors produced by partitioned threads."""
        if not parts:
            raise EncodingError("cannot concatenate zero tensors")
        key = parts[0].public_key
        exponent = parts[0].exponent
        cells: list[EncryptedNumber] = []
        for part in parts:
            if part.public_key.n != key.n:
                raise KeyMismatchError(
                    "cannot concatenate tensors under different keys"
                )
            if part.exponent != exponent:
                raise EncodingError(
                    "cannot concatenate tensors with different exponents: "
                    f"{part.exponent} vs {exponent}"
                )
            cells.extend(part.cells())
        return cls(key, cells, (len(cells),), exponent)

    # ------------------------------------------------------------------
    # Homomorphic arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "EncryptedTensor") -> None:
        if other.public_key.n != self.public_key.n:
            raise KeyMismatchError(
                "operands are encrypted under different keys"
            )
        if other.shape != self.shape:
            raise EncodingError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )
        if other.exponent != self.exponent:
            raise EncodingError(
                "fixed-point exponents differ: "
                f"{self.exponent} vs {other.exponent}"
            )

    def add(self, other: "EncryptedTensor") -> "EncryptedTensor":
        """Element-wise homomorphic addition of two encrypted tensors."""
        self._check_compatible(other)
        cells = [a + b for a, b in zip(self._cells, other.cells())]
        return EncryptedTensor(self.public_key, cells, self.shape,
                               self.exponent)

    def add_plain(
        self, values: np.ndarray, rng: random.Random, exponent: int = 0
    ) -> "EncryptedTensor":
        """Add a plaintext integer array (encrypted on the fly)."""
        plain = EncryptedTensor.encrypt(
            np.asarray(values), self.public_key, rng, exponent
        )
        return self.add(plain)

    def mul_plain(self, weights: np.ndarray) -> "EncryptedTensor":
        """Element-wise homomorphic multiplication by integer weights.

        The result's exponent is the sum of both operands' exponents
        when the weights carry one; callers pass scaled-integer weights
        and bump the exponent via :meth:`with_exponent`.
        """
        flat_w = _flatten_int_array(np.asarray(weights))
        if len(flat_w) != self.size:
            raise EncodingError(
                f"weight count {len(flat_w)} != tensor size {self.size}"
            )
        cells = [c * w for c, w in zip(self._cells, flat_w)]
        return EncryptedTensor(self.public_key, cells, self.shape,
                               self.exponent)

    def rerandomized(self, rng: random.Random) -> "EncryptedTensor":
        """Refresh every cell's randomness (same plaintexts)."""
        cells = [cell.rerandomized(rng) for cell in self._cells]
        return EncryptedTensor(self.public_key, cells, self.shape,
                               self.exponent)

    def with_exponent(self, exponent: int) -> "EncryptedTensor":
        """Return the same ciphertexts tagged with a new exponent."""
        return EncryptedTensor(self.public_key, self._cells, self.shape,
                               exponent)

    def affine(
        self,
        weights: np.ndarray,
        bias: "np.ndarray | EncryptedTensor",
        rng: random.Random | None = None,
        weight_exponent: int = 0,
        engine: "PaillierEngine | None" = None,
    ) -> "EncryptedTensor":
        """Compute ``y = W x + b`` homomorphically (Eq. (3) of the paper).

        Args:
            weights: integer matrix of shape (out_dim, in_dim).
            bias: either an integer vector of shape (out_dim,) — scaled
                to the *output* exponent (input + weight exponent) and
                encrypted on the fly — or an already-encrypted bias
                tensor of the same shape (the model provider's bias is
                static per stage, so callers cache its encryption).
            rng: randomness for encrypting a plaintext bias.
            weight_exponent: fixed-point exponent the weights carry; the
                output tensor's exponent is input + weight exponent.
            engine: batched crypto engine; when given, the matvec runs
                through its per-ciphertext power caches (and process
                pool, if configured) instead of the scalar loop.  Both
                paths produce identical ciphertexts.

        Returns:
            encrypted vector of shape (out_dim,).
        """
        x = self.flatten()
        weights = np.asarray(weights)
        if weights.ndim != 2 or weights.shape[1] != x.size:
            raise EncodingError(
                f"weights shape {weights.shape} incompatible with input "
                f"size {x.size}"
            )
        out_dim = weights.shape[0]
        out_exponent = self.exponent + weight_exponent
        if isinstance(bias, EncryptedTensor):
            if bias.shape != (out_dim,):
                raise EncodingError(
                    f"encrypted bias shape {bias.shape} != ({out_dim},)"
                )
            if bias.public_key.n != self.public_key.n:
                raise KeyMismatchError(
                    "bias encrypted under a different key"
                )
            bias_cells = list(bias.cells())
        else:
            bias = np.asarray(bias)
            if bias.shape != (out_dim,):
                raise EncodingError(
                    f"bias shape {bias.shape} != ({out_dim},)"
                )
            encoder = SignedEncoder(self.public_key)
            if engine is not None:
                bias_cells = engine.encrypt_many(
                    [encoder.encode(int(b)) for b in bias], rng=rng,
                )
            else:
                if rng is None:
                    raise EncodingError(
                        "affine needs an rng or an engine to encrypt a "
                        "plaintext bias"
                    )
                bias_cells = [
                    self.public_key.encrypt(encoder.encode(int(b)), rng)
                    for b in bias
                ]
        cells = x.cells()
        if engine is not None:
            raw = engine.matvec(
                [c.ciphertext for c in cells],
                weights,
                [b.ciphertext for b in bias_cells],
            )
            out_cells = [EncryptedNumber(self.public_key, c) for c in raw]
            return EncryptedTensor(
                self.public_key, out_cells, (out_dim,), out_exponent
            )
        out_cells: list[EncryptedNumber] = []
        for j in range(out_dim):
            acc = bias_cells[j]
            row = weights[j]
            for i in range(x.size):
                w = int(row[i])
                if w == 0:
                    continue
                acc = acc + cells[i] * w
            out_cells.append(acc)
        return EncryptedTensor(
            self.public_key, out_cells, (out_dim,), out_exponent
        )


    def __repr__(self) -> str:
        return (
            f"EncryptedTensor(shape={self.shape}, exponent={self.exponent}, "
            f"key_size={self.public_key.key_size})"
        )
