"""Wire formats: byte-level serialization of keys and ciphertexts.

The protocol transcripts estimate message sizes analytically (2 bytes
per modulus bit); this module provides the *actual* wire format so
deployments, tests, and byte-accounting agree:

* public keys as JSON (modulus + key size),
* private keys as JSON (p, q — only ever stored at the data provider),
* encrypted tensors as a framed binary blob: a fixed header (magic,
  version, payload kind, key size, exponent, rank, dims) followed by
  fixed-width big-endian ciphertexts (``2 * key_size / 8`` bytes each).

Frame versions:

* **v1** (historical): scalar tensors only — magic, version, key size,
  exponent, rank.  Still parsed for backward compatibility.
* **v2** (current): adds a payload-kind byte after the version, and for
  lane-packed tensors an extended header carrying the lane geometry
  (lanes, magnitude bits, guard bits, occupied batch lanes) so a
  :class:`~repro.crypto.tensor.PackedEncryptedTensor` can cross a wire
  and be rebuilt — packer and all — on the other side.

All parsers validate framing and raise :class:`EncodingError` on
malformed input rather than producing garbage tensors.
"""

from __future__ import annotations

import json
import struct
from typing import Tuple

from ..errors import EncodingError, KeyMismatchError
from .encoding import LanePacker
from .paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from .tensor import EncryptedTensor, PackedEncryptedTensor

#: Frame magic for encrypted-tensor blobs.
_MAGIC = b"PPST"
#: Current frame version.  v1 frames (scalar only, no kind byte) are
#: still parsed; v2 is what the writers emit.
_VERSION = 2
_V1 = 1
_HEADER_V1 = struct.Struct(">4sBIiB")   # magic, ver, key_size, exp, rank
_HEADER_V2 = struct.Struct(">4sBBIiB")  # magic, ver, kind, key_size,
#                                         exponent, rank
#: v2 lane-geometry extension (packed frames only): lanes, mag_bits,
#: guard_bits, batch.
_LANES_V2 = struct.Struct(">HHHH")

#: v2 payload kinds.
KIND_SCALAR = 0
KIND_PACKED = 1


def public_key_to_json(key: PaillierPublicKey) -> str:
    """Serialize a public key (safe to share)."""
    return json.dumps({
        "kind": "paillier-public",
        "key_size": key.key_size,
        "n": hex(key.n),
    })


def public_key_from_json(text: str) -> PaillierPublicKey:
    data = _load_key_json(text, "paillier-public")
    return PaillierPublicKey(n=int(data["n"], 16),
                             key_size=int(data["key_size"]))


def private_key_to_json(key: PaillierPrivateKey) -> str:
    """Serialize a private key (data-provider side only!)."""
    return json.dumps({
        "kind": "paillier-private",
        "key_size": key.public_key.key_size,
        "p": hex(key.p),
        "q": hex(key.q),
    })


def private_key_from_json(text: str) -> PaillierPrivateKey:
    data = _load_key_json(text, "paillier-private")
    p, q = int(data["p"], 16), int(data["q"], 16)
    public = PaillierPublicKey(n=p * q,
                               key_size=int(data["key_size"]))
    return PaillierPrivateKey(public_key=public, p=p, q=q)


def _load_key_json(text: str, expected_kind: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EncodingError(f"malformed key JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != expected_kind:
        raise EncodingError(
            f"expected a {expected_kind} key, got "
            f"{data.get('kind') if isinstance(data, dict) else data!r}"
        )
    return data


def ciphertext_bytes(key_size: int) -> int:
    """Fixed wire width of one ciphertext (an element of Z_{n^2})."""
    return 2 * key_size // 8


def tensor_frame_bytes(
    key_size: int, rank: int, size: int,
    packed: bool = False, version: int = _VERSION,
) -> int:
    """Exact byte length of a tensor frame, computed analytically.

    ``len(tensor_to_bytes(t)) == tensor_frame_bytes(...)`` by
    construction — the frame is a fixed header plus ``4 * rank`` dim
    words plus ``size`` fixed-width ciphertexts — so byte accounting
    can use real wire sizes without serializing anything.
    """
    if version == _V1:
        if packed:
            raise EncodingError("v1 frames cannot carry packed tensors")
        header = _HEADER_V1.size
    elif version == _VERSION:
        header = _HEADER_V2.size + (_LANES_V2.size if packed else 0)
    else:
        raise EncodingError(f"unsupported wire version {version}")
    return header + 4 * rank + size * ciphertext_bytes(key_size)


def _pack_dims(shape: Tuple[int, ...]) -> bytes:
    if len(shape) > 255:
        raise EncodingError("tensor rank exceeds the wire format's 255")
    return b"".join(struct.pack(">I", dim) for dim in shape)


def _pack_cells(cells, key_size: int) -> bytes:
    width = ciphertext_bytes(key_size)
    return b"".join(
        cell.ciphertext.to_bytes(width, "big") for cell in cells
    )


def tensor_to_bytes(tensor: EncryptedTensor,
                    version: int = _VERSION) -> bytes:
    """Serialize a scalar encrypted tensor to the framed binary format.

    Emits a v2 frame by default; ``version=1`` writes the historical
    layout (for interop/regression tests).
    """
    key_size = tensor.public_key.key_size
    dims = _pack_dims(tensor.shape)
    if version == _V1:
        header = _HEADER_V1.pack(_MAGIC, _V1, key_size,
                                 tensor.exponent, len(tensor.shape))
    elif version == _VERSION:
        header = _HEADER_V2.pack(_MAGIC, _VERSION, KIND_SCALAR,
                                 key_size, tensor.exponent,
                                 len(tensor.shape))
    else:
        raise EncodingError(f"unsupported wire version {version}")
    return header + dims + _pack_cells(tensor.cells(), key_size)


def packed_tensor_to_bytes(tensor: PackedEncryptedTensor) -> bytes:
    """Serialize a lane-packed tensor (v2 frame with lane geometry)."""
    key_size = tensor.public_key.key_size
    packer = tensor.packer
    for field, value in (("lanes", packer.lanes),
                         ("mag_bits", packer.mag_bits),
                         ("guard_bits", packer.guard_bits),
                         ("batch", tensor.batch)):
        if not 0 <= value <= 0xFFFF:
            raise EncodingError(
                f"packed-frame {field} {value} exceeds the wire "
                "format's 16-bit field"
            )
    header = _HEADER_V2.pack(_MAGIC, _VERSION, KIND_PACKED, key_size,
                             tensor.exponent, len(tensor.shape))
    lanes = _LANES_V2.pack(packer.lanes, packer.mag_bits,
                           packer.guard_bits, tensor.batch)
    return (header + lanes + _pack_dims(tensor.shape)
            + _pack_cells(tensor.cells(), key_size))


def _parse_header(blob: bytes) -> tuple[int, int, int, int, int, int]:
    """Common header parse -> (version, kind, key_size, exponent,
    rank, offset-of-next-field)."""
    if len(blob) < _HEADER_V1.size:
        raise EncodingError("blob shorter than the frame header")
    magic, version = struct.unpack(">4sB", blob[:5])
    if magic != _MAGIC:
        raise EncodingError(f"bad magic {magic!r}")
    if version == _V1:
        _, _, key_size, exponent, rank = _HEADER_V1.unpack(
            blob[:_HEADER_V1.size]
        )
        return _V1, KIND_SCALAR, key_size, exponent, rank, _HEADER_V1.size
    if version == _VERSION:
        if len(blob) < _HEADER_V2.size:
            raise EncodingError("blob shorter than the v2 frame header")
        _, _, kind, key_size, exponent, rank = _HEADER_V2.unpack(
            blob[:_HEADER_V2.size]
        )
        if kind not in (KIND_SCALAR, KIND_PACKED):
            raise EncodingError(f"unknown v2 payload kind {kind}")
        return version, kind, key_size, exponent, rank, _HEADER_V2.size
    raise EncodingError(f"unsupported wire version {version}")


def frame_kind(blob: bytes) -> int:
    """Peek a frame's payload kind (:data:`KIND_SCALAR` /
    :data:`KIND_PACKED`) without parsing the body."""
    return _parse_header(blob)[1]


def _parse_dims(blob: bytes, offset: int,
                rank: int) -> tuple[Tuple[int, ...], int]:
    dims: Tuple[int, ...] = ()
    for _ in range(rank):
        if offset + 4 > len(blob):
            raise EncodingError("truncated dimension list")
        (dim,) = struct.unpack(">I", blob[offset:offset + 4])
        dims += (dim,)
        offset += 4
    return dims, offset


def _parse_cells(blob: bytes, offset: int, dims: Tuple[int, ...],
                 public_key: PaillierPublicKey) -> list[EncryptedNumber]:
    size = 1
    for dim in dims:
        size *= dim
    width = ciphertext_bytes(public_key.key_size)
    expected = offset + size * width
    if len(blob) != expected:
        raise EncodingError(
            f"body length {len(blob) - offset} != expected "
            f"{size * width}"
        )
    cells = []
    for index in range(size):
        start = offset + index * width
        value = int.from_bytes(blob[start:start + width], "big")
        if not 0 < value < public_key.n_squared:
            raise EncodingError(
                f"ciphertext {index} out of range for the modulus"
            )
        cells.append(EncryptedNumber(public_key, value))
    return cells


def _check_key(key_size: int, public_key: PaillierPublicKey) -> None:
    if key_size != public_key.key_size:
        raise KeyMismatchError(
            f"frame was written for a {key_size}-bit key, reader has "
            f"{public_key.key_size}-bit"
        )


def tensor_from_bytes(
    blob: bytes, public_key: PaillierPublicKey
) -> EncryptedTensor:
    """Parse a framed blob (v1 or v2 scalar) into an encrypted tensor.

    Raises:
        EncodingError: on bad framing, truncation, trailing bytes, or
            a packed frame (parse those with
            :func:`packed_tensor_from_bytes`).
        KeyMismatchError: when the frame's key size differs from the
            supplied public key's.
    """
    _, kind, key_size, exponent, rank, offset = _parse_header(blob)
    if kind != KIND_SCALAR:
        raise EncodingError(
            "frame carries a lane-packed tensor; parse it with "
            "packed_tensor_from_bytes"
        )
    _check_key(key_size, public_key)
    dims, offset = _parse_dims(blob, offset, rank)
    cells = _parse_cells(blob, offset, dims, public_key)
    return EncryptedTensor(public_key, cells, dims, exponent)


def packed_tensor_from_bytes(
    blob: bytes, public_key: PaillierPublicKey
) -> PackedEncryptedTensor:
    """Parse a v2 packed frame back into a lane-packed tensor.

    The packer is rebuilt from the frame's lane geometry; its capacity
    constraint re-validates against the supplied key, so a frame whose
    geometry cannot fit the key fails here rather than producing
    garbage lanes.
    """
    version, kind, key_size, exponent, rank, offset = _parse_header(blob)
    if kind != KIND_PACKED:
        raise EncodingError(
            "frame carries a scalar tensor; parse it with "
            "tensor_from_bytes"
        )
    _check_key(key_size, public_key)
    if offset + _LANES_V2.size > len(blob):
        raise EncodingError("truncated lane-geometry header")
    lanes, mag_bits, guard_bits, batch = _LANES_V2.unpack(
        blob[offset:offset + _LANES_V2.size]
    )
    offset += _LANES_V2.size
    packer = LanePacker(public_key, lanes=lanes, mag_bits=mag_bits,
                        guard_bits=guard_bits)
    if not 1 <= batch <= lanes:
        raise EncodingError(
            f"frame batch {batch} out of range [1, {lanes}]"
        )
    dims, offset = _parse_dims(blob, offset, rank)
    cells = _parse_cells(blob, offset, dims, public_key)
    return PackedEncryptedTensor(public_key, cells, dims, packer,
                                 batch, exponent)


def any_tensor_to_bytes(
    tensor: EncryptedTensor | PackedEncryptedTensor,
) -> bytes:
    """Serialize either tensor flavour (dispatch on type)."""
    if isinstance(tensor, PackedEncryptedTensor):
        return packed_tensor_to_bytes(tensor)
    return tensor_to_bytes(tensor)


def any_tensor_from_bytes(
    blob: bytes, public_key: PaillierPublicKey
) -> EncryptedTensor | PackedEncryptedTensor:
    """Parse either tensor flavour (dispatch on the frame kind)."""
    if frame_kind(blob) == KIND_PACKED:
        return packed_tensor_from_bytes(blob, public_key)
    return tensor_from_bytes(blob, public_key)
