"""Wire formats: byte-level serialization of keys and ciphertexts.

The protocol transcripts estimate message sizes analytically (2 bytes
per modulus bit); this module provides the *actual* wire format so
deployments, tests, and byte-accounting agree:

* public keys as JSON (modulus + key size),
* private keys as JSON (p, q — only ever stored at the data provider),
* encrypted tensors as a framed binary blob: a fixed header (magic,
  version, key size, exponent, rank, dims) followed by fixed-width
  big-endian ciphertexts (``2 * key_size / 8`` bytes each).

All parsers validate framing and raise :class:`EncodingError` on
malformed input rather than producing garbage tensors.
"""

from __future__ import annotations

import json
import struct
from typing import Tuple

from ..errors import EncodingError, KeyMismatchError
from .paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from .tensor import EncryptedTensor

#: Frame magic for encrypted-tensor blobs.
_MAGIC = b"PPST"
_VERSION = 1
_HEADER = struct.Struct(">4sBIiB")  # magic, ver, key_size, exp, rank


def public_key_to_json(key: PaillierPublicKey) -> str:
    """Serialize a public key (safe to share)."""
    return json.dumps({
        "kind": "paillier-public",
        "key_size": key.key_size,
        "n": hex(key.n),
    })


def public_key_from_json(text: str) -> PaillierPublicKey:
    data = _load_key_json(text, "paillier-public")
    return PaillierPublicKey(n=int(data["n"], 16),
                             key_size=int(data["key_size"]))


def private_key_to_json(key: PaillierPrivateKey) -> str:
    """Serialize a private key (data-provider side only!)."""
    return json.dumps({
        "kind": "paillier-private",
        "key_size": key.public_key.key_size,
        "p": hex(key.p),
        "q": hex(key.q),
    })


def private_key_from_json(text: str) -> PaillierPrivateKey:
    data = _load_key_json(text, "paillier-private")
    p, q = int(data["p"], 16), int(data["q"], 16)
    public = PaillierPublicKey(n=p * q,
                               key_size=int(data["key_size"]))
    return PaillierPrivateKey(public_key=public, p=p, q=q)


def _load_key_json(text: str, expected_kind: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EncodingError(f"malformed key JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != expected_kind:
        raise EncodingError(
            f"expected a {expected_kind} key, got "
            f"{data.get('kind') if isinstance(data, dict) else data!r}"
        )
    return data


def ciphertext_bytes(key_size: int) -> int:
    """Fixed wire width of one ciphertext (an element of Z_{n^2})."""
    return 2 * key_size // 8


def tensor_to_bytes(tensor: EncryptedTensor) -> bytes:
    """Serialize an encrypted tensor to the framed binary format."""
    key_size = tensor.public_key.key_size
    width = ciphertext_bytes(key_size)
    if len(tensor.shape) > 255:
        raise EncodingError("tensor rank exceeds the wire format's 255")
    header = _HEADER.pack(_MAGIC, _VERSION, key_size, tensor.exponent,
                          len(tensor.shape))
    dims = b"".join(struct.pack(">I", dim) for dim in tensor.shape)
    body = b"".join(
        cell.ciphertext.to_bytes(width, "big")
        for cell in tensor.cells()
    )
    return header + dims + body


def tensor_from_bytes(
    blob: bytes, public_key: PaillierPublicKey
) -> EncryptedTensor:
    """Parse a framed blob back into an encrypted tensor.

    Raises:
        EncodingError: on bad framing, truncation, or trailing bytes.
        KeyMismatchError: when the frame's key size differs from the
            supplied public key's.
    """
    if len(blob) < _HEADER.size:
        raise EncodingError("blob shorter than the frame header")
    magic, version, key_size, exponent, rank = _HEADER.unpack(
        blob[:_HEADER.size]
    )
    if magic != _MAGIC:
        raise EncodingError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise EncodingError(f"unsupported wire version {version}")
    if key_size != public_key.key_size:
        raise KeyMismatchError(
            f"frame was written for a {key_size}-bit key, reader has "
            f"{public_key.key_size}-bit"
        )
    offset = _HEADER.size
    dims: Tuple[int, ...] = ()
    for _ in range(rank):
        if offset + 4 > len(blob):
            raise EncodingError("truncated dimension list")
        (dim,) = struct.unpack(">I", blob[offset:offset + 4])
        dims += (dim,)
        offset += 4
    size = 1
    for dim in dims:
        size *= dim
    width = ciphertext_bytes(key_size)
    expected = offset + size * width
    if len(blob) != expected:
        raise EncodingError(
            f"body length {len(blob) - offset} != expected "
            f"{size * width}"
        )
    cells = []
    for index in range(size):
        start = offset + index * width
        value = int.from_bytes(blob[start:start + width], "big")
        if not 0 < value < public_key.n_squared:
            raise EncodingError(
                f"ciphertext {index} out of range for the modulus"
            )
        cells.append(EncryptedNumber(public_key, value))
    return EncryptedTensor(public_key, cells, dims, exponent)
