"""Number-theoretic building blocks for Paillier's cryptosystem.

Pure-Python implementations of the primitives GMP provides to the paper's
C++ prototype: Miller–Rabin primality testing, probable-prime generation,
modular inverses, lcm, and Chinese-remainder recombination.  Python's
arbitrary-precision integers and three-argument ``pow`` do the heavy
lifting; everything here is deterministic given an explicit RNG.

Modular exponentiation and inversion route through the pluggable
bigint backend (:mod:`repro.crypto.backend`): pure Python by default,
GMP via gmpy2 where installed — bit-identical either way.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..errors import CryptoError
from .backend import active_backend

# Small primes used to cheaply reject candidates before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

#: Number of Miller-Rabin rounds.  40 rounds gives a false-positive
#: probability below 2^-80 for random candidates.
_MILLER_RABIN_ROUNDS = 40


def is_probable_prime(n: int, rng: random.Random | None = None) -> bool:
    """Return True if ``n`` passes trial division and Miller–Rabin.

    Args:
        n: candidate integer.
        rng: randomness source for witness selection; a fresh
            ``random.Random(0xC0FFEE ^ n)`` is used when omitted so the
            test is deterministic per candidate.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if rng is None:
        rng = random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    backend = active_backend()
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = backend.powmod(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = backend.mulmod(x, x, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a probable prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2 * bits`` bits, which key generation relies on.

    Args:
        bits: bit length of the prime; must be at least 16.
        rng: randomness source.

    Raises:
        CryptoError: if ``bits`` is too small.
    """
    if bits < 16:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def invmod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises:
        CryptoError: if ``a`` is not invertible mod ``m``.
    """
    return active_backend().invert(a, m)


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` through the active backend."""
    return active_backend().powmod(base, exponent, modulus)


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    import math

    return a // math.gcd(a, b) * b


def crt_pair(
    residue_p: int, residue_q: int, p: int, q: int, q_inv_p: int
) -> int:
    """Recombine residues mod ``p`` and mod ``q`` into a residue mod ``p*q``.

    Uses Garner's formula with the precomputed ``q^{-1} mod p``:
    ``x = r_q + q * ((r_p - r_q) * q_inv_p mod p)``.

    Args:
        residue_p: value mod ``p``.
        residue_q: value mod ``q``.
        p: first modulus.
        q: second modulus.
        q_inv_p: precomputed inverse of ``q`` modulo ``p``.
    """
    h = ((residue_p - residue_q) * q_inv_p) % p
    return residue_q + q * h


def sample_coprime(n: int, rng: random.Random) -> int:
    """Sample a uniformly random unit of Z_n (an ``r`` with gcd(r, n) = 1)."""
    import math

    while True:
        r = rng.randrange(1, n)
        if math.gcd(r, n) == 1:
            return r


def keypair_primes(key_size: int, rng: random.Random) -> Tuple[int, int]:
    """Generate two distinct primes whose product has ``key_size`` bits.

    Args:
        key_size: target modulus size in bits (must be even).
        rng: randomness source.

    Raises:
        CryptoError: if a valid pair cannot be produced.
    """
    if key_size % 2 != 0:
        raise CryptoError(f"key_size must be even, got {key_size}")
    half = key_size // 2
    for _ in range(64):
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() == key_size:
            return p, q
    raise CryptoError(
        f"failed to generate a {key_size}-bit modulus after 64 attempts"
    )
