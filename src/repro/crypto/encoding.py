"""Plaintext encodings for pushing neural-network values through Paillier.

Paillier operates on residues of Z_n.  Neural networks operate on signed
(and, before parameter scaling, floating-point) values.  Two encoders
bridge the gap:

* :class:`SignedEncoder` maps signed integers into Z_n with the usual
  half-range convention: non-negative values map to themselves, negative
  values to ``n + x``.  Homomorphic sums/products stay correct as long as
  the magnitude of every intermediate value stays below ``n / 2`` — the
  encoder exposes that headroom so callers can check it.

* :class:`FixedPointEncoder` composes the signed encoding with the
  paper's parameter scaling (Section IV-A): a value ``v`` is stored as
  ``round(v * 10^f)``.  Multiplying two scaled values multiplies the
  exponents, so the encoder tracks the *accumulated* exponent of a
  homomorphic expression and divides it out on decode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EncodingError
from .paillier import PaillierPublicKey


@dataclass(frozen=True)
class SignedEncoder:
    """Half-range signed-integer encoding into Z_n.

    Values in ``[0, n/2)`` are positive; values in ``(n/2, n)`` decode to
    ``value - n``.  The midpoint itself is rejected as ambiguous.
    """

    public_key: PaillierPublicKey

    @property
    def max_magnitude(self) -> int:
        """Largest absolute value representable without wraparound."""
        return (self.public_key.n - 1) // 2

    def encode(self, value: int) -> int:
        """Encode a signed integer into a residue of Z_n.

        Raises:
            EncodingError: if ``abs(value)`` exceeds the headroom.
        """
        if not isinstance(value, int):
            raise EncodingError(
                f"SignedEncoder encodes ints, got {type(value).__name__}"
            )
        if abs(value) > self.max_magnitude:
            raise EncodingError(
                f"value {value} exceeds signed headroom "
                f"+/-{self.max_magnitude}"
            )
        return value % self.public_key.n

    def decode(self, residue: int) -> int:
        """Decode a residue of Z_n back to a signed integer."""
        n = self.public_key.n
        if not 0 <= residue < n:
            raise EncodingError(f"residue {residue} out of range [0, n)")
        if residue > n // 2:
            return residue - n
        return residue


@dataclass(frozen=True)
class FixedPointEncoder:
    """Signed fixed-point encoding with a base-10 scaling exponent.

    This realizes the paper's parameter scaling for the data path: a
    float ``v`` is encoded as the signed integer ``round(v * 10^f)``.
    The homomorphic linear layer multiplies encrypted inputs (exponent
    ``f_in``) by scaled integer weights (exponent ``f_w``), producing
    results at exponent ``f_in + f_w``; :meth:`decode` takes the
    accumulated exponent and divides it back out.

    Attributes:
        public_key: Paillier public key providing the modulus.
        exponent: decimal places ``f`` of this encoder (``F = 10^f``).
    """

    public_key: PaillierPublicKey
    exponent: int

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise EncodingError(
                f"exponent must be non-negative, got {self.exponent}"
            )

    @property
    def scale(self) -> int:
        """The scaling factor ``F = 10^f``."""
        return 10 ** self.exponent

    @property
    def signed(self) -> SignedEncoder:
        return SignedEncoder(self.public_key)

    def encode(self, value: float) -> int:
        """Encode a float into a residue of Z_n at this exponent."""
        scaled = round(float(value) * self.scale)
        return self.signed.encode(scaled)

    def decode(self, residue: int, accumulated_exponent: int | None = None
               ) -> float:
        """Decode a residue back to a float.

        Args:
            residue: decrypted residue of Z_n.
            accumulated_exponent: total decimal exponent of the value
                (defaults to this encoder's own exponent).
        """
        if accumulated_exponent is None:
            accumulated_exponent = self.exponent
        signed = self.signed.decode(residue)
        return signed / (10 ** accumulated_exponent)

    def headroom_exponent(self, max_abs_value: float) -> int:
        """How many further decimal digits fit before wraparound.

        Useful for validating that a chain of scaled multiplications
        cannot overflow the signed range for inputs bounded by
        ``max_abs_value``.
        """
        if max_abs_value <= 0:
            raise EncodingError("max_abs_value must be positive")
        budget = self.signed.max_magnitude / max_abs_value
        digits = 0
        while 10 ** (digits + 1) <= budget:
            digits += 1
        return digits
