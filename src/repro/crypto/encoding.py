"""Plaintext encodings for pushing neural-network values through Paillier.

Paillier operates on residues of Z_n.  Neural networks operate on signed
(and, before parameter scaling, floating-point) values.  Two encoders
bridge the gap:

* :class:`SignedEncoder` maps signed integers into Z_n with the usual
  half-range convention: non-negative values map to themselves, negative
  values to ``n + x``.  Homomorphic sums/products stay correct as long as
  the magnitude of every intermediate value stays below ``n / 2`` — the
  encoder exposes that headroom so callers can check it.

* :class:`FixedPointEncoder` composes the signed encoding with the
  paper's parameter scaling (Section IV-A): a value ``v`` is stored as
  ``round(v * 10^f)``.  Multiplying two scaled values multiplies the
  exponents, so the encoder tracks the *accumulated* exponent of a
  homomorphic expression and divides it out on decode.

* :class:`LanePacker` packs the same tensor position of B batch inputs
  into **one** Z_n plaintext as fixed-width lanes, so one modular
  exponentiation serves all B batch elements (the ciphertext
  amortization Popcorn builds batched Paillier inference on).  Each
  lane carries a signed value in offset form; guard bits keep
  homomorphic accumulation from ever carrying into the next lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import EncodingError
from .paillier import PaillierPublicKey

#: Default guard bits per lane: homomorphic accumulation may exceed the
#: advertised per-value magnitude by up to ``2^guard_bits`` before a
#: lane could carry into its neighbour.  The protocol path sizes lanes
#: from the headroom analysis's *peak* intermediate bound, so the guard
#: is pure safety margin there.
DEFAULT_GUARD_BITS = 2


@dataclass(frozen=True)
class SignedEncoder:
    """Half-range signed-integer encoding into Z_n.

    Values in ``[0, n/2)`` are positive; values in ``(n/2, n)`` decode to
    ``value - n``.  The midpoint itself is rejected as ambiguous.
    """

    public_key: PaillierPublicKey

    @property
    def max_magnitude(self) -> int:
        """Largest absolute value representable without wraparound."""
        return (self.public_key.n - 1) // 2

    def encode(self, value: int) -> int:
        """Encode a signed integer into a residue of Z_n.

        Raises:
            EncodingError: if ``abs(value)`` exceeds the headroom.
        """
        if not isinstance(value, int):
            raise EncodingError(
                f"SignedEncoder encodes ints, got {type(value).__name__}"
            )
        if abs(value) > self.max_magnitude:
            raise EncodingError(
                f"value {value} exceeds signed headroom "
                f"+/-{self.max_magnitude}"
            )
        return value % self.public_key.n

    def decode(self, residue: int) -> int:
        """Decode a residue of Z_n back to a signed integer."""
        n = self.public_key.n
        if not 0 <= residue < n:
            raise EncodingError(f"residue {residue} out of range [0, n)")
        if residue > n // 2:
            return residue - n
        return residue


@dataclass(frozen=True)
class FixedPointEncoder:
    """Signed fixed-point encoding with a base-10 scaling exponent.

    This realizes the paper's parameter scaling for the data path: a
    float ``v`` is encoded as the signed integer ``round(v * 10^f)``.
    The homomorphic linear layer multiplies encrypted inputs (exponent
    ``f_in``) by scaled integer weights (exponent ``f_w``), producing
    results at exponent ``f_in + f_w``; :meth:`decode` takes the
    accumulated exponent and divides it back out.

    Attributes:
        public_key: Paillier public key providing the modulus.
        exponent: decimal places ``f`` of this encoder (``F = 10^f``).
    """

    public_key: PaillierPublicKey
    exponent: int

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise EncodingError(
                f"exponent must be non-negative, got {self.exponent}"
            )

    @property
    def scale(self) -> int:
        """The scaling factor ``F = 10^f``."""
        return 10 ** self.exponent

    @property
    def signed(self) -> SignedEncoder:
        return SignedEncoder(self.public_key)

    def encode(self, value: float) -> int:
        """Encode a float into a residue of Z_n at this exponent."""
        scaled = round(float(value) * self.scale)
        return self.signed.encode(scaled)

    def decode(self, residue: int, accumulated_exponent: int | None = None
               ) -> float:
        """Decode a residue back to a float.

        Args:
            residue: decrypted residue of Z_n.
            accumulated_exponent: total decimal exponent of the value
                (defaults to this encoder's own exponent).
        """
        if accumulated_exponent is None:
            accumulated_exponent = self.exponent
        signed = self.signed.decode(residue)
        return signed / (10 ** accumulated_exponent)

    def headroom_exponent(self, max_abs_value: float) -> int:
        """How many further decimal digits fit before wraparound.

        Useful for validating that a chain of scaled multiplications
        cannot overflow the signed range for inputs bounded by
        ``max_abs_value``.
        """
        if max_abs_value <= 0:
            raise EncodingError("max_abs_value must be positive")
        budget = self.signed.max_magnitude / max_abs_value
        digits = 0
        while 10 ** (digits + 1) <= budget:
            digits += 1
        return digits


@dataclass(frozen=True)
class LanePacker:
    """Batch-axis lane packing of signed integers into one Z_n residue.

    Lane ``k`` of a packed plaintext occupies bits
    ``[k * lane_bits, (k+1) * lane_bits)`` and stores a signed value
    ``v`` in offset form ``u = v + offset`` with
    ``offset = 2^(lane_bits - 1)`` (the lane midpoint), so every lane's
    content is non-negative and base-``2^lane_bits`` digit extraction
    recovers it exactly.

    The lane width decomposes as::

        lane_bits = mag_bits + guard_bits + 1

    * ``mag_bits`` — the advertised per-value bound: any packed (or
      homomorphically computed) value with ``|v| < 2^mag_bits`` is
      representable.
    * ``guard_bits`` — slack for homomorphic accumulation: a lane only
      carries into its neighbour once ``|v| >= 2^(mag_bits +
      guard_bits)``, i.e. the true value exceeded the advertised bound
      ``2^guard_bits``-fold.
    * the final bit holds the offset (sign) headroom.

    Homomorphic ops act on all lanes at once.  Addition of two packed
    plaintexts adds lane-wise but doubles the offset; scalar
    multiplication by ``w`` scales the offset by ``w`` (and a negative
    ``w`` drives lanes "virtually negative" mod n).  Both are repaired
    by adding the packed constant :meth:`rebias_residue` — arithmetic
    mod n is exact, so intermediate out-of-range lane states are fine
    as long as the *final* residue has every lane back in
    ``[0, 2^lane_bits)`` before decoding.  Callers track the current
    per-lane offset (see ``PackedEncryptedTensor.lane_offset``).

    Capacity: ``lanes * lane_bits`` must fit strictly below the
    modulus, enforced as ``<= n.bit_length() - 1`` so a fully-occupied
    packed value is always ``< 2^(n_bits - 1) <= n``.
    """

    public_key: PaillierPublicKey
    lanes: int
    mag_bits: int
    guard_bits: int = DEFAULT_GUARD_BITS

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise EncodingError(f"lanes must be >= 1, got {self.lanes}")
        if self.mag_bits < 1:
            raise EncodingError(
                f"mag_bits must be >= 1, got {self.mag_bits}"
            )
        if self.guard_bits < 0:
            raise EncodingError(
                f"guard_bits must be >= 0, got {self.guard_bits}"
            )
        if self.lanes * self.lane_bits > self.capacity_bits:
            raise EncodingError(
                f"{self.lanes} lanes of {self.lane_bits} bits exceed "
                f"the {self.capacity_bits}-bit packing capacity of "
                f"this {self.public_key.key_size}-bit key"
            )

    @property
    def lane_bits(self) -> int:
        """Width of one lane in bits."""
        return self.mag_bits + self.guard_bits + 1

    @property
    def capacity_bits(self) -> int:
        """Packable bits: every packed residue stays below ``n``."""
        return self.public_key.n.bit_length() - 1

    @classmethod
    def capacity(cls, public_key: PaillierPublicKey, mag_bits: int,
                 guard_bits: int = DEFAULT_GUARD_BITS) -> int:
        """Max lanes of the given geometry that fit under this key."""
        lane_bits = mag_bits + guard_bits + 1
        return (public_key.n.bit_length() - 1) // lane_bits

    @property
    def offset(self) -> int:
        """The canonical per-lane offset (lane midpoint)."""
        return 1 << (self.lane_bits - 1)

    @property
    def max_magnitude(self) -> int:
        """Largest advertised |value| per lane (``2^mag_bits - 1``)."""
        return (1 << self.mag_bits) - 1

    @property
    def ones_mask(self) -> int:
        """The packed representation of 1-per-lane: multiply by a
        per-lane constant ``c`` to get the packed constant ``c`` in
        every lane."""
        mask = 0
        for lane in range(self.lanes):
            mask |= 1 << (lane * self.lane_bits)
        return mask

    def pack(self, values: Sequence[int]) -> int:
        """Pack up to ``lanes`` signed integers into one Z_n residue.

        Lane ``k`` holds ``values[k]``; missing trailing lanes pack 0.
        Every lane is stored at the canonical :attr:`offset`.

        Raises:
            EncodingError: too many values, or one exceeds the
                advertised magnitude.
        """
        values = list(values)
        if len(values) > self.lanes:
            raise EncodingError(
                f"{len(values)} values exceed the {self.lanes}-lane "
                "capacity"
            )
        offset = self.offset
        limit = self.max_magnitude
        packed = 0
        shift = 0
        width = self.lane_bits
        for value in values:
            value = int(value)
            if abs(value) > limit:
                raise EncodingError(
                    f"value {value} exceeds the advertised lane "
                    f"magnitude +/-{limit}"
                )
            packed |= (value + offset) << shift
            shift += width
        return packed

    def unpack(self, residue: int, count: int | None = None,
               lane_offset: int | None = None) -> list[int]:
        """Extract ``count`` signed lane values from a packed residue.

        Args:
            residue: packed Z_n residue (e.g. a decryption result).
            count: occupied lanes to decode (default: all lanes).
            lane_offset: the per-lane offset the residue currently
                carries (default: the canonical :attr:`offset`).

        Raises:
            EncodingError: the residue has bits above the top lane —
                the signature of a lane carry/overflow upstream.
        """
        if count is None:
            count = self.lanes
        if not 0 <= count <= self.lanes:
            raise EncodingError(
                f"count {count} out of range [0, {self.lanes}]"
            )
        if lane_offset is None:
            lane_offset = self.offset
        if residue < 0:
            raise EncodingError("packed residue must be non-negative")
        width = self.lane_bits
        if residue >> (self.lanes * width):
            raise EncodingError(
                "packed residue overflows the lane budget — a lane "
                "carried, or the value was not lane-packed"
            )
        mask = (1 << width) - 1
        out = []
        for lane in range(count):
            out.append(((residue >> (lane * width)) & mask)
                       - lane_offset)
        return out

    def rebias_residue(self, delta: int) -> int:
        """The Z_n residue that adds ``delta`` to **every** lane.

        Homomorphically adding this residue (one modular multiply by
        ``1 + n * residue``) shifts each lane's offset by ``delta``;
        negative deltas wrap mod n and the borrows cancel lane-wise as
        long as the final lane contents land back in range.
        """
        return (delta * self.ones_mask) % self.public_key.n
