"""Lightweight tracing: spans with monotonic timestamps + parent links.

A :class:`Tracer` hands out :class:`Span` objects stamped with
``time.perf_counter()`` (monotonic — immune to wall-clock jumps, so
durations are trustworthy even across NTP corrections).  Each span
carries a ``trace_id`` that ties every piece of work done for one
request together, and a ``parent_id`` linking it into a tree:

* the stream runtime roots one ``request`` span per admitted item,
  hangs an ``admit`` span and one ``stage-N`` span per stage under it,
  and records ``retry`` / ``restart`` / ``dead-letter`` events as
  zero-duration child spans — so the span tree reconstructs exactly
  what :class:`~repro.stream.pipeline.StreamStats` counts;
* the sequential protocol path roots one ``inference`` span per call
  with ``linear-round`` / ``nonlinear-round`` children.

Trace and span ids are small counter-based strings, not UUIDs: this
is intra-process tracing, and cheap ids keep the enabled-path
overhead low.  The :class:`NullTracer` twin allocates **no** span
objects at all — its context manager is a shared singleton — which is
what "observability off" hands to every hot path.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class Span:
    """One timed operation within a trace.

    Attributes:
        name: operation name (e.g. ``stage-2``, ``retry``).
        trace_id: id shared by every span of one request.
        span_id: unique id of this span within its tracer.
        parent_id: ``span_id`` of the enclosing span, or None for a
            root.
        start / end: ``perf_counter()`` timestamps; ``end`` is None
            while the span is open.
        attrs: free-form key/value annotations.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id",
                 "start", "end", "attrs")

    def __init__(self, name: str, trace_id: Optional[str],
                 span_id: str, parent_id: Optional[str],
                 attrs: Optional[dict] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs = dict(attrs) if attrs else {}

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def finish(self) -> None:
        """Stamp the end time (idempotent; first call wins)."""
        if self.end is None:
            self.end = time.perf_counter()

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _SpanContext:
    """Context manager pairing ``begin_span`` with ``finish``."""

    __slots__ = ("_span",)

    def __init__(self, span: Span):
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.set_attr("error", repr(exc))
        self._span.finish()
        return False


class Tracer:
    """Collects spans; thread-safe (workers record concurrently)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_span = 0
        self._next_trace = 0

    def new_trace_id(self, prefix: str = "trace") -> str:
        """A fresh id every span of one request will share."""
        with self._lock:
            self._next_trace += 1
            return f"{prefix}-{self._next_trace:04d}"

    def begin_span(self, name: str, trace_id: Optional[str] = None,
                   parent_id: Optional[str] = None, **attrs) -> Span:
        """Open a span now; the caller must :meth:`Span.finish` it.

        Use this when a span opens and closes on different threads
        (the stream runtime's per-request root span is admitted by
        the producer thread and finished at the sink drain).
        """
        with self._lock:
            self._next_span += 1
            span = Span(name, trace_id, f"s{self._next_span:05d}",
                        parent_id, attrs)
            self._spans.append(span)
        return span

    def span(self, name: str, trace_id: Optional[str] = None,
             parent_id: Optional[str] = None, **attrs) -> _SpanContext:
        """Context manager: open a span, finish it on exit."""
        return _SpanContext(
            self.begin_span(name, trace_id, parent_id, **attrs)
        )

    def event(self, name: str, trace_id: Optional[str] = None,
              parent_id: Optional[str] = None, **attrs) -> Span:
        """A zero-duration span marking a point event (retry, restart,
        dead-letter)."""
        span = self.begin_span(name, trace_id, parent_id, **attrs)
        span.end = span.start
        return span

    # -- inspection ----------------------------------------------------

    def spans(self, trace_id: Optional[str] = None,
              name: Optional[str] = None) -> List[Span]:
        """Snapshot of recorded spans, optionally filtered."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def trace_ids(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans():
            if span.trace_id is not None and span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def export(self) -> List[dict]:
        """JSON-safe dump of every span (for the CLI trace dump)."""
        return [span.to_dict() for span in self.spans()]

    def tree(self, trace_id: str) -> List[dict]:
        """Reconstruct a trace's span tree.

        Returns the root nodes, each ``{"span": Span, "children":
        [...]}``; spans whose parent is missing from the trace are
        treated as roots (never silently dropped).
        """
        spans = self.spans(trace_id=trace_id)
        nodes: Dict[str, dict] = {
            s.span_id: {"span": s, "children": []} for s in spans
        }
        roots: List[dict] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = (nodes.get(span.parent_id)
                      if span.parent_id is not None else None)
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def render(self, trace_id: str) -> str:
        """Human-readable indented dump of one trace's span tree."""
        lines: List[str] = [f"trace {trace_id}:"]

        def walk(node: dict, depth: int) -> None:
            span = node["span"]
            duration = (f"{span.duration * 1e3:.2f}ms"
                        if span.end is not None else "open")
            attrs = ", ".join(f"{k}={v}"
                              for k, v in sorted(span.attrs.items()))
            attrs = f" [{attrs}]" if attrs else ""
            lines.append(f"{'  ' * (depth + 1)}{span.name} "
                         f"({duration}){attrs}")
            for child in node["children"]:
                walk(child, depth + 1)

        for root in self.tree(trace_id):
            walk(root, 0)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# No-op twins.
# ----------------------------------------------------------------------

class _NullSpan:
    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    start = 0.0
    end = 0.0
    attrs: dict = {}
    duration = 0.0

    def set_attr(self, key: str, value) -> None:
        pass

    def finish(self) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracer twin that allocates no spans whatsoever."""

    enabled = False

    def new_trace_id(self, prefix: str = "trace") -> None:
        return None

    def begin_span(self, name: str, trace_id=None, parent_id=None,
                   **attrs) -> _NullSpan:
        return NULL_SPAN

    def span(self, name: str, trace_id=None, parent_id=None,
             **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, trace_id=None, parent_id=None,
              **attrs) -> _NullSpan:
        return NULL_SPAN

    def spans(self, trace_id=None, name=None) -> List[Span]:
        return []

    def trace_ids(self) -> List[str]:
        return []

    def export(self) -> List[dict]:
        return []

    def tree(self, trace_id: str) -> List[dict]:
        return []

    def render(self, trace_id: str) -> str:
        return ""


#: Shared no-op tracer.
NULL_TRACER = NullTracer()
