"""Thread-safe metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is the single sink every instrumented
subsystem reports into.  Metrics are identified by ``(name, labels)``
— the Prometheus data model — and created on first use, so call sites
never coordinate registration.  The registry exports two formats:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict that round-trips
  losslessly through :meth:`MetricsRegistry.from_snapshot` (the BENCH
  breakdown section and the ``python -m repro metrics`` CLI use this);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format, for scraping or eyeballing.

Disabled observability must cost nothing on the hot path, so the
module also provides no-op twins (:data:`NULL_REGISTRY` and the null
metric singletons it hands out): a single attribute lookup plus an
empty method call per instrumentation point, no locks, no allocation.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import ObservabilityError

#: Default histogram buckets (seconds): spans four decades of latency,
#: from sub-millisecond crypto primitives to multi-second requests.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default buckets for size-like quantities (batch sizes, chunk sizes).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus-style number rendering: ints without a decimal."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, pool size).

    Alongside the current value the gauge tracks its **high-water
    mark** — the maximum ever set — which leak/soak sentinels read to
    bound quantities like channel depth over a whole run.  The mark is
    in-memory introspection only (not part of the snapshot or the
    Prometheus export, whose formats are frozen by golden tests).
    """

    __slots__ = ("name", "labels", "_lock", "_value", "_high_water")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0
        self._high_water = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._high_water:
                self._high_water = self._value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._high_water:
                self._high_water = self._value

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_water(self) -> float:
        """Maximum value this gauge ever held."""
        return self._high_water


class Histogram:
    """A fixed-bucket histogram of observations.

    ``buckets`` are ascending upper bounds; one implicit overflow
    bucket (``+Inf``) catches everything beyond the last bound, so an
    observation is never dropped.  Counts are cumulative only at
    export time (Prometheus semantics); internally each bucket holds
    its own count, which is what the snapshot round-trips.
    """

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(self, name: str, labels: _LabelKey,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(
                f"histogram {name} needs at least one bucket"
            )
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly ascending"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last is the overflow."""
        with self._lock:
            return list(self._counts)


class MetricsRegistry:
    """Get-or-create home for every metric, keyed by name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, _LabelKey], object] = {}

    def _get_or_create(self, kind: str, name: str, labels: _LabelKey,
                       factory):
        key = (kind, name, labels)
        metric = self._metrics.get(key)
        if metric is not None:
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for other_kind in ("counter", "gauge", "histogram"):
                    if other_kind != kind and \
                            (other_kind, name, labels) in self._metrics:
                        raise ObservabilityError(
                            f"metric {name!r} already registered as a "
                            f"{other_kind}, cannot re-register as a "
                            f"{kind}"
                        )
                metric = factory()
                self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        key = _label_key(labels)
        return self._get_or_create(
            "counter", name, key, lambda: Counter(name, key)
        )

    def gauge(self, name: str, **labels) -> Gauge:
        key = _label_key(labels)
        return self._get_or_create(
            "gauge", name, key, lambda: Gauge(name, key)
        )

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None,
                  **labels) -> Histogram:
        key = _label_key(labels)
        bounds = DEFAULT_BUCKETS if buckets is None else buckets
        return self._get_or_create(
            "histogram", name, key,
            lambda: Histogram(name, key, bounds),
        )

    def find(self, kind: str, name: str):
        """Every registered metric of ``kind`` (``counter`` /
        ``gauge`` / ``histogram``) named ``name``, as a list of
        ``(labels_dict, metric)`` pairs.  Soak sentinels use this to
        read e.g. every ``stream_queue_depth`` gauge's high-water mark
        without knowing the label sets in advance."""
        with self._lock:
            items = list(self._metrics.items())
        return [(dict(labels), metric)
                for (metric_kind, metric_name, labels), metric in items
                if metric_kind == kind and metric_name == name]

    # -- export --------------------------------------------------------

    def _sorted_metrics(self):
        with self._lock:
            items = list(self._metrics.items())
        return sorted(items, key=lambda kv: (kv[0][1], kv[0][2]))

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric; see :meth:`from_snapshot`."""
        counters, gauges, histograms = [], [], []
        for (kind, name, labels), metric in self._sorted_metrics():
            entry: dict = {"name": name, "labels": dict(labels)}
            if kind == "counter":
                entry["value"] = metric.value
                counters.append(entry)
            elif kind == "gauge":
                entry["value"] = metric.value
                gauges.append(entry)
            else:
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = metric.bucket_counts()
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                histograms.append(entry)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    @classmethod
    def from_snapshot(cls, doc: Mapping) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``doc``."""
        registry = cls()
        for entry in doc.get("counters", ()):
            registry.counter(entry["name"], **entry["labels"]).inc(
                entry["value"]
            )
        for entry in doc.get("gauges", ()):
            registry.gauge(entry["name"], **entry["labels"]).set(
                entry["value"]
            )
        for entry in doc.get("histograms", ()):
            histogram = registry.histogram(
                entry["name"], buckets=entry["buckets"],
                **entry["labels"],
            )
            with histogram._lock:
                histogram._counts = list(entry["counts"])
                histogram._sum = entry["sum"]
                histogram._count = entry["count"]
        return registry

    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        seen_types: set = set()
        for (kind, name, labels), metric in self._sorted_metrics():
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")
            label_text = ",".join(f'{k}="{v}"' for k, v in labels)
            suffix = f"{{{label_text}}}" if label_text else ""
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{suffix} {_format_value(metric.value)}"
                )
                continue
            cumulative = 0
            counts = metric.bucket_counts()
            for bound, bucket_count in zip(
                list(metric.buckets) + [float("inf")], counts
            ):
                cumulative += bucket_count
                le = ([f'le="{_format_value(bound)}"']
                      + [f'{k}="{v}"' for k, v in labels])
                lines.append(
                    f"{name}_bucket{{{','.join(le)}}} {cumulative}"
                )
            lines.append(
                f"{name}_sum{suffix} {_format_value(metric.sum)}"
            )
            lines.append(f"{name}_count{suffix} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# No-op twins: what disabled observability hands to the hot paths.
# ----------------------------------------------------------------------

class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def high_water(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()
    buckets: Tuple[float, ...] = ()

    def observe(self, value: float) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def bucket_counts(self) -> List[int]:
        return []


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Registry twin that allocates nothing and records nothing."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None,
                  **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def find(self, kind: str, name: str) -> list:
        return []

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}

    def to_prometheus(self) -> str:
        return ""


#: Shared no-op registry; safe to hand to any number of components.
NULL_REGISTRY = NullRegistry()
