"""Observability layer: metrics registry + per-request tracing.

One :class:`Observability` object bundles the two sinks every
instrumented subsystem reports into — a
:class:`~repro.observability.metrics.MetricsRegistry` (counters,
gauges, fixed-bucket histograms; JSON + Prometheus export) and a
:class:`~repro.observability.tracing.Tracer` (spans with monotonic
timestamps, parent links, and per-request trace ids).

It is **off by default** (:attr:`repro.config.RuntimeConfig.
observability`), and disabled observability hands out shared no-op
twins so the hot paths pay one empty method call per instrumentation
point — no locks, no allocation.  See docs/OBSERVABILITY.md for what
is emitted where and the measured overhead.

Wiring pattern: construct one enabled :class:`Observability` and pass
it to both protocol parties plus the pipeline/session so every
subsystem reports into the same registry and tracer::

    obs = Observability()
    model_provider = ModelProvider(model, decimals=3, config=cfg,
                                   obs=obs)
    data_provider = DataProvider(value_decimals=3, config=cfg, obs=obs)
    pipeline = Pipeline(model_provider, data_provider, plan, obs=obs)
    stats = pipeline.run_stream(inputs)
    print(obs.registry.to_prometheus())
    print(obs.tracer.render(obs.tracer.trace_ids()[0]))

When components are built without an explicit ``obs``, each derives
its own from its config (``Observability.from_config``) — enabled
runs still record everything, just into per-party registries; the
pipeline and session adopt the model provider's instance by default
so stream/protocol metrics land beside the model-side engine's.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SIZE_BUCKETS,
)
from .tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


class Observability:
    """Bundle of one metrics registry and one tracer.

    Args:
        enabled: when False, both sinks are the shared no-op twins.
        registry / tracer: explicit sinks (enabled mode only); fresh
            ones are created when omitted.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.enabled = bool(enabled)
        if self.enabled:
            self.registry = registry if registry is not None \
                else MetricsRegistry()
            self.tracer = tracer if tracer is not None else Tracer()
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER

    def __bool__(self) -> bool:
        return self.enabled

    @classmethod
    def from_config(cls, config) -> "Observability":
        """The instance a component should use for ``config``:
        a fresh enabled one when ``config.observability`` is set, the
        shared no-op singleton otherwise."""
        if getattr(config, "observability", False):
            return cls(enabled=True)
        return OBS_OFF


#: The shared disabled instance — what every component defaults to.
OBS_OFF = Observability(enabled=False)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "OBS_OFF",
    "Observability",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
]
