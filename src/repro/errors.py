"""Exception hierarchy for the PP-Stream reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
grouped by subsystem (crypto, protocol, planner, stream) and carry enough
context in their messages to diagnose a failure without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent runtime configuration was supplied."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Paillier key generation failed (e.g. key size too small)."""


class EncryptionError(CryptoError):
    """A plaintext could not be encrypted (out of range, wrong key)."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (corrupt or wrong key)."""


class KeyMismatchError(CryptoError):
    """Two ciphertexts under different public keys were combined."""


class EncodingError(CryptoError):
    """A value could not be encoded into / decoded from Z_n."""


class ObfuscationError(ReproError):
    """Permutation/obfuscation protocol misuse (bad seed, wrong length)."""


class ModelError(ReproError):
    """Invalid neural-network construction or shape mismatch."""


class TrainingError(ReproError):
    """Training diverged or was configured inconsistently."""


class ScalingError(ReproError):
    """Parameter scaling failed (no admissible scaling factor)."""


class PlannerError(ReproError):
    """Base class for planning/allocation failures."""


class InfeasibleAllocationError(PlannerError):
    """The resource-allocation ILP has no feasible solution."""


class SolverError(PlannerError):
    """The branch-and-bound MILP solver failed to converge."""


class PartitioningError(ReproError):
    """Tensor partitioning was requested on an unsupported layer/shape."""


class StreamError(ReproError):
    """Base class for stream-runtime failures."""


class PipelineShutdownError(StreamError):
    """An operation was attempted on a pipeline that is shut down."""


class StageFailedError(StreamError):
    """A stage worker raised; the original traceback is chained."""


class TransientStageError(StreamError):
    """A stage failure expected to succeed on retry (e.g. a flaky
    executor, a transient resource hiccup).  The retry policy backs
    off and re-runs the item."""


class PoisonedRequestError(StreamError):
    """A per-request failure that no retry can fix (malformed tensor,
    protocol violation for this input).  The request is dead-lettered
    immediately; the pipeline keeps serving everything else."""


class WorkerCrashError(StreamError):
    """A stage worker's thread died outside item processing; the
    supervisor may restart the worker and re-inject the in-flight
    item."""


class TransportError(StreamError):
    """A networked-runtime transport failure: broken frame, closed
    socket, oversized message, or a timed-out round trip.  Classified
    transient by default, so the coordinator's retry policy re-runs the
    affected stage task (typically against a failover worker)."""


class HandshakeError(TransportError):
    """A remote worker and the coordinator could not agree on a session
    (version, role, key, or config mismatch)."""


class DeadlineExceededError(ReproError):
    """A request blew its per-request deadline (stream or sequential
    protocol path)."""


class ProtocolError(ReproError):
    """The collaborative inference protocol was violated."""


class SecurityViolationError(ProtocolError):
    """An operation would leak information it must not (guard rails)."""


class ObservabilityError(ReproError):
    """The observability layer was misused (metric type conflict,
    malformed histogram buckets)."""


class ServeError(ReproError):
    """The multi-tenant serving gateway was misused or failed
    (docs/SERVING.md)."""


class JobStateError(ServeError):
    """An illegal job state transition was attempted (the per-job
    state machine only admits the documented edges)."""


class TenantError(ServeError):
    """A tenant operation failed: unknown tenant, tenant cap reached,
    or a cross-tenant access attempt."""


class TenantRejectedError(TenantError):
    """Tenant registration was refused as a *non-retryable* condition:
    the name is not on the configured allowlist, or the tenant table
    is full and nothing is evictable.  The gateway maps this to a 4xx
    without ``Retry-After`` — retrying the same request cannot
    succeed until an operator (or idle eviction) frees a slot."""


class ClusterError(ReproError):
    """The elastic-fleet subsystem was misused or failed
    (docs/ELASTIC.md)."""


class ClusterMembershipError(ClusterError):
    """A membership operation was refused: joining a fleet that is not
    accepting members, draining an unknown member, or draining the
    last worker of a role (which would strand that role's stages)."""


class SimulationError(ReproError):
    """The discrete-event simulator was misconfigured."""


class DatasetError(ReproError):
    """A dataset was requested with invalid parameters."""


class BaselineError(ReproError):
    """A baseline system (2PC engine, reported numbers) failed."""
