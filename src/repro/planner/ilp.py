"""Generic mixed-integer linear programming by branch-and-bound.

The paper solves its load-balanced allocation ILP "with the
branch-and-bound method" (via Gurobi).  Gurobi is unavailable here, so
this module implements branch-and-bound from scratch on top of
``scipy.optimize.linprog`` (HiGHS) LP relaxations: best-first search on
the relaxation bound, branching on the most fractional integer variable,
with incumbent pruning and a node budget.

The formulation object is deliberately standard form — minimize c.x
subject to ``A_ub x <= b_ub``, ``A_eq x == b_eq``, variable bounds, and
an integrality mask — so it can express any small MILP, and the
allocation builder in :mod:`repro.planner.allocation` is just one
client.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..errors import SolverError

#: Tolerance under which a relaxation value counts as integral.
INTEGRALITY_TOL = 1e-6


@dataclass
class MILP:
    """A mixed-integer linear program in standard minimization form.

    Attributes:
        c: objective coefficients (minimize c @ x).
        a_ub, b_ub: inequality constraints ``a_ub @ x <= b_ub``.
        a_eq, b_eq: equality constraints.
        bounds: per-variable (low, high) bounds; None means unbounded.
        integer: per-variable integrality flags.
        names: optional variable names for debugging.
    """

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    bounds: Optional[List[Tuple[Optional[float], Optional[float]]]] = None
    integer: Optional[np.ndarray] = None
    names: Optional[List[str]] = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=np.float64)
        n = self.c.shape[0]
        if self.bounds is None:
            self.bounds = [(0.0, None)] * n
        if len(self.bounds) != n:
            raise SolverError("bounds length != variable count")
        if self.integer is None:
            self.integer = np.zeros(n, dtype=bool)
        self.integer = np.asarray(self.integer, dtype=bool)
        if self.integer.shape[0] != n:
            raise SolverError("integer mask length != variable count")
        for matrix, vector, label in (
            (self.a_ub, self.b_ub, "ub"), (self.a_eq, self.b_eq, "eq"),
        ):
            if (matrix is None) != (vector is None):
                raise SolverError(f"a_{label} and b_{label} must be given "
                                  "together")
            if matrix is not None and \
                    np.asarray(matrix).shape[1] != n:
                raise SolverError(f"a_{label} column count != variables")

    @property
    def num_variables(self) -> int:
        return self.c.shape[0]


@dataclass
class MILPResult:
    """Solution of a MILP.

    Attributes:
        x: optimal variable values (integral where required).
        objective: optimal objective value.
        status: "optimal", "infeasible", or "node_limit".
        nodes_explored: branch-and-bound nodes processed.
    """

    x: Optional[np.ndarray]
    objective: Optional[float]
    status: str
    nodes_explored: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def _solve_relaxation(
    problem: MILP,
    extra_bounds: dict[int, Tuple[float, float]],
) -> tuple[Optional[np.ndarray], Optional[float]]:
    bounds = list(problem.bounds)
    for index, (low, high) in extra_bounds.items():
        old_low, old_high = bounds[index]
        new_low = low if old_low is None else max(low, old_low)
        new_high = high if old_high is None else min(high, old_high)
        if new_high is not None and new_low is not None \
                and new_low > new_high + 1e-12:
            return None, None
        bounds[index] = (new_low, new_high)
    result = linprog(
        problem.c,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None, None
    return result.x, float(result.fun)


def _most_fractional(
    x: np.ndarray, integer_mask: np.ndarray
) -> Optional[int]:
    """Index of the integer variable whose relaxed value is closest to
    half-integral, or None when all are integral within tolerance."""
    fractional = [
        (abs(x[i] - round(x[i])), int(i))
        for i in np.flatnonzero(integer_mask)
        if abs(x[i] - round(x[i])) > INTEGRALITY_TOL
    ]
    if not fractional:
        return None
    fractional.sort(key=lambda pair: (-(0.5 - abs(pair[0] - 0.5)), pair[1]))
    return fractional[0][1]


def solve_milp(problem: MILP, max_nodes: int = 20000) -> MILPResult:
    """Branch-and-bound with best-first node selection.

    Args:
        problem: the MILP to solve.
        max_nodes: node budget; exceeding it returns the incumbent with
            status "node_limit" (or raises if there is none).

    Raises:
        SolverError: on a node-limit hit with no feasible incumbent.
    """
    counter = itertools.count()
    root_x, root_obj = _solve_relaxation(problem, {})
    if root_x is None:
        return MILPResult(None, None, "infeasible", nodes_explored=1)

    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    heap: list = [(root_obj, next(counter), {})]
    nodes = 0
    while heap:
        bound, _, extra = heapq.heappop(heap)
        if bound >= best_obj - 1e-9:
            continue
        nodes += 1
        if nodes > max_nodes:
            if best_x is None:
                raise SolverError(
                    f"branch-and-bound exceeded {max_nodes} nodes with no "
                    "incumbent"
                )
            return MILPResult(best_x, best_obj, "node_limit", nodes)
        x, objective = _solve_relaxation(problem, extra)
        if x is None or objective >= best_obj - 1e-9:
            continue
        branch_var = _most_fractional(x, problem.integer)
        if branch_var is None:
            rounded = x.copy()
            for index in np.flatnonzero(problem.integer):
                rounded[index] = round(rounded[index])
            best_x, best_obj = rounded, objective
            continue
        value = x[branch_var]
        down = dict(extra)
        down[branch_var] = _merge_branch(
            down.get(branch_var), upper=math.floor(value)
        )
        up = dict(extra)
        up[branch_var] = _merge_branch(
            up.get(branch_var), lower=math.ceil(value)
        )
        heapq.heappush(heap, (objective, next(counter), down))
        heapq.heappush(heap, (objective, next(counter), up))

    if best_x is None:
        return MILPResult(None, None, "infeasible", nodes)
    return MILPResult(best_x, best_obj, "optimal", nodes)


def _merge_branch(
    existing: Optional[Tuple[float, float]],
    lower: float | None = None,
    upper: float | None = None,
) -> Tuple[float, float]:
    low = -math.inf if existing is None else existing[0]
    high = math.inf if existing is None else existing[1]
    if lower is not None:
        low = max(low, lower)
    if upper is not None:
        high = min(high, upper)
    return (low, high)


def brute_force_milp(
    problem: MILP, value_ranges: Sequence[Sequence[float]]
) -> MILPResult:
    """Exhaustive reference solver for tiny all-integer MILPs (tests).

    Args:
        problem: MILP where *all* variables are integer.
        value_ranges: candidate values per variable.
    """
    if not bool(np.all(problem.integer)):
        raise SolverError("brute force requires all-integer problems")
    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    for combo in itertools.product(*value_ranges):
        x = np.asarray(combo, dtype=np.float64)
        if problem.a_ub is not None and \
                np.any(problem.a_ub @ x > np.asarray(problem.b_ub) + 1e-9):
            continue
        if problem.a_eq is not None and \
                np.any(np.abs(problem.a_eq @ x - np.asarray(problem.b_eq))
                       > 1e-9):
            continue
        feasible = True
        for value, (low, high) in zip(x, problem.bounds):
            if low is not None and value < low - 1e-9:
                feasible = False
            if high is not None and value > high + 1e-9:
                feasible = False
        if not feasible:
            continue
        objective = float(problem.c @ x)
        if objective < best_obj - 1e-12:
            best_obj = objective
            best_x = x
    if best_x is None:
        return MILPResult(None, None, "infeasible")
    return MILPResult(best_x, best_obj, "optimal")
