"""Primitive-layer extraction and merging (paper Section IV-B).

Each hidden layer maps to primitive layers containing only linear or
only non-linear operations: linear and non-linear layers map to
themselves; mixed layers decompose (e.g. ScaledSigmoid -> ElementwiseScale
+ Sigmoid).  Adjacent primitives of the same type then merge into one
*merged primitive layer* per pipeline stage — the middle ground between
the two extremes the paper rejects (one stage per primitive: excessive
serialization; one stage for everything: no privacy separation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import PlannerError
from ..nn.layers import Layer, LayerKind, OpCounts
from ..nn.model import Sequential


@dataclass(frozen=True)
class PrimitiveLayer:
    """A single linear-only or non-linear-only layer with its shapes."""

    layer: Layer
    kind: LayerKind
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]

    def op_counts(self) -> OpCounts:
        return self.layer.op_counts(self.input_shape)


@dataclass(frozen=True)
class MergedPrimitive:
    """A merged primitive layer — one pipeline stage (paper Fig. 4).

    Attributes:
        index: position in the merged sequence (0-based).
        kind: LINEAR (model provider) or NONLINEAR (data provider).
        primitives: the fused primitive layers, in execution order.
    """

    index: int
    kind: LayerKind
    primitives: Tuple[PrimitiveLayer, ...]

    @property
    def indicator(self) -> int:
        """The paper's I_i: +1 for linear, -1 for non-linear."""
        return 1 if self.kind is LayerKind.LINEAR else -1

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.primitives[0].input_shape

    @property
    def output_shape(self) -> Tuple[int, ...]:
        return self.primitives[-1].output_shape

    @property
    def layers(self) -> Tuple[Layer, ...]:
        return tuple(p.layer for p in self.primitives)

    def op_counts(self) -> OpCounts:
        counts = self.primitives[0].op_counts()
        for primitive in self.primitives[1:]:
            counts = counts.merge(primitive.op_counts())
        return counts

    def describe(self) -> str:
        names = "+".join(type(p.layer).__name__ for p in self.primitives)
        return f"stage {self.index} [{self.kind.value}]: {names}"


def extract_primitives(model: Sequential) -> List[PrimitiveLayer]:
    """Decompose a model into linear/non-linear primitive layers.

    Mixed layers are split via :meth:`Layer.decompose`.  Raises
    :class:`PlannerError` when a position-sensitive non-linearity
    (MaxPool, or SoftMax anywhere but the final position) survives —
    those cannot run on obfuscated tensors (Section III-C) and must be
    rewritten first (see ``maxpool_replacement``).
    """
    primitives: List[PrimitiveLayer] = []
    shape = model.input_shape
    for layer in model.layers:
        for part in layer.decompose():
            out_shape = part.output_shape(shape)
            if part.kind is LayerKind.MIXED:
                raise PlannerError(
                    f"decompose() of {type(layer).__name__} returned a "
                    "mixed layer"
                )
            primitives.append(
                PrimitiveLayer(part, part.kind, tuple(shape),
                               tuple(out_shape))
            )
            shape = out_shape
    _check_position_sensitive(primitives)
    return primitives


def _check_position_sensitive(primitives: Sequence[PrimitiveLayer]) -> None:
    for position, primitive in enumerate(primitives):
        sensitive = getattr(primitive.layer, "position_sensitive", False)
        if not sensitive:
            continue
        is_last = position == len(primitives) - 1
        if not is_last:
            raise PlannerError(
                f"position-sensitive layer "
                f"{type(primitive.layer).__name__} at position {position} "
                "cannot run on obfuscated tensors; only the final layer "
                "may be position-sensitive (paper Section III-C). "
                "Rewrite MaxPool via maxpool_replacement()."
            )


def merge_primitives(
    primitives: Sequence[PrimitiveLayer],
) -> List[MergedPrimitive]:
    """Merge adjacent primitives of the same kind into pipeline stages."""
    if not primitives:
        raise PlannerError("cannot merge an empty primitive sequence")
    merged: List[MergedPrimitive] = []
    group: List[PrimitiveLayer] = [primitives[0]]
    for primitive in primitives[1:]:
        if primitive.kind is group[-1].kind:
            group.append(primitive)
        else:
            merged.append(
                MergedPrimitive(len(merged), group[0].kind, tuple(group))
            )
            group = [primitive]
    merged.append(MergedPrimitive(len(merged), group[0].kind, tuple(group)))
    return merged


def model_stages(model: Sequential) -> List[MergedPrimitive]:
    """Convenience: extract + merge in one call."""
    return merge_primitives(extract_primitives(model))
