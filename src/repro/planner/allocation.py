"""Load-balanced resource allocation (paper Section IV-C, Eq. 4-8).

Given merged primitive layers with profiled times T_i and a cluster,
choose a server x_{i,j} and thread count y_i per stage to minimize the
sum of pairwise absolute differences of per-thread times T_i / y_i.

Two solvers:

* :func:`build_allocation_milp` + the branch-and-bound solver — the
  faithful ILP formulation.  |t_i - t_j| terms are linearized with
  epigraph variables; the non-linear T_i / y_i is linearized with the
  standard thread-count *menu* (one binary u_{i,k} per candidate thread
  count k, contributing T_i / k); the bilinear capacity term
  x_{i,j} * y_i is linearized with products w_{i,j,k} >= x + u - 1.

* :func:`_water_filling` — a scalable specialized solver: start at one
  thread per stage and repeatedly grant a thread to the stage with the
  largest per-thread time, subject to a bin-packing feasibility check.
  On small instances the two agree (cross-checked in tests); large
  experiments default to water-filling.

The even-split allocator used as the paper's baseline in Exp#2/3 is
:func:`allocate_even`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InfeasibleAllocationError, PlannerError
from ..nn.layers import LayerKind
from .ilp import MILP, MILPResult, solve_milp
from .plan import ClusterSpec, Plan, StageAssignment
from .primitive import MergedPrimitive


@dataclass(frozen=True)
class AllocationResult:
    """An allocation plus solver diagnostics.

    Attributes:
        plan: the validated deployment plan.
        objective: Eq. (4) value at the chosen allocation.
        method: "milp", "water_filling", or "even".
        nodes_explored: branch-and-bound nodes (MILP only).
    """

    plan: Plan
    objective: float
    method: str
    nodes_explored: int = 0


def _pairwise_imbalance(per_thread: Sequence[float]) -> float:
    total = 0.0
    for i, t_i in enumerate(per_thread):
        for t_j in per_thread:
            total += abs(t_i - t_j)
    return total


# ---------------------------------------------------------------------
# Bin packing of stage thread-counts onto role-compatible servers
# ---------------------------------------------------------------------

def _pack(
    stages: Sequence[MergedPrimitive],
    threads: Sequence[int],
    cluster: ClusterSpec,
) -> Optional[List[int]]:
    """Best-fit-decreasing packing; returns server ids per stage or
    None when infeasible."""
    assignment: List[int] = [-1] * len(stages)
    for kind in (LayerKind.LINEAR, LayerKind.NONLINEAR):
        servers = cluster.servers_for(kind)
        remaining = {
            s.server_id: s.capacity(cluster.hyperthreading) for s in servers
        }
        items = sorted(
            (
                (threads[stage.index], stage.index)
                for stage in stages if stage.kind is kind
            ),
            reverse=True,
        )
        for demand, stage_index in items:
            candidates = [
                (capacity, server_id)
                for server_id, capacity in remaining.items()
                if capacity >= demand
            ]
            if not candidates:
                return None
            # Best fit: the tightest server that still fits.
            candidates.sort()
            capacity, server_id = candidates[0]
            remaining[server_id] = capacity - demand
            assignment[stage_index] = server_id
    return assignment


def _max_threads_for(
    stage: MergedPrimitive, cluster: ClusterSpec
) -> int:
    servers = cluster.servers_for(stage.kind)
    if not servers:
        raise InfeasibleAllocationError(
            f"no {stage.kind.value}-capable server for stage {stage.index}"
        )
    return max(s.capacity(cluster.hyperthreading) for s in servers)


def _make_plan(
    stages: Sequence[MergedPrimitive],
    threads: Sequence[int],
    cluster: ClusterSpec,
    use_tensor_partitioning: bool,
) -> Plan:
    servers = _pack(stages, threads, cluster)
    if servers is None:
        raise InfeasibleAllocationError(
            f"thread vector {list(threads)} does not pack onto the cluster"
        )
    assignments = tuple(
        StageAssignment(stage.index, servers[stage.index],
                        threads[stage.index])
        for stage in stages
    )
    return Plan(cluster, tuple(stages), assignments,
                use_tensor_partitioning)


# ---------------------------------------------------------------------
# Even-split baseline (Exp#2/3 "without load-balanced allocation")
# ---------------------------------------------------------------------

def allocate_even(
    stages: Sequence[MergedPrimitive],
    cluster: ClusterSpec,
    use_tensor_partitioning: bool = True,
) -> AllocationResult:
    """Distribute capacity evenly across stages, ignoring T_i.

    The paper's baseline: "evenly distributes the CPU cores across the
    stages (some stages may have one more ...)".  Thread counts start at
    the even share and are decremented (largest first) until they pack.
    """
    if not stages:
        raise PlannerError("no stages to allocate")
    count = len(stages)
    capacity = cluster.total_capacity()
    base, extra = divmod(capacity, count)
    threads = [
        max(base + (1 if index < extra else 0), 1)
        for index in range(count)
    ]
    threads = [
        min(t, _max_threads_for(stage, cluster))
        for t, stage in zip(threads, stages)
    ]
    while _pack(stages, threads, cluster) is None:
        reducible = [i for i, t in enumerate(threads) if t > 1]
        if not reducible:
            raise InfeasibleAllocationError(
                "even allocation infeasible at one thread per stage"
            )
        largest = max(reducible, key=lambda i: threads[i])
        threads[largest] -= 1
    plan = _make_plan(stages, threads, cluster, use_tensor_partitioning)
    return AllocationResult(plan, math.nan, "even")


# ---------------------------------------------------------------------
# Water-filling specialized solver
# ---------------------------------------------------------------------

def _water_filling(
    stages: Sequence[MergedPrimitive],
    times: Sequence[float],
    cluster: ClusterSpec,
    comm_model=None,
) -> List[int]:
    """Grant threads one at a time to the slowest-per-thread stage.

    Starting from one thread everywhere, the stage with the largest
    per-thread time T_i / y_i that can still grow (server capacity,
    packing feasibility) receives the next thread, until no stage can
    grow.  This equalizes per-thread times (the paper's Eq. 4 goal,
    min-max flavour — the paper notes min-max objectives are equally
    applicable) while leaving no allocatable capacity stranded.

    With a ``comm_model`` callback ``(stage, threads) -> seconds``
    (e.g. :func:`repro.simulate.stagecosts.make_comm_model`), granting
    is additionally gated on a *net* latency win: a thread whose extra
    thread-distribution cost exceeds its compute gain is declined —
    the diminishing-returns effect the paper observes with many cores.
    """
    threads = [1] * len(stages)
    if _pack(stages, threads, cluster) is None:
        raise InfeasibleAllocationError(
            "cluster cannot host even one thread per stage"
        )
    limits = [_max_threads_for(stage, cluster) for stage in stages]
    blocked: set[int] = set()
    while True:
        candidates = [
            i for i in range(len(stages))
            if i not in blocked and threads[i] < limits[i]
        ]
        if not candidates:
            return threads
        stage_index = max(candidates,
                          key=lambda i: times[i] / threads[i])
        if comm_model is not None:
            y = threads[stage_index]
            compute_gain = times[stage_index] / y \
                - times[stage_index] / (y + 1)
            comm_cost = comm_model(stages[stage_index], y + 1) \
                - comm_model(stages[stage_index], y)
            if comm_cost >= compute_gain:
                blocked.add(stage_index)
                continue
        candidate = list(threads)
        candidate[stage_index] += 1
        if _pack(stages, candidate, cluster) is None:
            blocked.add(stage_index)
            continue
        threads = candidate
        blocked.clear()


# ---------------------------------------------------------------------
# Faithful MILP formulation
# ---------------------------------------------------------------------

def build_allocation_milp(
    stages: Sequence[MergedPrimitive],
    times: Sequence[float],
    cluster: ClusterSpec,
) -> tuple[MILP, dict]:
    """Construct the Eq. 4-8 MILP.

    Returns the MILP plus an index map used to decode solutions:
    ``{"u": {(i, k): var}, "x": {(i, j): var}}``.
    """
    if len(times) != len(stages):
        raise PlannerError("times length != stage count")
    num_stages = len(stages)
    menus = [range(1, _max_threads_for(s, cluster) + 1) for s in stages]
    compatible = [
        [s.server_id for s in cluster.servers_for(stage.kind)]
        for stage in stages
    ]

    names: List[str] = []
    u_index: dict[tuple[int, int], int] = {}
    x_index: dict[tuple[int, int], int] = {}
    w_index: dict[tuple[int, int, int], int] = {}
    d_index: dict[tuple[int, int], int] = {}

    for i in range(num_stages):
        for k in menus[i]:
            u_index[(i, k)] = len(names)
            names.append(f"u[{i},{k}]")
    for i in range(num_stages):
        for j in compatible[i]:
            x_index[(i, j)] = len(names)
            names.append(f"x[{i},{j}]")
    for i in range(num_stages):
        for j in compatible[i]:
            for k in menus[i]:
                w_index[(i, j, k)] = len(names)
                names.append(f"w[{i},{j},{k}]")
    for i in range(num_stages):
        for i2 in range(i + 1, num_stages):
            d_index[(i, i2)] = len(names)
            names.append(f"d[{i},{i2}]")

    num_vars = len(names)
    c = np.zeros(num_vars)
    for (_, _), var in d_index.items():
        c[var] = 2.0  # each unordered pair appears twice in Eq. (4)

    a_eq_rows, b_eq = [], []
    a_ub_rows, b_ub = [], []

    def row() -> np.ndarray:
        return np.zeros(num_vars)

    # (menu) exactly one thread count per stage
    for i in range(num_stages):
        r = row()
        for k in menus[i]:
            r[u_index[(i, k)]] = 1.0
        a_eq_rows.append(r)
        b_eq.append(1.0)

    # (5) exactly one server per stage (role compatibility restricts the
    # domain, which also enforces the purity constraint (6))
    for i in range(num_stages):
        r = row()
        for j in compatible[i]:
            r[x_index[(i, j)]] = 1.0
        a_eq_rows.append(r)
        b_eq.append(1.0)

    # epigraph of |t_i - t_i'| with t_i = sum_k (T_i / k) u_{i,k}
    for (i, i2), d_var in d_index.items():
        for sign in (1.0, -1.0):
            r = row()
            for k in menus[i]:
                r[u_index[(i, k)]] = sign * times[i] / k
            for k in menus[i2]:
                r[u_index[(i2, k)]] = -sign * times[i2] / k
            r[d_var] = -1.0
            a_ub_rows.append(r)
            b_ub.append(0.0)

    # products w >= x + u - 1 (w appears only in capacity, positively,
    # so the lower bound is the binding side)
    for (i, j, k), w_var in w_index.items():
        r = row()
        r[x_index[(i, j)]] = 1.0
        r[u_index[(i, k)]] = 1.0
        r[w_var] = -1.0
        a_ub_rows.append(r)
        b_ub.append(1.0)

    # (8) per-server capacity
    for server in cluster.servers:
        r = row()
        touched = False
        for (i, j, k), w_var in w_index.items():
            if j == server.server_id:
                r[w_var] = float(k)
                touched = True
        if touched:
            a_ub_rows.append(r)
            b_ub.append(float(server.capacity(cluster.hyperthreading)))

    bounds: List[Tuple[Optional[float], Optional[float]]] = []
    integer = np.zeros(num_vars, dtype=bool)
    for name_index, name in enumerate(names):
        if name.startswith(("u[", "x[")):
            bounds.append((0.0, 1.0))
            integer[name_index] = True
        elif name.startswith("w["):
            bounds.append((0.0, 1.0))
        else:
            bounds.append((0.0, None))

    problem = MILP(
        c=c,
        a_ub=np.array(a_ub_rows),
        b_ub=np.array(b_ub),
        a_eq=np.array(a_eq_rows),
        b_eq=np.array(b_eq),
        bounds=bounds,
        integer=integer,
        names=names,
    )
    return problem, {"u": u_index, "x": x_index}


def _decode_milp(
    result: MILPResult,
    index: dict,
    stages: Sequence[MergedPrimitive],
    cluster: ClusterSpec,
    use_tensor_partitioning: bool,
) -> Plan:
    if result.x is None:
        raise InfeasibleAllocationError("allocation MILP is infeasible")
    threads = [0] * len(stages)
    servers = [-1] * len(stages)
    for (i, k), var in index["u"].items():
        if result.x[var] > 0.5:
            threads[i] = k
    for (i, j), var in index["x"].items():
        if result.x[var] > 0.5:
            servers[i] = j
    assignments = tuple(
        StageAssignment(stage.index, servers[stage.index],
                        threads[stage.index])
        for stage in stages
    )
    return Plan(cluster, tuple(stages), assignments,
                use_tensor_partitioning)


def _milp_size(stages: Sequence[MergedPrimitive],
               cluster: ClusterSpec) -> int:
    """Rough binary-variable count of the faithful formulation."""
    total = 0
    for stage in stages:
        total += _max_threads_for(stage, cluster)
        total += len(cluster.servers_for(stage.kind))
    return total


def allocate_load_balanced(
    stages: Sequence[MergedPrimitive],
    times: Sequence[float],
    cluster: ClusterSpec,
    method: str = "auto",
    use_tensor_partitioning: bool = True,
    max_nodes: int = 20000,
    comm_model=None,
) -> AllocationResult:
    """Solve the load-balanced allocation problem.

    Args:
        stages: merged primitive layers.
        times: profiled T_i per stage (seconds).
        cluster: servers and capacities.
        method: "milp" (faithful branch-and-bound), "water_filling"
            (scalable specialized solver), or "auto" (MILP for small
            instances, water-filling beyond ~80 binaries).
        use_tensor_partitioning: recorded on the plan for the runtime.
        max_nodes: branch-and-bound budget.
        comm_model: optional ``(stage, threads) -> seconds`` callback
            making water-filling communication-aware (see
            :func:`repro.simulate.stagecosts.make_comm_model`).
    """
    if not stages:
        raise PlannerError("no stages to allocate")
    if len(times) != len(stages):
        raise PlannerError("times length != stage count")
    if any(t <= 0 for t in times):
        raise PlannerError("profiled times must be positive")

    if method == "auto":
        method = "milp" if _milp_size(stages, cluster) <= 80 \
            else "water_filling"
    if method == "milp":
        problem, index = build_allocation_milp(stages, times, cluster)
        result = solve_milp(problem, max_nodes=max_nodes)
        plan = _decode_milp(result, index, stages, cluster,
                            use_tensor_partitioning)
        return AllocationResult(
            plan, plan.imbalance(times), "milp", result.nodes_explored
        )
    if method == "water_filling":
        threads = _water_filling(stages, times, cluster, comm_model)
        plan = _make_plan(stages, threads, cluster,
                          use_tensor_partitioning)
        return AllocationResult(plan, plan.imbalance(times),
                                "water_filling")
    raise PlannerError(
        f"unknown method {method!r}; use 'milp', 'water_filling', or "
        "'auto'"
    )
