"""Cluster description and deployment plans.

A :class:`ClusterSpec` mirrors the paper's testbed rows in Table III:
some servers belong to the model provider (linear stages only) and some
to the data provider (non-linear stages only) — the physical realization
of ILP constraint (6).  A :class:`Plan` records, for every merged
primitive layer, which server hosts it and how many threads it gets
(the ILP's x_{i,j} and y_i), and validates the capacity constraint (8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import InfeasibleAllocationError, PlannerError
from ..nn.layers import LayerKind
from .primitive import MergedPrimitive


@dataclass(frozen=True)
class ServerSpec:
    """One server of the testbed.

    Attributes:
        server_id: index within the cluster.
        cores: physical CPU cores.
        role: "model" (runs linear stages) or "data" (non-linear).
    """

    server_id: int
    cores: int
    role: str

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise PlannerError(f"server {self.server_id} has no cores")
        if self.role not in ("model", "data"):
            raise PlannerError(
                f"server role must be 'model' or 'data', got {self.role!r}"
            )

    def capacity(self, hyperthreading: bool = True) -> int:
        """Max simultaneous threads (paper Eq. 8: 2 per core with HT)."""
        return self.cores * (2 if hyperthreading else 1)


@dataclass(frozen=True)
class ClusterSpec:
    """A set of servers split between the model and data providers."""

    servers: tuple[ServerSpec, ...]
    hyperthreading: bool = True

    def __post_init__(self) -> None:
        if not self.servers:
            raise PlannerError("cluster must have at least one server")
        ids = [s.server_id for s in self.servers]
        if ids != list(range(len(ids))):
            raise PlannerError("server ids must be 0..s-1 in order")
        if not any(s.role == "model" for s in self.servers):
            raise PlannerError("cluster needs at least one model server")
        if not any(s.role == "data" for s in self.servers):
            raise PlannerError("cluster needs at least one data server")

    @classmethod
    def homogeneous(
        cls,
        model_servers: int,
        data_servers: int,
        cores_per_server: int,
        hyperthreading: bool = True,
    ) -> "ClusterSpec":
        """The paper's homogeneous setting: identical servers."""
        servers = []
        for _ in range(model_servers):
            servers.append(ServerSpec(len(servers), cores_per_server,
                                      "model"))
        for _ in range(data_servers):
            servers.append(ServerSpec(len(servers), cores_per_server,
                                      "data"))
        return cls(tuple(servers), hyperthreading)

    @classmethod
    def heterogeneous(
        cls,
        model_cores: Sequence[int],
        data_cores: Sequence[int],
        hyperthreading: bool = True,
    ) -> "ClusterSpec":
        """Servers with per-machine core counts.

        The paper's evaluation assumes homogeneous servers and poses
        heterogeneity as future work; the allocator here already
        handles it (capacities are per-server in the packing and the
        ILP's constraint (8)), so this factory exposes it.
        """
        servers = []
        for cores in model_cores:
            servers.append(ServerSpec(len(servers), cores, "model"))
        for cores in data_cores:
            servers.append(ServerSpec(len(servers), cores, "data"))
        return cls(tuple(servers), hyperthreading)

    @classmethod
    def with_total_cores(
        cls,
        total_cores: int,
        model_servers: int = 2,
        data_servers: int = 1,
        hyperthreading: bool = True,
    ) -> "ClusterSpec":
        """Spread ``total_cores`` as evenly as possible over the servers
        (Exp#2/3/4 sweep total CPU cores at fixed server counts)."""
        count = model_servers + data_servers
        if total_cores < count:
            raise PlannerError(
                f"{total_cores} cores cannot cover {count} servers"
            )
        base, extra = divmod(total_cores, count)
        servers = []
        for index in range(count):
            cores = base + (1 if index < extra else 0)
            role = "model" if index < model_servers else "data"
            servers.append(ServerSpec(index, cores, role))
        return cls(tuple(servers), hyperthreading)

    def servers_for(self, kind: LayerKind) -> List[ServerSpec]:
        role = "model" if kind is LayerKind.LINEAR else "data"
        return [s for s in self.servers if s.role == role]

    @property
    def total_cores(self) -> int:
        return sum(s.cores for s in self.servers)

    def total_capacity(self) -> int:
        return sum(s.capacity(self.hyperthreading) for s in self.servers)


def plan_from_dict(state: dict, stages) -> "Plan":
    """Rebuild a plan from :meth:`Plan.to_dict` output + the model's
    stage list (obtained via ``repro.planner.primitive.model_stages``).

    Raises:
        PlannerError: on format/stage-count mismatches (and the Plan
            constructor re-validates Eq. 5-8).
    """
    if state.get("format") != "repro-plan-v1":
        raise PlannerError(
            f"not a repro-plan-v1 record: {state.get('format')!r}"
        )
    cluster_state = state["cluster"]
    cluster = ClusterSpec(
        tuple(
            ServerSpec(s["server_id"], s["cores"], s["role"])
            for s in cluster_state["servers"]
        ),
        hyperthreading=cluster_state["hyperthreading"],
    )
    if len(state["assignments"]) != len(stages):
        raise PlannerError(
            f"plan has {len(state['assignments'])} assignments but the "
            f"model yields {len(stages)} stages"
        )
    assignments = tuple(
        StageAssignment(a["stage_index"], a["server_id"], a["threads"])
        for a in state["assignments"]
    )
    return Plan(cluster, tuple(stages), assignments,
                state["use_tensor_partitioning"])


@dataclass(frozen=True)
class StageAssignment:
    """Deployment of one merged primitive layer (stage).

    Attributes:
        stage_index: index of the merged primitive.
        server_id: hosting server (the x_{i,j} = 1 choice).
        threads: allocated thread count (y_i >= 1).
    """

    stage_index: int
    server_id: int
    threads: int

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise PlannerError(
                f"stage {self.stage_index} must get >= 1 thread "
                "(paper Eq. 7)"
            )


@dataclass(frozen=True)
class Plan:
    """A complete, validated deployment plan.

    Validation enforces the ILP constraints: every stage on exactly one
    server (5), server purity via role matching (6), >= 1 thread (7),
    and per-server capacity (8).
    """

    cluster: ClusterSpec
    stages: tuple[MergedPrimitive, ...]
    assignments: tuple[StageAssignment, ...]
    use_tensor_partitioning: bool = True
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if len(self.assignments) != len(self.stages):
            raise PlannerError(
                f"{len(self.stages)} stages but {len(self.assignments)} "
                "assignments"
            )
        server_load: dict[int, int] = {}
        for stage, assignment in zip(self.stages, self.assignments):
            if assignment.stage_index != stage.index:
                raise PlannerError(
                    "assignments must be in stage order"
                )
            server = self._server(assignment.server_id)
            expected_role = (
                "model" if stage.kind is LayerKind.LINEAR else "data"
            )
            if server.role != expected_role:
                raise PlannerError(
                    f"stage {stage.index} ({stage.kind.value}) cannot run "
                    f"on {server.role} server {server.server_id} "
                    "(paper Eq. 6 / privacy separation)"
                )
            server_load[server.server_id] = (
                server_load.get(server.server_id, 0) + assignment.threads
            )
        for server_id, load in server_load.items():
            capacity = self._server(server_id).capacity(
                self.cluster.hyperthreading
            )
            if load > capacity:
                raise InfeasibleAllocationError(
                    f"server {server_id} oversubscribed: {load} threads > "
                    f"capacity {capacity} (paper Eq. 8)"
                )

    def _server(self, server_id: int) -> ServerSpec:
        if not 0 <= server_id < len(self.cluster.servers):
            raise PlannerError(f"unknown server id {server_id}")
        return self.cluster.servers[server_id]

    def threads_for(self, stage_index: int) -> int:
        return self.assignments[stage_index].threads

    def server_of(self, stage_index: int) -> ServerSpec:
        return self._server(self.assignments[stage_index].server_id)

    def total_threads(self) -> int:
        return sum(a.threads for a in self.assignments)

    def per_thread_times(self, stage_times: Sequence[float]) -> List[float]:
        """T_i / y_i for each stage — the balance the ILP equalizes."""
        if len(stage_times) != len(self.assignments):
            raise PlannerError("stage_times length mismatch")
        return [
            t / a.threads for t, a in zip(stage_times, self.assignments)
        ]

    def imbalance(self, stage_times: Sequence[float]) -> float:
        """The paper's objective (Eq. 4): sum of pairwise absolute
        differences of per-thread times."""
        per_thread = self.per_thread_times(stage_times)
        total = 0.0
        for i, t_i in enumerate(per_thread):
            for t_j in per_thread:
                total += abs(t_i - t_j)
        return total

    def describe(self) -> str:
        lines = [
            f"Plan over {len(self.cluster.servers)} servers "
            f"({self.cluster.total_cores} cores), partitioning="
            f"{'on' if self.use_tensor_partitioning else 'off'}"
        ]
        for stage, assignment in zip(self.stages, self.assignments):
            lines.append(
                f"  {stage.describe():<60} -> server "
                f"{assignment.server_id} x{assignment.threads} threads"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-friendly deployment record (for review / redeploy).

        Captures the cluster, assignments, and per-stage descriptions;
        the stages themselves are reconstructed from the model, so
        :func:`plan_from_dict` needs the same stage list.
        """
        return {
            "format": "repro-plan-v1",
            "cluster": {
                "hyperthreading": self.cluster.hyperthreading,
                "servers": [
                    {"server_id": s.server_id, "cores": s.cores,
                     "role": s.role}
                    for s in self.cluster.servers
                ],
            },
            "use_tensor_partitioning": self.use_tensor_partitioning,
            "assignments": [
                {"stage_index": a.stage_index,
                 "server_id": a.server_id,
                 "threads": a.threads}
                for a in self.assignments
            ],
            "stage_descriptions": [s.describe() for s in self.stages],
        }
