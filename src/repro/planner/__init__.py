"""Planning substrate: primitives, profiling, MILP, resource allocation.

Implements Sections IV-B and IV-C of the paper: hidden layers are
decomposed into linear/non-linear *primitive layers*, adjacent primitives
of the same type are merged into pipeline stages, per-stage CPU times are
profiled, and servers/threads are assigned by solving the load-balanced
allocation ILP (Eq. 4-8) with branch-and-bound.
"""

from .primitive import MergedPrimitive, extract_primitives, merge_primitives
from .plan import (
    ClusterSpec,
    Plan,
    ServerSpec,
    StageAssignment,
    plan_from_dict,
)
from .profiling import profile_primitive_times, profile_live
from .ilp import MILP, MILPResult, solve_milp
from .allocation import (
    AllocationResult,
    allocate_even,
    allocate_load_balanced,
    build_allocation_milp,
)

__all__ = [
    "MergedPrimitive",
    "extract_primitives",
    "merge_primitives",
    "ClusterSpec",
    "Plan",
    "ServerSpec",
    "StageAssignment",
    "plan_from_dict",
    "profile_primitive_times",
    "profile_live",
    "MILP",
    "MILPResult",
    "solve_milp",
    "AllocationResult",
    "allocate_even",
    "allocate_load_balanced",
    "build_allocation_milp",
]
