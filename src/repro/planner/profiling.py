"""Offline profiling of per-stage CPU times T_i (paper Section IV-C).

The ILP needs the time each merged primitive layer takes to process one
input tensor with a single thread.  Two profilers are provided:

* :func:`profile_primitive_times` — analytic: multiply the stage's
  operation counts (from :meth:`Layer.op_counts`) by a
  :class:`~repro.costs.CostModel`.  This mirrors how the simulator will
  charge time, so planner and simulator agree by construction, and it is
  deterministic — the right choice for benchmarks.

* :func:`profile_live` — empirical: run the stage's plaintext layers on
  real inputs ``repeats`` times and average wall-clock time, like the
  paper's 100-tensor offline profiling pass.  Used to sanity-check the
  analytic profile in tests.
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from ..costs import CompressionStats, CostModel
from ..errors import PlannerError
from ..nn.layers import LayerKind
from .primitive import MergedPrimitive


def profile_primitive_times(
    stages: Sequence[MergedPrimitive],
    cost_model: CostModel,
    scaling_decimals: int = 4,
    compression: Sequence[CompressionStats | None] | None = None,
) -> List[float]:
    """Analytic T_i for each stage (seconds per input tensor).

    Linear stages are charged inverse-obfuscation + homomorphic
    arithmetic + obfuscation; non-linear stages are charged decryption +
    plaintext non-linear work + re-encryption, following the stage
    contents of the paper's Figure 4.

    Args:
        stages: merged primitive layers in pipeline order.
        cost_model: per-operation costs.
        scaling_decimals: the selected scaling exponent ``f`` (drives
            scalar-multiplication bit lengths).
        compression: optional per-stage
            :class:`~repro.costs.CompressionStats` (``None`` entries
            for uncompressed stages).  A pruned/clustered linear stage
            is charged only its surviving exponentiations — one per
            (ciphertext, cluster) pair — plus one ciphertext-add-priced
            multiply per deduplicated reuse, so stage assignment sees
            compressed layers as the cheaper stages they really are.
    """
    if not stages:
        raise PlannerError("cannot profile an empty stage list")
    if compression is not None and len(compression) != len(stages):
        raise PlannerError(
            f"compression entries ({len(compression)}) != stages "
            f"({len(stages)})"
        )
    scalar_bits = cost_model.scalar_bits_for_decimals(scaling_decimals)
    times: List[float] = []
    for index, stage in enumerate(stages):
        counts = stage.op_counts()
        stats = compression[index] if compression is not None else None
        if stage.kind is LayerKind.LINEAR:
            muls = counts.ciphertext_muls
            adds = counts.ciphertext_adds
            if stats is not None:
                muls = stats.exponentiations(counts.ciphertext_muls,
                                             counts.input_size)
                adds += stats.reuse_mults(counts.ciphertext_muls,
                                          counts.input_size)
            total = (
                muls * cost_model.ciphertext_mul(scalar_bits)
                + adds * cost_model.ciphertext_add
                + counts.input_size * cost_model.permute_element
                + counts.output_size * cost_model.permute_element
            )
        else:
            total = (
                counts.input_size * cost_model.decrypt
                + counts.plain_ops * cost_model.plain_op
                + counts.output_size * cost_model.encrypt
            )
        times.append(total)
    return times


def profile_live(
    stages: Sequence[MergedPrimitive],
    repeats: int = 100,
    seed: int = 0,
) -> List[float]:
    """Empirical plaintext T_i by timing each stage on random tensors.

    Mirrors the paper's offline profiling ("repeat the measurement for
    100 input tensors ... and obtain the average execution time"), but
    on plaintext layer kernels — it measures the *relative* load of the
    stages, which is what load balancing consumes.
    """
    if repeats < 1:
        raise PlannerError("repeats must be >= 1")
    rng = np.random.default_rng(seed)
    times: List[float] = []
    for stage in stages:
        batch = rng.standard_normal((1,) + stage.input_shape)
        start = time.perf_counter()
        for _ in range(repeats):
            x = batch
            for layer in stage.layers:
                x = layer.forward(x)
        times.append((time.perf_counter() - start) / repeats)
    return times
