"""The coordinator-side membership listener (docs/ELASTIC.md).

The coordinator only ever *dials* workers — it has no listen socket of
its own — so elastic membership adds one: a tiny TCP accept loop that
speaks exactly one ``join`` or ``leave`` envelope per connection and
answers with an ``announce`` carrying the new membership epoch.

A joining worker advertises its **own** listen address in the join
header; the coordinator admits it (appending a cluster slot) and then
dials *back* through the normal hello/welcome handshake, so the
membership path never duplicates the session machinery — the new
member is handshaken, heartbeat-probed, and failure-recovered exactly
like a seed worker.  Errors (unknown role, draining the last worker
of a role, a failed dial-back) come back as ``error`` envelopes, so a
misbehaving join attempt cannot wedge the listener.
"""

from __future__ import annotations

import socket
import threading

from ..errors import (
    ClusterError,
    HandshakeError,
    TransportError,
)
from ..net.transport import (
    KIND_JOIN,
    KIND_LEAVE,
    Connection,
)
from ..net.wire import (
    announce_envelope,
    error_envelope,
    join_from_envelope,
    leave_from_envelope,
)


class MembershipListener:
    """Accepts join/leave envelopes on behalf of one coordinator.

    Args:
        coordinator: an
            :class:`~repro.cluster.elastic.ElasticCoordinator`; its
            ``admit_join`` / ``drain_member`` methods do the actual
            membership work.
        host / port: listen address; port 0 binds an ephemeral port
            (read the real one from :attr:`address`).
    """

    def __init__(self, coordinator, host: str = "127.0.0.1",
                 port: int = 0):
        self._coordinator = coordinator
        self._max_frame_bytes = \
            coordinator.config.net_max_frame_bytes
        self.obs = coordinator.obs
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address: tuple[str, int] = \
            self._listener.getsockname()[:2]
        self._stopped = threading.Event()
        self._accept_thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Accept in a background thread; returns the bound address."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-cluster-membership-{self.address[1]}",
            daemon=True,
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        thread = self._accept_thread
        if thread is not None \
                and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return not self._stopped.is_set()

    # -- serving -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            connection = Connection(
                sock, self._max_frame_bytes, obs=self.obs,
                peer="member",
            )
            threading.Thread(
                target=self._serve_connection, args=(connection,),
                name=f"repro-cluster-member-{self.address[1]}",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: Connection) -> None:
        try:
            try:
                envelope = connection.recv(
                    timeout=self._coordinator.config
                    .cluster_join_timeout
                )
                reply = self._dispatch(envelope)
            except (ClusterError, HandshakeError) as exc:
                reply = error_envelope(0, "membership", str(exc))
            except TransportError:
                return  # peer vanished mid-envelope; nothing to say
            try:
                connection.send(reply)
            except TransportError:
                pass  # peer gave up waiting; membership still applied
        finally:
            connection.close()

    def _dispatch(self, envelope):
        if envelope.kind == KIND_JOIN:
            host, port, role, cores = join_from_envelope(envelope)
            handle, epoch = self._coordinator.admit_join(
                (host, port), role, cores=cores
            )
            return announce_envelope(epoch, handle.server_id,
                                     handle.role, "joined")
        if envelope.kind == KIND_LEAVE:
            server_id = leave_from_envelope(envelope)
            role = self._coordinator.handles[server_id].role \
                if 0 <= server_id < len(self._coordinator.handles) \
                else "unknown"
            epoch = self._coordinator.drain_member(server_id)
            return announce_envelope(epoch, server_id, role,
                                     "draining")
        raise ClusterError(
            f"membership listener got a {envelope.kind!r} envelope "
            "(expected join or leave)"
        )
