"""The elastic coordinator: membership + online re-planning over TCP.

:class:`ElasticCoordinator` extends the fixed-fleet
:class:`~repro.net.coordinator.Coordinator` with three abilities
(docs/ELASTIC.md):

* **Admit** — :meth:`admit_join` appends a cluster slot for a worker
  that dialed the :class:`~repro.cluster.membership.MembershipListener`
  mid-stream, handshakes it, and starts its heartbeat probe.  Joining
  never touches existing assignments: the new member idles until a
  re-plan routes stages onto it.
* **Re-plan** — :meth:`apply_plan` swaps the live plan under the
  coordinator lock and rebuilds the handshake specs.  Because the
  spec embeds per-stage thread counts, the spec *digest* changes,
  and the PR 9 digest pinning makes every worker rebuild its pinned
  session on the next dial — re-handshaking sessions is literally
  the plan swap.  ``pick_worker`` consults the plan per item, so
  in-flight streams migrate to the new assignment at item
  granularity with no barrier.
* **Drain** — :meth:`drain_member` re-plans with the member excluded,
  marks it draining (no failover traffic, no recovery loop), then
  quiesces: each of its task connections is closed only once its
  round-trip lock is held, so no item is ever cut mid-flight.  Items
  that raced the drain surface as
  :class:`~repro.errors.TransientStageError` and replay on the new
  assignee — stateless per-item obfuscation makes the replay
  bit-identical, so draining produces zero dead letters.

Server ids are append-only: a departed member keeps its (empty)
cluster slot, which keeps all plan indices valid and lets the
generation guard in ``report_failure`` ignore stale failure reports
for members that epoch N+1 already replaced.
"""

from __future__ import annotations

import time

from ..errors import ClusterMembershipError
from ..net.coordinator import Coordinator, WorkerHandle
from ..net.reconnect import CircuitBreaker
from ..net.wire import ROLE_DATA, ROLE_MODEL, build_worker_spec
from ..planner.allocation import allocate_even, allocate_load_balanced
from ..planner.plan import (
    ClusterSpec,
    Plan,
    ServerSpec,
    StageAssignment,
)
from .membership import MembershipListener
from .state import ClusterState


class ElasticCoordinator(Coordinator):
    """A coordinator whose fleet can grow, shrink, and re-plan live.

    Args:
        membership: start a :class:`MembershipListener` on
            :meth:`connect` so workers can join over the wire
            (``--join HOST:PORT``).  Gateway tenants set this False —
            their joins arrive through the registry API instead, and
            one listener per tenant would be waste.
        membership_host / membership_port: listener bind address
            (port 0 = ephemeral).
        Everything else is the base coordinator's signature.
    """

    def __init__(self, *args, membership: bool = True,
                 membership_host: str = "127.0.0.1",
                 membership_port: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.state = ClusterState()
        for server, handle in zip(self.plan.cluster.servers,
                                  self.handles):
            self.state.apply_join(server.server_id, server.role,
                                  handle.address, server.cores)
        self._membership_enabled = membership
        self._membership_host = membership_host
        self._membership_port = membership_port
        self._membership: MembershipListener | None = None
        self.plans_applied = 0
        self._m_joins = self.obs.registry.counter("cluster_joins")
        self._m_leaves = self.obs.registry.counter("cluster_leaves")
        self._m_plans = self.obs.registry.counter(
            "cluster_plans_applied"
        )
        self._m_members = self.obs.registry.gauge("cluster_members")
        self._m_epoch = self.obs.registry.gauge("cluster_epoch")
        self._refresh_membership_gauges()

    def _refresh_membership_gauges(self) -> None:
        snapshot = self.state.snapshot()
        self._m_members.set(len(snapshot.present()))
        self._m_epoch.set(snapshot.epoch)

    # -- membership ----------------------------------------------------

    @property
    def membership_address(self) -> tuple[str, int]:
        """The join/leave listener's address (starts it if needed)."""
        if self._membership is None:
            if not self._membership_enabled:
                raise ClusterMembershipError(
                    "this coordinator does not accept wire joins "
                    "(membership=False)"
                )
            self._membership = MembershipListener(
                self, self._membership_host, self._membership_port
            )
            self._membership.start()
        return self._membership.address

    def connect(self) -> None:
        super().connect()
        if self._membership_enabled and self._membership is None:
            self.membership_address  # noqa: B018 - starts the listener

    def admit_join(self, address: tuple, role: str,
                   cores: int = 2) -> tuple[WorkerHandle, int]:
        """Admit one worker into the running fleet.

        Appends a :class:`~repro.planner.plan.ServerSpec` slot (ids
        are append-only, so every existing assignment stays valid),
        records the membership epoch, and — when the fleet is already
        connected — handshakes the member and starts its heartbeat
        probe.  Re-joining the same ``(address, role)`` is idempotent
        and returns the existing slot.

        Returns ``(handle, epoch)``.
        """
        if role not in (ROLE_MODEL, ROLE_DATA):
            raise ClusterMembershipError(
                f"unknown worker role {role!r}"
            )
        if cores < 1:
            raise ClusterMembershipError(
                f"a member needs >= 1 core, got {cores}"
            )
        address = (str(address[0]), int(address[1]))
        with self._lock:
            for handle in self.handles:
                if handle.address == address \
                        and handle.role == role \
                        and not handle.draining:
                    return handle, self.state.epoch
            old = self.plan
            server_id = len(old.cluster.servers)
            cluster = ClusterSpec(
                old.cluster.servers
                + (ServerSpec(server_id, int(cores), role),),
                old.cluster.hyperthreading,
            )
            # Same stages, same assignments: the new member idles
            # until a re-plan routes work onto it.
            self.plan = Plan(cluster, old.stages, old.assignments,
                             old.use_tensor_partitioning)
            handle = WorkerHandle(server_id, role, address)
            handle.breaker = CircuitBreaker(
                threshold=self.config.net_breaker_threshold,
                cooldown=self.config.net_breaker_cooldown,
            )
            self.handles.append(handle)
            connected = self._connected
        epoch = self.state.apply_join(server_id, role, address, cores)
        if connected:
            self._attach(handle)
            self._start_probe(handle)
        self._m_joins.inc()
        self._refresh_membership_gauges()
        self.obs.tracer.event("member-join", server=server_id,
                              role=role, epoch=epoch)
        return handle, epoch

    # -- re-planning ---------------------------------------------------

    def allocation_for(self, times=None,
                       exclude: frozenset = frozenset()) -> Plan:
        """A fresh full-cluster plan over the *present* members.

        Departed members (and any ids in ``exclude``) are masked out
        by allocating over a temporarily renumbered cluster — the
        planner requires contiguous ids — and remapping the resulting
        assignments back onto real server ids, so the returned plan
        validates against the full (append-only) cluster with the
        masked members holding zero assignments.

        Args:
            times: measured per-stage service times for
                :func:`~repro.planner.allocation.allocate_load_balanced`;
                ``None`` falls back to the even baseline.
        """
        with self._lock:
            plan = self.plan
        cluster = plan.cluster
        present = [
            server for server in cluster.servers
            if server.server_id not in exclude
            and not self.state.has_left(server.server_id)
        ]
        for role in (ROLE_MODEL, ROLE_DATA):
            if not any(server.role == role for server in present):
                raise ClusterMembershipError(
                    f"cannot plan a fleet with no {role} member"
                )
        temp_cluster = ClusterSpec(
            tuple(ServerSpec(index, server.cores, server.role)
                  for index, server in enumerate(present)),
            cluster.hyperthreading,
        )
        if times is None:
            result = allocate_even(plan.stages, temp_cluster,
                                   plan.use_tensor_partitioning)
        else:
            result = allocate_load_balanced(
                plan.stages, times, temp_cluster,
                method="water_filling",
                use_tensor_partitioning=plan.use_tensor_partitioning,
            )
        id_map = {index: server.server_id
                  for index, server in enumerate(present)}
        assignments = tuple(
            StageAssignment(a.stage_index, id_map[a.server_id],
                            a.threads)
            for a in result.plan.assignments
        )
        return Plan(cluster, plan.stages, assignments,
                    plan.use_tensor_partitioning)

    def apply_plan(self, new_plan: Plan) -> None:
        """Swap the live plan and rebuild the handshake specs.

        The spec rebuild is what re-handshakes sessions: per-stage
        thread counts live in the spec, so the digest changes and
        each worker rebuilds its pinned tenant session on the next
        dial (same keypair, changed spec — the PR 9 pinning rules).
        """
        if len(new_plan.stages) != len(self.plan.stages):
            raise ClusterMembershipError(
                "a re-plan cannot change the stage geometry "
                f"({len(new_plan.stages)} != {len(self.plan.stages)})"
            )
        with self._lock:
            self.plan = new_plan
            self.plans_applied += 1
        self._specs = {
            role: build_worker_spec(self.model_provider,
                                    self.data_provider, new_plan,
                                    role, tenant=self.tenant)
            for role in (ROLE_MODEL, ROLE_DATA)
        }
        self._m_plans.inc()
        self.obs.tracer.event("plan-applied",
                              count=self.plans_applied)

    # -- drain-and-migrate ---------------------------------------------

    def drain_member(self, server_id: int, times=None,
                     quiesce_timeout: float = 5.0) -> int:
        """Move every stage off one member, then quiesce it.

        Ordering is the whole trick: (1) apply a plan that excludes
        the member, so new items route elsewhere; (2) mark it
        draining, so failover never picks it and its failures spawn
        no recovery; (3) close each task connection only after
        acquiring its round-trip lock, so an in-flight item finishes
        its round trip rather than being cut mid-frame.  Anything
        that still races the close replays through the transient
        retry path onto the new assignee — zero dead letters.

        Returns the new membership epoch.
        """
        with self._lock:
            if not 0 <= server_id < len(self.handles):
                raise ClusterMembershipError(
                    f"no member with server id {server_id}"
                )
            handle = self.handles[server_id]
        if self.state.has_left(server_id):
            raise ClusterMembershipError(
                f"member {server_id} already left the fleet"
            )
        new_plan = self.allocation_for(
            times=times, exclude=frozenset((server_id,))
        )
        self.apply_plan(new_plan)
        handle.draining = True
        epoch = self.state.apply_leave(server_id)
        self._quiesce(handle, quiesce_timeout)
        with self._lock:
            handle.alive = False
        self._m_leaves.inc()
        self._refresh_membership_gauges()
        self.obs.tracer.event("member-drain", server=server_id,
                              role=handle.role, epoch=epoch)
        return epoch

    def _quiesce(self, handle: WorkerHandle,
                 timeout: float) -> None:
        """Close a draining member's connections between round trips."""
        deadline = time.monotonic() + timeout
        for connection in handle.drain_connections():
            remaining = max(0.0, deadline - time.monotonic())
            acquired = connection._rpc_lock.acquire(timeout=remaining)
            try:
                connection.close()
            finally:
                if acquired:
                    connection._rpc_lock.release()
        control = handle.control
        if control is not None:
            handle.control = None
            control.close()

    # -- teardown ------------------------------------------------------

    def close(self, shutdown_workers: bool = False) -> None:
        if self._membership is not None:
            self._membership.stop()
            self._membership = None
        super().close(shutdown_workers=shutdown_workers)
