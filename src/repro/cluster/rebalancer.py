"""Telemetry-driven online re-planning (docs/ELASTIC.md).

The :class:`Rebalancer` closes the loop the offline planner leaves
open: instead of allocating once from profiled primitive times, it
watches the metrics the stream runtime already emits —
``stream_queue_depth`` gauges for backlog and
``stream_stage_service_seconds`` histograms for *measured* per-stage
service times — and, when a stage's backlog crosses the configured
threshold, computes a fresh stage→worker assignment via
:func:`~repro.planner.allocation.allocate_load_balanced` seeded with
those measured means and applies it through
:meth:`~repro.cluster.elastic.ElasticCoordinator.apply_plan`.

Triggering is **hysteretic**: once a re-plan fires, the trigger
disarms until backlog falls back below ``cluster_backlog_low``, and a
``cluster_rebalance_cooldown`` separates consecutive re-plans — a
noisy gauge cannot thrash plans.  :meth:`step` is a synchronous
single control decision (deterministic, what the tests drive);
:meth:`start` wraps it in a background thread for servers.
"""

from __future__ import annotations

import threading
import time

from ..errors import (
    ClusterMembershipError,
    InfeasibleAllocationError,
    PlannerError,
)


class Rebalancer:
    """One control loop bound to one elastic coordinator.

    Args:
        coordinator: the
            :class:`~repro.cluster.elastic.ElasticCoordinator` whose
            plan this loop owns.
        watermark: ``"current"`` reads each queue gauge's live value
            (long-running servers, where depth decays as load does);
            ``"high"`` reads the high-water mark (bursty batch
            benches, where the backlog has drained by the time the
            control loop looks).
    """

    def __init__(self, coordinator, watermark: str = "current"):
        if watermark not in ("current", "high"):
            raise ClusterMembershipError(
                f"watermark must be 'current' or 'high', "
                f"got {watermark!r}"
            )
        self.coordinator = coordinator
        self.config = coordinator.config
        self.watermark = watermark
        self.armed = True
        self.rebalances = 0
        self._last_applied: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._m_rebalances = coordinator.obs.registry.counter(
            "cluster_rebalances"
        )
        self._m_skipped = coordinator.obs.registry.counter(
            "cluster_rebalances_skipped"
        )

    # -- telemetry reads -----------------------------------------------

    def backlog_by_stage(self) -> dict[int, float]:
        """Peak queue depth per stage from the live gauges.

        Reads only the *aggregate* (stage-labeled) gauges; the
        worker-labeled twins exist to attribute backlog, not to
        double-count it.
        """
        depths: dict[int, float] = {}
        registry = self.coordinator.obs.registry
        for labels, gauge in registry.find("gauge",
                                           "stream_queue_depth"):
            stage = labels.get("stage")
            if stage is None or "worker" in labels:
                continue
            value = (gauge.high_water if self.watermark == "high"
                     else gauge.value)
            index = int(stage)
            depths[index] = max(depths.get(index, 0.0), value)
        return depths

    def measured_times(self) -> dict[int, float]:
        """Mean measured service seconds per stage, from histograms
        with at least ``cluster_min_service_samples`` observations."""
        times: dict[int, float] = {}
        registry = self.coordinator.obs.registry
        minimum = self.config.cluster_min_service_samples
        for labels, hist in registry.find(
                "histogram", "stream_stage_service_seconds"):
            stage = labels.get("stage")
            if stage is None or "worker" in labels:
                continue
            if hist.count >= minimum:
                times[int(stage)] = hist.sum / hist.count
        return times

    # -- the control decision ------------------------------------------

    def step(self, now: float | None = None) -> bool:
        """One synchronous control decision.

        Returns True when a new plan was computed *and* applied;
        False when the trigger is disarmed, backlog is below the
        threshold, the cooldown holds, telemetry is still too thin,
        or the fresh allocation equals the live one.
        """
        now = time.monotonic() if now is None else now
        depths = self.backlog_by_stage()
        peak = max(depths.values(), default=0.0)
        if not self.armed:
            if peak <= self.config.cluster_backlog_low:
                self.armed = True
            return False
        if peak < self.config.cluster_backlog_high:
            return False
        if self._last_applied is not None and \
                now - self._last_applied < \
                self.config.cluster_rebalance_cooldown:
            return False
        plan = self.coordinator.plan
        times = self.measured_times()
        if len(times) < len(plan.stages):
            self._m_skipped.inc()
            return False  # not every stage has trustworthy telemetry
        vector = [max(times[stage.index], 1e-9)
                  for stage in plan.stages]
        try:
            new_plan = self.coordinator.allocation_for(times=vector)
        except (PlannerError, InfeasibleAllocationError,
                ClusterMembershipError):
            self._m_skipped.inc()
            return False
        if new_plan.assignments == plan.assignments:
            self._m_skipped.inc()
            return False
        self.coordinator.apply_plan(new_plan)
        self.armed = False
        self._last_applied = now
        self.rebalances += 1
        self._m_rebalances.inc()
        self.coordinator.obs.tracer.event(
            "rebalance", peak_backlog=peak,
            rebalances=self.rebalances,
        )
        return True

    # -- background loop -----------------------------------------------

    def start(self) -> None:
        """Run :meth:`step` every ``cluster_rebalance_interval``
        seconds on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-cluster-rebalancer",
            daemon=True,
        )
        self._thread.start()

    def _loop(self) -> None:
        interval = self.config.cluster_rebalance_interval
        while not self._stop.wait(interval):
            self.step()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
