"""Epoch-numbered live cluster membership (docs/ELASTIC.md).

:class:`ClusterState` is the elastic coordinator's authoritative
member table, generalizing the fixed ``WorkerHandle`` list: every
join and leave bumps a monotone **epoch** and records who is present,
in which role, with how much capacity.  Mutations happen only on the
coordinator's control path (under its lock); everyone else — the
rebalancer, benchmarks, operators — reads immutable
:class:`ClusterSnapshot` views, so there is never a torn read of a
half-applied membership change.

Server ids are never reused: a member that leaves keeps its id (and
its :class:`~repro.planner.plan.ServerSpec` slot, holding zero
assignments) forever, which keeps every historical plan's indices
valid and makes stale failure reports for departed members trivially
ignorable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from ..errors import ClusterMembershipError


@dataclass(frozen=True)
class Member:
    """One fleet member's identity, capacity, and membership span."""

    server_id: int
    role: str
    address: tuple
    cores: int
    joined_epoch: int
    left_epoch: int | None = None

    @property
    def present(self) -> bool:
        """Whether the member is still part of the fleet (health is
        the coordinator handle's business; presence is membership)."""
        return self.left_epoch is None

    def describe(self) -> str:
        span = (f"joined @e{self.joined_epoch}" if self.present
                else f"e{self.joined_epoch}..e{self.left_epoch}")
        return (f"member {self.server_id} ({self.role}, "
                f"{self.cores} cores) @ "
                f"{self.address[0]}:{self.address[1]} [{span}]")


@dataclass(frozen=True)
class ClusterSnapshot:
    """An immutable view of the member table at one epoch."""

    epoch: int
    members: tuple[Member, ...]

    def present(self) -> tuple[Member, ...]:
        return tuple(m for m in self.members if m.present)

    def member(self, server_id: int) -> Member:
        for m in self.members:
            if m.server_id == server_id:
                return m
        raise ClusterMembershipError(
            f"no member with server id {server_id}"
        )


class ClusterState:
    """The mutable epoch-numbered membership table.

    Thread-safe, but by design only the coordinator's control path
    calls the ``apply_*`` mutators; every membership event returns the
    new epoch so callers (and announce envelopes) can report it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._members: dict[int, Member] = {}

    @property
    def epoch(self) -> int:
        return self._epoch

    def apply_join(self, server_id: int, role: str, address: tuple,
                   cores: int) -> int:
        """Record a member joining; returns the new epoch."""
        with self._lock:
            existing = self._members.get(server_id)
            if existing is not None and existing.present:
                raise ClusterMembershipError(
                    f"server id {server_id} is already a present "
                    f"member ({existing.describe()})"
                )
            self._epoch += 1
            self._members[server_id] = Member(
                server_id=server_id, role=role,
                address=tuple(address), cores=int(cores),
                joined_epoch=self._epoch,
            )
            return self._epoch

    def apply_leave(self, server_id: int) -> int:
        """Record a member leaving; returns the new epoch."""
        with self._lock:
            member = self._members.get(server_id)
            if member is None or not member.present:
                raise ClusterMembershipError(
                    f"server id {server_id} is not a present member"
                )
            self._epoch += 1
            self._members[server_id] = replace(
                member, left_epoch=self._epoch
            )
            return self._epoch

    def has_left(self, server_id: int) -> bool:
        """Whether a member departed (unknown ids have not left —
        the planner's fixed seed fleet predates the table)."""
        with self._lock:
            member = self._members.get(server_id)
            return member is not None and not member.present

    def snapshot(self) -> ClusterSnapshot:
        with self._lock:
            members = tuple(
                self._members[sid] for sid in sorted(self._members)
            )
            return ClusterSnapshot(self._epoch, members)
