"""Elastic worker fleet: membership, live state, online re-planning.

Layers three pieces over the fixed-fleet TCP runtime
(docs/ELASTIC.md):

* :class:`~repro.cluster.state.ClusterState` — the epoch-numbered
  member table (identity, role, capacity, membership span), mutated
  only on the coordinator's control path, read as immutable
  snapshots.
* :class:`~repro.cluster.membership.MembershipListener` +
  :class:`~repro.cluster.elastic.ElasticCoordinator` — the
  ``join``/``leave``/``announce`` wire protocol and the coordinator
  that admits, drains, and re-plans a running fleet with zero dead
  letters and bit-identical results.
* :class:`~repro.cluster.rebalancer.Rebalancer` — hysteresis-gated
  online re-planning from live queue-depth and service-time
  telemetry, replacing offline profiles with measured means.
"""

from .elastic import ElasticCoordinator
from .membership import MembershipListener
from .rebalancer import Rebalancer
from .state import ClusterSnapshot, ClusterState, Member

__all__ = [
    "ClusterSnapshot",
    "ClusterState",
    "ElasticCoordinator",
    "Member",
    "MembershipListener",
    "Rebalancer",
]
