"""Paillier engine benchmark harness: the BENCH_paillier.json emitter.

Times every bulk primitive of the crypto hot path — encrypt, decrypt,
homomorphic add, scalar multiplication, an FC-layer matvec, and an
im2col convolution — once through the scalar reference implementation
(:mod:`repro.crypto.paillier` / the scalar :meth:`EncryptedTensor.affine`
loop) and once through the batched :class:`repro.crypto.engine.
PaillierEngine`, per key size.  Results go to ``BENCH_paillier.json``
so every future PR has a perf trajectory to beat.

Run it via ``python -m repro bench`` or through
``benchmarks/test_fig1_paillier_microbench.py --bench-json``.

Methodology notes:

* The engine's blinding-factor pool is prefilled before timing and the
  prefill cost is reported separately as ``offline_seconds`` — the
  offline/online split is the entire point of the pool (the offline
  phase runs on a background producer between requests).
* Scalar and engine paths are checked to produce bit-identical
  ciphertexts under the same seed before anything is timed; a
  benchmark of a wrong kernel is worse than no benchmark.
* Homomorphic add is one modular multiply; the engine's ``add_many``
  only process-dispatches far above the pow-calibrated break-even, and
  the ``add`` row records which way this batch dispatched.

:func:`run_compress_bench` (``python -m repro bench --compress``) is
the compression-path companion: dense vs pruned vs clustered vs gmpy2
throughput of the engine matvecs, with a decode-identity gate per
variant and the model-zoo accuracy cost of the compression — the
BENCH_compress.json emitter.
"""

from __future__ import annotations

import json
import random
import time
from typing import Sequence

import numpy as np

from .crypto.backend import HAVE_GMPY2
from .crypto.encoding import LanePacker, SignedEncoder
from .crypto.engine import PaillierEngine
from .crypto.paillier import generate_keypair
from .crypto.sparse import SparseMatvecPlan
from .crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from .errors import ReproError
from .observability import Observability

#: Key sizes benchmarked by default; 1024 bits is the acceptance
#: target, 2048 bits (the paper's size) is opt-in via ``full=True``.
DEFAULT_KEY_SIZES = (512, 1024)

#: Elements per encrypt/decrypt/add/scalar-mul batch.
DEFAULT_ELEMENTS = 48

#: FC-layer matvec shape (out_dim, in_dim).
DEFAULT_FC_SHAPE = (64, 64)

#: Conv bench: 1x8x8 input, 4 filters of 3x3 (im2col-unrolled).
DEFAULT_CONV = {"in_shape": (1, 8, 8), "out_channels": 4, "kernel": 3}

#: Magnitude of the scaled integer weights (10^6 = the paper's largest
#: scaling factor, ~20-bit exponents).
WEIGHT_MAGNITUDE = 10 ** 6

#: Batch sizes exercised by the lane-packing benchmark.
DEFAULT_BATCH_SIZES = (4, 8, 16)

#: FC shape of the lane-packing benchmark (smaller than the scalar
#: bench: the unpacked baseline runs the matvec once per sample).
DEFAULT_PACKING_FC_SHAPE = (32, 32)


def _timed(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _op_entry(scalar_seconds: float, engine_seconds: float,
              ops: int, **extra) -> dict:
    entry = {
        "ops": ops,
        "scalar_seconds": scalar_seconds,
        "engine_seconds": engine_seconds,
        "scalar_ops_per_sec": ops / scalar_seconds
        if scalar_seconds > 0 else float("inf"),
        "engine_ops_per_sec": ops / engine_seconds
        if engine_seconds > 0 else float("inf"),
        "speedup": scalar_seconds / engine_seconds
        if engine_seconds > 0 else float("inf"),
    }
    entry.update(extra)
    return entry


def _conv_affine(seed: int):
    """A conv layer's scaled-integer affine (im2col-unrolled matrix)."""
    from .nn.layers import Conv2d
    from .scaling.fixed_point import scaled_affine_for_layer

    spec = DEFAULT_CONV
    layer = Conv2d(
        spec["in_shape"][0], spec["out_channels"], spec["kernel"],
        rng=np.random.default_rng(seed),
    )
    return scaled_affine_for_layer(layer, spec["in_shape"], decimals=4)


def run_paillier_bench(
    key_sizes: Sequence[int] = DEFAULT_KEY_SIZES,
    workers: int = 4,
    elements: int = DEFAULT_ELEMENTS,
    fc_shape: tuple[int, int] = DEFAULT_FC_SHAPE,
    seed: int = 0,
    repeats: int = 1,
    pool_size: int | None = None,
    include_conv: bool = True,
    observe: bool = False,
) -> dict:
    """Benchmark scalar vs engine kernels at each key size.

    With ``observe=True`` each key-size row gains a ``breakdown``
    section: the engine runs with observability enabled (a fresh
    registry per key size) and the metrics snapshot — pool hit/miss
    counts, CRT vs plain blinding, dispatch chunk sizes, batch-size
    histograms — is embedded in the BENCH document.  The timed numbers
    then include the (small) instrumentation overhead, so comparisons
    against un-observed baselines should use ``observe=False``.

    Returns the BENCH JSON document (also see :func:`write_bench_json`).
    """
    if elements < 1 or repeats < 1:
        raise ReproError("elements and repeats must be >= 1")
    results: dict = {
        "benchmark": "paillier_engine",
        "workers": workers,
        "elements": elements,
        "fc_shape": list(fc_shape),
        "repeats": repeats,
        "seed": seed,
        "observed": observe,
        "key_sizes": {},
    }
    out_dim, in_dim = fc_shape
    for key_size in key_sizes:
        t0 = time.perf_counter()
        public, private = generate_keypair(key_size, seed=seed)
        keygen_seconds = time.perf_counter() - t0
        rng = random.Random(seed)
        plaintexts = [rng.randrange(0, 256) for _ in range(elements)]

        obs = Observability(enabled=True) if observe else None
        engine = PaillierEngine(
            public, private_key=private, workers=workers,
            pool_size=pool_size if pool_size is not None
            else max(elements, 2 * out_dim),
            seed=seed + 1,
            obs=obs,
        )
        try:
            row = _bench_key_size(
                public, private, engine, plaintexts, rng,
                out_dim, in_dim, seed, repeats, include_conv,
            )
        finally:
            engine.close()
        row["keygen_seconds"] = keygen_seconds
        if obs is not None:
            row["breakdown"] = obs.registry.snapshot()
        results["key_sizes"][str(key_size)] = row
    return results


def _bench_key_size(public, private, engine, plaintexts, rng,
                    out_dim, in_dim, seed, repeats, include_conv) -> dict:
    row: dict = {}
    elements = len(plaintexts)

    # --- correctness gate: engine must be bit-identical to scalar ----
    check_rng_a, check_rng_b = random.Random(99), random.Random(99)
    scalar_check = [public.encrypt(m, check_rng_a).ciphertext
                    for m in plaintexts[:4]]
    engine_check = [c.ciphertext for c in
                    engine.encrypt_many(plaintexts[:4], rng=check_rng_b)]
    if scalar_check != engine_check:
        raise ReproError(
            "engine encryption diverged from the scalar reference; "
            "refusing to benchmark a wrong kernel"
        )

    # --- encrypt: scalar loop vs pooled engine -----------------------
    offline = _timed(lambda: engine.prefill(elements), 1)
    scalar_rng = random.Random(seed + 2)
    scalar_s = _timed(
        lambda: [public.encrypt(m, scalar_rng) for m in plaintexts],
        repeats,
    )
    engine.prefill(elements)  # re-arm the pool after the timed drain
    engine_s = _timed(lambda: engine.encrypt_many(plaintexts), repeats)
    row["encrypt_many"] = _op_entry(scalar_s, engine_s, elements,
                                    offline_seconds=offline)

    # --- decrypt ------------------------------------------------------
    ciphers = engine.encrypt_many(plaintexts, rng=random.Random(seed + 3))
    scalar_s = _timed(lambda: [private.decrypt(c) for c in ciphers],
                      repeats)
    engine_s = _timed(lambda: engine.decrypt_many(ciphers), repeats)
    row["decrypt_many"] = _op_entry(scalar_s, engine_s, elements)

    # --- homomorphic add ---------------------------------------------
    # One add is a single modular multiply, so process dispatch only
    # pays off far above ``dispatch_min_items`` (ADD_DISPATCH_FACTOR);
    # the row records which way the engine dispatched this batch so a
    # 1.0x speedup reads as "scalar by design", not a missing kernel.
    others = engine.encrypt_many(plaintexts, rng=random.Random(seed + 4))
    add_s = _timed(
        lambda: [a + b for a, b in zip(ciphers, others)], repeats
    )
    raw_left = [c.ciphertext for c in ciphers]
    raw_right = [c.ciphertext for c in others]
    engine_add_s = _timed(
        lambda: engine.add_many(raw_left, raw_right), repeats
    )
    row["add"] = _op_entry(
        add_s, engine_add_s, elements,
        dispatch="pool" if engine.add_dispatch(elements) else "scalar",
    )

    # --- scalar multiplication ---------------------------------------
    weights = [rng.randrange(1, WEIGHT_MAGNITUDE) for _ in plaintexts]
    raw = [c.ciphertext for c in ciphers]
    scalar_s = _timed(
        lambda: [c * w for c, w in zip(ciphers, weights)], repeats
    )
    engine_s = _timed(
        lambda: engine.scalar_mul_many(raw, weights), repeats
    )
    row["scalar_mul"] = _op_entry(scalar_s, engine_s, elements)

    # --- FC-layer matvec ---------------------------------------------
    x = np.array([rng.randrange(-128, 128) for _ in range(in_dim)],
                 dtype=np.int64)
    weight = np.array(
        [[rng.randrange(-WEIGHT_MAGNITUDE, WEIGHT_MAGNITUDE)
          for _ in range(in_dim)] for _ in range(out_dim)],
        dtype=np.int64,
    )
    bias = np.array([rng.randrange(-WEIGHT_MAGNITUDE, WEIGHT_MAGNITUDE)
                     for _ in range(out_dim)], dtype=np.int64)
    tensor = EncryptedTensor.encrypt(x, public, random.Random(seed + 5))
    scalar_out = tensor.affine(weight, bias, random.Random(seed + 6))
    scalar_s = _timed(
        lambda: tensor.affine(weight, bias, random.Random(seed + 6)),
        repeats,
    )
    engine_out = tensor.affine(weight, bias, random.Random(seed + 6),
                               engine=engine)
    if [c.ciphertext for c in scalar_out.cells()] != \
            [c.ciphertext for c in engine_out.cells()]:
        raise ReproError("engine matvec diverged from the scalar path")
    engine_s = _timed(
        lambda: tensor.affine(weight, bias, random.Random(seed + 6),
                              engine=engine),
        repeats,
    )
    row["fc_matvec"] = _op_entry(
        scalar_s, engine_s, out_dim * in_dim,
        shape=[out_dim, in_dim],
    )

    # --- conv (im2col-unrolled sparse affine) ------------------------
    if include_conv:
        affine = _conv_affine(seed)
        conv_x = np.array(
            [rng.randrange(-128, 128) for _ in range(affine.in_dim)],
            dtype=np.int64,
        )
        conv_bias = affine.bias_at(0)
        conv_tensor = EncryptedTensor.encrypt(
            conv_x, public, random.Random(seed + 7)
        )
        scalar_s = _timed(
            lambda: conv_tensor.affine(
                affine.weight, conv_bias, random.Random(seed + 8)
            ),
            repeats,
        )
        engine_s = _timed(
            lambda: conv_tensor.affine(
                affine.weight, conv_bias, random.Random(seed + 8),
                engine=engine,
            ),
            repeats,
        )
        nonzero = int(np.count_nonzero(affine.weight))
        row["conv_im2col"] = _op_entry(
            scalar_s, engine_s, nonzero,
            shape=list(affine.weight.shape), nonzero_weights=nonzero,
        )
    return row


def _packed_entry(unpacked_seconds: float, packed_seconds: float,
                  ops: int, **extra) -> dict:
    entry = {
        "ops": ops,
        "unpacked_seconds": unpacked_seconds,
        "packed_seconds": packed_seconds,
        "unpacked_ops_per_sec": ops / unpacked_seconds
        if unpacked_seconds > 0 else float("inf"),
        "packed_ops_per_sec": ops / packed_seconds
        if packed_seconds > 0 else float("inf"),
        "speedup": unpacked_seconds / packed_seconds
        if packed_seconds > 0 else float("inf"),
    }
    entry.update(extra)
    return entry


def run_packing_bench(
    key_sizes: Sequence[int] = DEFAULT_KEY_SIZES,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    fc_shape: tuple[int, int] = DEFAULT_PACKING_FC_SHAPE,
    seed: int = 0,
    repeats: int = 1,
    workers: int = 0,
) -> dict:
    """Lane-packed vs unpacked engine throughput per key/batch size.

    The unpacked baseline runs the *engine* path (blinding pool, power
    caches) once per batch sample — i.e. the packing win is measured on
    top of every other amortization, not against the scalar loop.
    Before timing, the packed decode is checked value-identical to the
    unpacked reference under the same seed; batch sizes the key cannot
    carry are reported as skipped with the capacity that refused them
    (the same criterion the protocol's admission check applies).
    """
    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    out_dim, in_dim = fc_shape
    results: dict = {
        "benchmark": "paillier_packing",
        "fc_shape": [out_dim, in_dim],
        "batch_sizes": [int(b) for b in batch_sizes],
        "repeats": repeats,
        "seed": seed,
        "workers": workers,
        "key_sizes": {},
    }
    # Worst-case matvec output magnitude for the weight/input ranges
    # drawn below — exactly how the protocol sizes lanes from the
    # headroom peak bound.
    bound = in_dim * (WEIGHT_MAGNITUDE - 1) * 128 + WEIGHT_MAGNITUDE
    mag_bits = bound.bit_length()
    for key_size in key_sizes:
        t0 = time.perf_counter()
        public, private = generate_keypair(key_size, seed=seed)
        keygen_seconds = time.perf_counter() - t0
        rng = random.Random(seed)
        weight = np.array(
            [[rng.randrange(-WEIGHT_MAGNITUDE, WEIGHT_MAGNITUDE)
              for _ in range(in_dim)] for _ in range(out_dim)],
            dtype=np.int64,
        )
        bias = np.array(
            [rng.randrange(-WEIGHT_MAGNITUDE, WEIGHT_MAGNITUDE)
             for _ in range(out_dim)], dtype=np.int64,
        )
        row: dict = {"keygen_seconds": keygen_seconds,
                     "mag_bits": mag_bits, "batches": {}}
        engine = PaillierEngine(
            public, private_key=private, workers=workers,
            pool_size=4 * in_dim, seed=seed + 1,
        )
        try:
            for batch in batch_sizes:
                capacity = LanePacker.capacity(public, mag_bits)
                if capacity < batch:
                    row["batches"][str(batch)] = {
                        "skipped": True,
                        "reason": f"{batch} lanes exceed the "
                                  f"{capacity}-lane capacity",
                        "capacity": capacity,
                    }
                    continue
                packer = LanePacker(public, lanes=batch,
                                    mag_bits=mag_bits)
                row["batches"][str(batch)] = _bench_packing_batch(
                    public, private, engine, packer, weight, bias,
                    batch, in_dim, out_dim, seed, repeats,
                )
        finally:
            engine.close()
        results["key_sizes"][str(key_size)] = row
    return results


def _bench_packing_batch(public, private, engine, packer, weight, bias,
                         batch, in_dim, out_dim, seed, repeats) -> dict:
    rng = random.Random(seed + batch)
    xs = np.array(
        [[rng.randrange(-128, 128) for _ in range(in_dim)]
         for _ in range(batch)],
        dtype=np.int64,
    )

    # -- encrypt: B scalar-cell tensors vs one packed tensor ----------
    unpacked_s = _timed(
        lambda: [EncryptedTensor.encrypt(x, public, engine=engine)
                 for x in xs],
        repeats,
    )
    packed_s = _timed(
        lambda: PackedEncryptedTensor.encrypt_batch(xs, packer,
                                                    engine=engine),
        repeats,
    )
    entry: dict = {
        "lanes": batch,
        "lane_bits": packer.lane_bits,
        "capacity": LanePacker.capacity(public, packer.mag_bits),
        "encrypt": _packed_entry(unpacked_s, packed_s, batch * in_dim),
    }

    # -- correctness gate + fc_matvec ---------------------------------
    tensors = [EncryptedTensor.encrypt(x, public, engine=engine)
               for x in xs]
    packed_tensor = PackedEncryptedTensor.encrypt_batch(
        xs, packer, engine=engine
    )
    encrypted_bias = EncryptedTensor.encrypt(bias, public,
                                             engine=engine)
    packed_bias = PackedEncryptedTensor.encrypt_batch(
        np.tile(bias, (batch, 1)), packer, engine=engine
    )
    unpacked_ref = np.stack([
        t.affine(weight, encrypted_bias, engine=engine)
        .decrypt(private, engine=engine)
        for t in tensors
    ])
    packed_ref = packed_tensor.affine(
        weight, packed_bias, engine=engine
    ).decrypt(private, engine=engine)
    if unpacked_ref.tolist() != packed_ref.tolist():
        raise ReproError(
            "packed matvec decode diverged from the unpacked "
            "reference; refusing to benchmark a wrong kernel"
        )
    entry["decode_identical"] = True
    unpacked_s = _timed(
        lambda: [t.affine(weight, encrypted_bias, engine=engine)
                 for t in tensors],
        repeats,
    )
    packed_s = _timed(
        lambda: packed_tensor.affine(weight, packed_bias,
                                     engine=engine),
        repeats,
    )
    entry["fc_matvec"] = _packed_entry(
        unpacked_s, packed_s, batch * out_dim * in_dim,
        shape=[out_dim, in_dim],
    )

    # -- decrypt ------------------------------------------------------
    unpacked_s = _timed(
        lambda: [t.decrypt(private, engine=engine) for t in tensors],
        repeats,
    )
    packed_s = _timed(
        lambda: packed_tensor.decrypt(private, engine=engine), repeats
    )
    entry["decrypt"] = _packed_entry(unpacked_s, packed_s,
                                     batch * in_dim)
    return entry


def render_packing_bench(results: dict) -> str:
    """Human-readable summary table of a packing BENCH document."""
    lines = [
        "Paillier lane-packing benchmark "
        f"(fc={tuple(results['fc_shape'])}, "
        f"workers={results['workers']})",
        f"{'key':>6} {'batch':>6} {'op':<10} "
        f"{'unpacked ops/s':>15} {'packed ops/s':>14} {'speedup':>9}",
    ]
    for key_size, row in sorted(results["key_sizes"].items(),
                                key=lambda kv: int(kv[0])):
        for batch, entry in sorted(row["batches"].items(),
                                   key=lambda kv: int(kv[0])):
            if entry.get("skipped"):
                lines.append(
                    f"{key_size:>6} {batch:>6} "
                    f"skipped: {entry['reason']}"
                )
                continue
            for op in ("encrypt", "fc_matvec", "decrypt"):
                stats = entry[op]
                lines.append(
                    f"{key_size:>6} {batch:>6} {op:<10} "
                    f"{stats['unpacked_ops_per_sec']:>15.1f} "
                    f"{stats['packed_ops_per_sec']:>14.1f} "
                    f"{stats['speedup']:>8.2f}x"
                )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Compression benchmark (BENCH_compress.json).
# ----------------------------------------------------------------------

#: Key sizes the compression bench covers by default; 1024 bits is the
#: acceptance target.
DEFAULT_COMPRESS_KEY_SIZES = (1024,)

#: Target per-layer sparsity of the pruned variants.
DEFAULT_COMPRESS_SPARSITY = 0.7

#: Shared weight values per layer in the clustered variants.
DEFAULT_COMPRESS_CLUSTERS = 8

#: Model-zoo key used for the accuracy-delta measurement (the fastest
#: model to train).
DEFAULT_COMPRESS_MODEL = "breast"

#: Model-zoo key used for the *session* leg.  The end-to-end cost of a
#: session is input encryption + per-activation decrypt/re-encrypt +
#: linear matvecs; compression only touches the last term, so a model
#: whose linear layers dominate (wide input, ~109K weight cells here)
#: is the honest way to show what compression buys end-to-end.  The
#: breast model (30 inputs) is crypto-overhead-bound and would show a
#: speedup near 1x no matter how good the kernels are.
DEFAULT_COMPRESS_SESSION_MODEL = "mnist-1"


def _compress_matrices(weight: np.ndarray, sparsity: float,
                       clusters: int, seed: int
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Derive the pruned and pruned+clustered integer matrices."""
    from .scaling.clustering import cluster_values

    dense = np.asarray(weight, dtype=np.float64)
    threshold = float(np.quantile(np.abs(dense), sparsity))
    pruned = np.where(np.abs(dense) <= threshold, 0.0, dense)
    nonzero = pruned != 0.0
    clustered = pruned.copy()
    if np.any(nonzero):
        quantized, _ = cluster_values(pruned[nonzero], clusters,
                                      seed=seed)
        # Centers round back to integers (the weights are already
        # scaled fixed-point ints); a center that rounds to zero just
        # prunes its members a little deeper.
        clustered[nonzero] = np.rint(quantized)
    return pruned.astype(np.int64), clustered.astype(np.int64)


def _bench_compress_op(engine, gmpy2_engine, weight, seed, repeats,
                       sparsity, clusters, op) -> dict:
    """Dense/pruned/clustered/gmpy2 timings for one matvec shape.

    The bias is encrypted **outside** the timed region for every
    variant — production caches the model provider's encrypted bias
    per stage, and re-encrypting it per call would swamp the matvec
    under ~n full-width exponentiations.
    """
    public = engine.public_key
    rng = random.Random(seed)
    out_dim, in_dim = weight.shape
    x = [rng.randrange(-128, 128) for _ in range(in_dim)]
    bias_values = [rng.randrange(-WEIGHT_MAGNITUDE, WEIGHT_MAGNITUDE)
                   for _ in range(out_dim)]
    encoder = SignedEncoder(public)
    cells = engine.raw_encrypt_many(
        [encoder.encode(v) for v in x], rng=random.Random(seed + 1)
    )
    bias_raw = engine.raw_encrypt_many(
        [encoder.encode(v) for v in bias_values],
        rng=random.Random(seed + 2),
    )
    pruned, clustered = _compress_matrices(
        weight, sparsity, clusters, seed
    )
    total = out_dim * in_dim

    def expected(matrix) -> list[int]:
        return [
            int(sum(int(w) * v for w, v in zip(row, x))) + b
            for row, b in zip(matrix, bias_values)
        ]

    def decode(raw: list[int]) -> list[int]:
        return [encoder.decode(r)
                for r in engine.raw_decrypt_many(raw)]

    entry: dict = {"shape": [out_dim, in_dim], "ops": total}

    # -- dense baseline: the pre-compression engine path --------------
    dense_out = engine.matvec(cells, weight, bias_raw)
    if decode(dense_out) != expected(weight):
        raise ReproError(f"dense {op} decode mismatch")
    dense_s = _timed(
        lambda: engine.matvec(cells, weight, bias_raw), repeats
    )
    entry["dense"] = {
        "seconds": dense_s,
        "ops_per_sec": total / dense_s if dense_s > 0 else float("inf"),
        "backend": engine.backend.name,
        "decode_identical": True,
    }

    # -- compressed variants ------------------------------------------
    compressed_fn = getattr(engine, op)
    variants = [
        ("pruned", pruned, engine, compressed_fn),
        ("clustered", clustered, engine, compressed_fn),
    ]
    if gmpy2_engine is not None:
        gmpy2_cells = gmpy2_engine.raw_encrypt_many(
            [encoder.encode(v) for v in x], rng=random.Random(seed + 1)
        )
        gmpy2_bias = gmpy2_engine.raw_encrypt_many(
            [encoder.encode(v) for v in bias_values],
            rng=random.Random(seed + 2),
        )
        variants.append(
            ("gmpy2", clustered, gmpy2_engine,
             getattr(gmpy2_engine, op))
        )
    for label, matrix, variant_engine, fn in variants:
        plan = SparseMatvecPlan.from_dense(matrix)
        variant_cells = (cells if variant_engine is engine
                         else gmpy2_cells)
        variant_bias = (bias_raw if variant_engine is engine
                        else gmpy2_bias)
        # Decode gate: the compressed path must agree with both the
        # plaintext math and the dense engine path on this matrix.
        out = fn(variant_cells, None, variant_bias, plan=plan)
        reference = variant_engine.matvec(variant_cells, matrix,
                                          variant_bias)
        if out != reference:
            raise ReproError(
                f"{label} {op} diverged from the dense engine path"
            )
        decoded = [encoder.decode(r)
                   for r in variant_engine.raw_decrypt_many(out)]
        if decoded != expected(matrix):
            raise ReproError(f"{label} {op} decode mismatch")
        seconds = _timed(
            lambda: fn(variant_cells, None, variant_bias, plan=plan),
            repeats,
        )
        entry[label] = {
            "seconds": seconds,
            "ops_per_sec": total / seconds
            if seconds > 0 else float("inf"),
            "speedup_vs_dense": dense_s / seconds
            if seconds > 0 else float("inf"),
            "backend": variant_engine.backend.name,
            "sparsity": plan.sparsity,
            "distinct_values": plan.distinct_values,
            "decode_identical": True,
        }
    if gmpy2_engine is None:
        entry["gmpy2"] = {
            "skipped": True,
            "reason": "gmpy2 not installed; python backend only",
        }
    return entry


def _compress_model_accuracy(model_key: str, sparsity: float,
                             clusters: int, seed: int) -> dict:
    """Prune + cluster a zoo model and report the accuracy cost."""
    from .experiments.common import prepare_model
    from .nn.rewrite import prune_model
    from .scaling.clustering import cluster_model

    prepared = prepare_model(model_key, seed=seed)
    dataset = prepared.dataset
    pruned, prune_report = prune_model(
        prepared.model, sparsity,
        inputs=dataset.test_x, labels=dataset.test_y,
    )
    clustered, cluster_report = cluster_model(
        pruned, clusters, seed=seed,
        inputs=dataset.test_x, labels=dataset.test_y,
    )
    return {
        "model": model_key,
        "baseline_accuracy": prune_report.baseline_accuracy,
        "pruned_accuracy": prune_report.pruned_accuracy,
        "clustered_accuracy": cluster_report.clustered_accuracy,
        "applied_sparsity": prune_report.applied_sparsity,
        "density": prune_report.density,
        "accuracy_delta": (
            cluster_report.clustered_accuracy
            - prune_report.baseline_accuracy
        ),
    }


def run_compress_bench(
    key_sizes: Sequence[int] = DEFAULT_COMPRESS_KEY_SIZES,
    seed: int = 0,
    repeats: int = 2,
    sparsity: float = DEFAULT_COMPRESS_SPARSITY,
    clusters: int = DEFAULT_COMPRESS_CLUSTERS,
    fc_shape: tuple[int, int] = DEFAULT_FC_SHAPE,
    workers: int = 0,
    model_key: str | None = DEFAULT_COMPRESS_MODEL,
) -> dict:
    """Benchmark the compression-aware engine paths per key size.

    For an FC matrix and a conv im2col matrix, times four variants of
    the same homomorphic affine: the dense engine path (the baseline
    every earlier PR shipped), the pruned sparse plan, the
    pruned+clustered plan, and — when gmpy2 is importable — the
    clustered plan on the gmpy2 bigint backend.  Every variant passes
    a decode-identity gate against the plaintext math *and* the dense
    engine path before it is timed, and each row records the backend
    that produced it.  ``model_key`` (None disables it) adds the
    model-zoo accuracy cost of the same compression settings.
    """
    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    if not 0.0 <= sparsity < 1.0:
        raise ReproError(f"sparsity must be in [0, 1), got {sparsity}")
    results: dict = {
        "benchmark": "paillier_compress",
        "seed": seed,
        "repeats": repeats,
        "sparsity": sparsity,
        "clusters": clusters,
        "fc_shape": list(fc_shape),
        "workers": workers,
        "gmpy2_available": HAVE_GMPY2,
        "key_sizes": {},
    }
    out_dim, in_dim = fc_shape
    rng = random.Random(seed)
    fc_weight = np.array(
        [[rng.randrange(-WEIGHT_MAGNITUDE, WEIGHT_MAGNITUDE)
          for _ in range(in_dim)] for _ in range(out_dim)],
        dtype=np.int64,
    )
    conv_weight = np.asarray(_conv_affine(seed).weight, dtype=np.int64)
    for key_size in key_sizes:
        t0 = time.perf_counter()
        public, private = generate_keypair(key_size, seed=seed)
        keygen_seconds = time.perf_counter() - t0
        engine = PaillierEngine(
            public, private_key=private, workers=workers,
            pool_size=2 * max(conv_weight.shape[1], in_dim),
            seed=seed + 1, backend="python",
        )
        gmpy2_engine = None
        if HAVE_GMPY2:
            gmpy2_engine = PaillierEngine(
                public, private_key=private, workers=workers,
                pool_size=2 * max(conv_weight.shape[1], in_dim),
                seed=seed + 1, backend="gmpy2",
            )
        try:
            row: dict = {"keygen_seconds": keygen_seconds}
            row["fc_matvec"] = _bench_compress_op(
                engine, gmpy2_engine, fc_weight, seed, repeats,
                sparsity, clusters, "fc_matvec",
            )
            row["conv_im2col"] = _bench_compress_op(
                engine, gmpy2_engine, conv_weight, seed, repeats,
                sparsity, clusters, "conv_im2col",
            )
        finally:
            engine.close()
            if gmpy2_engine is not None:
                gmpy2_engine.close()
        results["key_sizes"][str(key_size)] = row
    if model_key is not None:
        results["model_accuracy"] = _compress_model_accuracy(
            model_key, sparsity, clusters, seed
        )
    return results


def _session_model(model_key: str, seed: int):
    """``(model, decimals, eval_inputs, eval_labels, sample)`` for the
    session-level compression bench.

    ``"tiny"`` is the untrained 1-conv+2-FC smoke model (no training
    cost, no accuracy data — the CI-sized leg); any other key is a
    trained Table III model whose test split doubles as the accuracy
    gate's evaluation set.
    """
    if model_key == "tiny":
        from .nn import model_zoo

        model = model_zoo.conv_fc(
            (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
            name="bench-tiny",
        )
        rng = np.random.default_rng(seed)
        return model, 2, None, None, rng.uniform(0, 1, (1, 8, 8))
    from .experiments.common import prepare_model

    prepared = prepare_model(model_key, seed=seed)
    dataset = prepared.dataset
    return (prepared.model, prepared.decimals, dataset.test_x,
            dataset.test_y, dataset.test_x[0])


def run_compress_session_bench(
    key_sizes: Sequence[int] = DEFAULT_COMPRESS_KEY_SIZES,
    seed: int = 0,
    repeats: int = 1,
    sparsity: float = DEFAULT_COMPRESS_SPARSITY,
    clusters: int = DEFAULT_COMPRESS_CLUSTERS,
    model_key: str = DEFAULT_COMPRESS_SESSION_MODEL,
    accuracy_budget: float = 0.01,
) -> dict:
    """Dense vs compressed *end-to-end inference* per key size.

    Where :func:`run_compress_bench` times isolated engine kernels,
    this leg times whole sessions: the same input runs through the
    in-process :class:`~repro.protocol.session.InferenceSession`, the
    threaded :class:`~repro.stream.pipeline.Pipeline`, and a real TCP
    fleet (:class:`~repro.net.coordinator.Coordinator` + two in-thread
    :class:`~repro.net.worker.WorkerServer`\\ s) — once on the dense
    model and once on its pruned+clustered twin, whose
    :class:`~repro.crypto.sparse.SparseMatvecPlan`\\ s the providers
    build and thread through every runtime automatically.

    Two gates run before anything is recorded:

    * accuracy budget — when ``model_key`` has evaluation data, the
      compressed model's top-1 accuracy must sit within
      ``accuracy_budget`` of the dense baseline (prune backoff plus an
      explicit post-clustering check);
    * bit identity — each runtime's compressed probabilities must be
      byte-for-byte the in-process compressed reference's (and dense
      runtimes the dense reference's): three transports, one result.

    Stage assignment is load-balanced with the planner's
    compression-aware cost profile, so the compressed plan sees its
    linear stages as the cheaper stages they really are.

    Two methodology points keep the comparison honest:

    * the **dense** variant's matvec plans are stripped before any
      spec or executor is built — a trained model's scaled weights are
      often sparse enough that :func:`plan_if_worthwhile` fires on the
      "dense" model too, which would silently benchmark compressed
      against compressed (the stripped plans flow everywhere: the
      in-process session, the threaded pipeline, and the TCP handshake
      spec all read them from the provider);
    * the blinding-factor pool is sized to cover every warm-up and
      timed run, mirroring :func:`run_paillier_bench` — the pool is
      the paper's offline phase, and both variants draw from equally
      prefilled pools so no lazy mid-run refill pollutes either side.
    """
    from .config import RuntimeConfig
    from .costs import CostModel
    from .net import Coordinator, WorkerServer
    from .nn.rewrite import prune_model
    from .planner.allocation import allocate_load_balanced
    from .planner.plan import ClusterSpec
    from .planner.profiling import profile_primitive_times
    from .protocol import DataProvider, InferenceSession, ModelProvider
    from .scaling.clustering import cluster_model
    from .stream import Pipeline, RetryPolicy

    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    model, decimals, eval_x, eval_y, sample = _session_model(
        model_key, seed
    )
    pruned, prune_report = prune_model(
        model, sparsity, inputs=eval_x, labels=eval_y,
        accuracy_budget=accuracy_budget,
    )
    compressed, cluster_report = cluster_model(
        pruned, clusters, seed=seed, inputs=eval_x, labels=eval_y,
    )
    compression: dict = {
        "model": model_key,
        "decimals": decimals,
        "target_sparsity": sparsity,
        "applied_sparsity": prune_report.applied_sparsity,
        "clusters": clusters,
        "baseline_accuracy": prune_report.baseline_accuracy,
        "compressed_accuracy": cluster_report.clustered_accuracy,
        "accuracy_budget": accuracy_budget,
    }
    if prune_report.baseline_accuracy is not None \
            and cluster_report.clustered_accuracy is not None:
        drop = (prune_report.baseline_accuracy
                - cluster_report.clustered_accuracy)
        compression["accuracy_drop"] = drop
        if drop > accuracy_budget + 1e-12:
            raise ReproError(
                f"compressed model accuracy dropped {drop:.4f}, over "
                f"the {accuracy_budget} budget; refusing to benchmark "
                "an undeployable model"
            )
        compression["accuracy_gate_passed"] = True
    cluster = ClusterSpec.homogeneous(1, 1, 2)
    cost_model = CostModel.reference()
    retry_policy = RetryPolicy(max_retries=3, base_delay=0.02)

    def model_provider_for(variant_model, config, planned):
        model_provider = ModelProvider(variant_model, decimals=decimals,
                                       config=config)
        if not planned:
            # The dense baseline must run the dense kernels even when
            # its scaled weights happen to be plan-worthy; blanking
            # the plans here flows through the session, the pipeline,
            # and the handshake spec alike.
            for stage_plan in model_provider._linear_plans.values():
                stage_plan.matvec_plans[:] = \
                    [None] * len(stage_plan.matvec_plans)
        return model_provider

    # Offline-phase pool sizing: one run draws a blinding factor per
    # input cell (encryption) plus one per stage-output cell
    # (re-encryption of permuted activations), so cover the warm-up
    # and every timed run with a margin run to spare.
    cells_per_run = int(np.asarray(sample).size) + sum(
        int(np.prod(stage.primitives[-1].output_shape))
        for stage in model_provider_for(
            model, RuntimeConfig(seed=seed), True).stages
    )
    pool_size = (repeats + 2) * cells_per_run
    results: dict = {
        "benchmark": "compress_session",
        "seed": seed,
        "repeats": repeats,
        "blinding_pool_size": pool_size,
        "compression": compression,
        "key_sizes": {},
    }

    def providers(variant_model, config, planned):
        data_provider = DataProvider(value_decimals=decimals,
                                     config=config)
        return (model_provider_for(variant_model, config, planned),
                data_provider)

    def plan_for(variant_model, config, planned):
        model_provider = model_provider_for(variant_model, config,
                                            planned)
        times = profile_primitive_times(
            model_provider.stages, cost_model, decimals,
            compression=model_provider.compression_stats(),
        )
        return allocate_load_balanced(model_provider.stages, times,
                                      cluster).plan

    def run_in_process(variant_model, config, planned):
        session = InferenceSession(
            *providers(variant_model, config, planned)
        )
        probabilities = session.run(sample).probabilities
        seconds = _timed(lambda: session.run(sample), repeats)
        return probabilities, seconds

    def checked_stream(runner, what):
        # Guard every run, timed ones included: a dead-lettered
        # stream returns instantly and would otherwise be recorded
        # as an impossibly fast (and empty) "result".
        stats = runner([sample])
        if stats.dead_letters or not stats.results:
            raise ReproError(
                f"{what} bench run dead-lettered: {stats.dead_letters}"
            )
        return stats

    def run_threaded(variant_model, config, planned, plan):
        pipeline = Pipeline(
            *providers(variant_model, config, planned), plan
        )
        stats = checked_stream(pipeline.run_stream, "threaded")
        probabilities = stats.results[0].probabilities
        seconds = _timed(
            lambda: checked_stream(pipeline.run_stream, "threaded"),
            repeats,
        )
        return probabilities, seconds

    def run_tcp(variant_model, config, planned, plan):
        servers = [WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in servers]
        try:
            with Coordinator(*providers(variant_model, config,
                                        planned), plan,
                             addresses,
                             retry_policy=retry_policy) as coord:
                stats = checked_stream(coord.run_stream, "TCP")
                probabilities = stats.results[0].probabilities
                seconds = _timed(
                    lambda: checked_stream(coord.run_stream, "TCP"),
                    repeats,
                )
        finally:
            for server in servers:
                server.stop(abort=True)
        return probabilities, seconds

    from .crypto import resolve_backend

    for key_size in key_sizes:
        config = RuntimeConfig(key_size=key_size, seed=seed,
                               blinding_pool_size=pool_size)
        row: dict = {"backend": resolve_backend(
                         config.bigint_backend).name,
                     "runtimes": {}}
        references: dict = {}
        for variant, variant_model in (("dense", model),
                                       ("compressed", compressed)):
            planned = variant == "compressed"
            plan = plan_for(variant_model, config, planned)
            ref, in_process_s = run_in_process(
                variant_model, config, planned
            )
            references[variant] = ref
            threaded_p, threaded_s = run_threaded(
                variant_model, config, planned, plan
            )
            tcp_p, tcp_s = run_tcp(variant_model, config, planned, plan)
            for runtime, probabilities in (("threaded", threaded_p),
                                           ("tcp", tcp_p)):
                if not np.array_equal(probabilities, ref):
                    raise ReproError(
                        f"{variant} {runtime} probabilities diverged "
                        "from the in-process reference; refusing to "
                        "benchmark a wrong runtime"
                    )
            row["runtimes"][variant] = {
                "in_process_seconds": in_process_s,
                "threaded_seconds": threaded_s,
                "tcp_seconds": tcp_s,
                "bit_identical": True,
            }
        for runtime in ("in_process", "threaded", "tcp"):
            dense_s = row["runtimes"]["dense"][f"{runtime}_seconds"]
            compressed_s = \
                row["runtimes"]["compressed"][f"{runtime}_seconds"]
            row["runtimes"].setdefault("speedup", {})[runtime] = (
                dense_s / compressed_s if compressed_s > 0
                else float("inf")
            )
        row["predictions_match"] = bool(
            int(np.argmax(references["dense"]))
            == int(np.argmax(references["compressed"]))
        )
        results["key_sizes"][str(key_size)] = row
    return results


def render_compress_session_bench(results: dict) -> str:
    """Human-readable summary of a session-level compression bench."""
    compression = results["compression"]
    lines = [
        f"Compressed-session benchmark (model={compression['model']}, "
        f"applied sparsity={compression['applied_sparsity']:.2f}, "
        f"clusters={compression['clusters']})",
        f"{'key':>6} {'runtime':<12} {'dense s':>10} "
        f"{'compressed s':>13} {'speedup':>9}",
    ]
    for key_size, row in sorted(results["key_sizes"].items(),
                                key=lambda kv: int(kv[0])):
        for runtime in ("in_process", "threaded", "tcp"):
            dense_s = row["runtimes"]["dense"][f"{runtime}_seconds"]
            compressed_s = \
                row["runtimes"]["compressed"][f"{runtime}_seconds"]
            speedup = row["runtimes"]["speedup"][runtime]
            lines.append(
                f"{key_size:>6} {runtime:<12} {dense_s:>10.3f} "
                f"{compressed_s:>13.3f} {speedup:>8.2f}x"
            )
    if compression.get("accuracy_gate_passed"):
        lines.append(
            f"accuracy gate: {compression['baseline_accuracy']:.4f} -> "
            f"{compression['compressed_accuracy']:.4f} "
            f"(drop {compression['accuracy_drop']:+.4f} within "
            f"{compression['accuracy_budget']} budget)"
        )
    return "\n".join(lines)


def render_compress_bench(results: dict) -> str:
    """Human-readable summary table of a compression BENCH document."""
    lines = [
        "Paillier compression benchmark "
        f"(sparsity={results['sparsity']}, "
        f"clusters={results['clusters']}, "
        f"workers={results['workers']})",
        f"{'key':>6} {'op':<12} {'variant':<10} {'backend':<8} "
        f"{'ops/s':>12} {'vs dense':>9}",
    ]
    for key_size, row in sorted(results["key_sizes"].items(),
                                key=lambda kv: int(kv[0])):
        for op in ("fc_matvec", "conv_im2col"):
            entry = row.get(op)
            if not entry:
                continue
            for variant in ("dense", "pruned", "clustered", "gmpy2"):
                stats = entry.get(variant)
                if stats is None:
                    continue
                if stats.get("skipped"):
                    lines.append(
                        f"{key_size:>6} {op:<12} {variant:<10} "
                        f"skipped: {stats['reason']}"
                    )
                    continue
                speedup = stats.get("speedup_vs_dense", 1.0)
                lines.append(
                    f"{key_size:>6} {op:<12} {variant:<10} "
                    f"{stats['backend']:<8} "
                    f"{stats['ops_per_sec']:>12.1f} "
                    f"{speedup:>8.2f}x"
                )
    model = results.get("model_accuracy")
    if model:
        lines.append(
            f"model {model['model']}: accuracy "
            f"{model['baseline_accuracy']:.4f} -> "
            f"{model['clustered_accuracy']:.4f} "
            f"(delta {model['accuracy_delta']:+.4f}, "
            f"applied sparsity {model['applied_sparsity']:.2f})"
        )
    return "\n".join(lines)


def run_elastic_bench(
    key_size: int = 128,
    seed: int = 0,
    samples: int = 6,
    join_cores: int = 6,
    progress=lambda text: None,
) -> dict:
    """End-to-end elastic-fleet benchmark: the BENCH_elastic.json leg.

    Walks one fleet through its whole elastic lifecycle
    (docs/ELASTIC.md) and records throughput at every step:

    1. **before** — a 2-worker fleet (one model, one data role)
       streams ``samples`` encrypted requests.
    2. **during_join** — the same stream runs again while a third
       worker registers over the wire (``join_fleet`` against the
       membership listener, mid-stream).
    3. **rebalance** — a :class:`~repro.cluster.rebalancer.Rebalancer`
       reads the queue-depth high-water marks and measured service
       times the streams left behind and must apply a plan that moves
       stages onto the joined member (it advertises ``join_cores``
       cores against the originals' two, so water-filling provably
       prefers it).
    4. **after_join** — streams on the new plan; the per-worker
       labeled ``net_stage_roundtrip_seconds`` series must show the
       joined member doing real work.
    5. **during_kill** — an original model worker is hard-killed
       mid-stream; heartbeat failover must finish the stream with
       zero dead letters.
    6. **after_drain** — the dead member's slot is drained
       (``drain_member``), and a final stream runs on the shrunk
       fleet.

    Every streamed phase is gated on zero dead letters and
    bit-identity with an in-process reference pipeline; ``ok`` in the
    returned document ands all gates together (the CLI exits non-zero
    when it is False).
    """
    import threading

    from .cluster import ElasticCoordinator, Rebalancer
    from .config import RuntimeConfig
    from .net import WorkerServer
    from .nn import model_zoo
    from .observability import NULL_TRACER, Observability
    from .planner.allocation import allocate_even
    from .planner.plan import ClusterSpec
    from .protocol import DataProvider, ModelProvider
    from .stream import Pipeline, RetryPolicy

    if samples < 2:
        raise ReproError("the elastic bench needs >= 2 samples "
                         "(joins and kills land mid-stream)")
    model = model_zoo.conv_fc(
        (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
        name="elastic-bench",
    )
    decimals = 2
    config = RuntimeConfig(
        key_size=key_size, seed=seed,
    ).with_net(
        heartbeat_interval=0.2, heartbeat_timeout=2.0,
    ).with_cluster(
        backlog_high=1.0, backlog_low=0.0, rebalance_cooldown=0.0,
        min_service_samples=1,
    )
    obs = Observability(enabled=True, tracer=NULL_TRACER)
    rng = np.random.default_rng(seed)
    inputs = [rng.uniform(0, 1, (1, 8, 8)) for _ in range(samples)]

    def providers(with_obs):
        return (
            ModelProvider(model, decimals=decimals, config=config,
                          obs=obs if with_obs else None),
            DataProvider(value_decimals=decimals, config=config,
                         obs=obs if with_obs else None),
        )

    # The seed fleet: one model worker, one data worker, two cores
    # each (the 8-stage tiny model needs capacity >= 4 per role for
    # the even baseline to be feasible).
    cluster = ClusterSpec.homogeneous(1, 1, 2)
    model_provider, data_provider = providers(True)
    plan = allocate_even(model_provider.stages, cluster).plan
    reference = {
        r.request_id: r.probabilities
        for r in Pipeline(*providers(False), plan)
        .run_stream(inputs).results
    }

    results: dict = {
        "benchmark": "elastic",
        "schema": "elastic/1",
        "key_size": key_size,
        "seed": seed,
        "samples": samples,
        "phases": {},
        "ok": True,
    }

    def record_phase(name: str, stats) -> None:
        identical = all(
            np.array_equal(r.probabilities, reference[r.request_id])
            for r in stats.results
        ) and len(stats.results) == len(inputs)
        row = {
            "wall_seconds": stats.wall_time,
            "completed": len(stats.results),
            "req_per_s": (len(stats.results) / stats.wall_time
                          if stats.wall_time > 0 else 0.0),
            "dead_letters": len(stats.dead_letters),
            "bit_identical": identical,
        }
        results["phases"][name] = row
        if stats.dead_letters or not identical:
            results["ok"] = False
        progress(f"  {name}: {row['req_per_s']:.2f} req/s, "
                 f"{row['dead_letters']} dead letters, "
                 f"bit-identical={identical}")

    servers = [WorkerServer(obs=obs), WorkerServer(obs=obs)]
    addresses = [server.start() for server in servers]
    spare = WorkerServer(obs=obs)
    spare_address = spare.start()
    coordinator = ElasticCoordinator(
        model_provider, data_provider, plan, addresses,
        retry_policy=RetryPolicy(max_retries=3, base_delay=0.05),
    )
    try:
        with coordinator:
            results["epoch_initial"] = coordinator.state.epoch
            progress("phase: before (2-worker fleet)")
            record_phase("before", coordinator.run_stream(inputs))

            # Join over the wire, mid-stream: the stream runs in the
            # background while the spare dials the membership
            # listener and the coordinator dials back.
            progress("phase: during_join (third worker joins live)")
            membership_host, membership_port = \
                coordinator.membership_address
            stream_box: dict = {}

            def _stream():
                stream_box["stats"] = coordinator.run_stream(inputs)

            streamer = threading.Thread(
                target=_stream, name="repro-elastic-bench-stream",
            )
            streamer.start()
            time.sleep(0.2)
            announce = spare.join_fleet(
                membership_host, membership_port, "model",
                cores=join_cores,
            )
            streamer.join()
            record_phase("during_join", stream_box["stats"])
            joined_id = announce["server_id"]
            results["join"] = {
                "server_id": joined_id,
                "epoch": announce["epoch"],
                "role": announce["role"],
                "cores": join_cores,
            }

            # Telemetry-driven re-plan: the high-water queue depths
            # and measured service times from the first two streams
            # must push stages onto the joined (bigger) member.
            old_assignments = {a.stage_index: a.server_id
                               for a in coordinator.plan.assignments}
            rebalancer = Rebalancer(coordinator, watermark="high")
            applied = rebalancer.step()
            new_assignments = {a.stage_index: a.server_id
                               for a in coordinator.plan.assignments}
            moved = sorted(
                stage for stage, server in new_assignments.items()
                if old_assignments[stage] != server
            )
            on_joined = sorted(
                stage for stage, server in new_assignments.items()
                if server == joined_id
            )
            results["rebalance"] = {
                "applied": applied,
                "moved_stages": moved,
                "stages_on_joined": on_joined,
                "peak_backlog": max(
                    rebalancer.backlog_by_stage().values(),
                    default=0.0,
                ),
            }
            if not applied or not on_joined:
                results["ok"] = False
            progress(f"rebalance: applied={applied}, moved stages "
                     f"{moved} (on joined member: {on_joined})")

            progress("phase: after_join (re-planned fleet)")
            record_phase("after_join", coordinator.run_stream(inputs))
            joined_roundtrips = sum(
                hist.count for labels, hist in obs.registry.find(
                    "histogram", "net_stage_roundtrip_seconds")
                if labels.get("worker") == str(joined_id)
            )
            results["join"]["labeled_roundtrips"] = joined_roundtrips
            if not joined_roundtrips:
                results["ok"] = False

            # Hard-kill an original model worker mid-stream: the
            # heartbeat failover (not the drain path) must carry the
            # stream home.
            progress("phase: during_kill (worker 0 hard-killed)")
            assassin = threading.Timer(
                0.2, lambda: servers[0].stop(abort=True)
            )
            assassin.start()
            try:
                record_phase("during_kill",
                             coordinator.run_stream(inputs))
            finally:
                assassin.join()

            # Retire the dead slot for real: the drain re-plans
            # around it and quiesces whatever is left.
            drain_epoch = coordinator.drain_member(0)
            results["drain"] = {
                "server_id": 0,
                "epoch": drain_epoch,
                "present_members": len(
                    coordinator.state.snapshot().present()
                ),
            }
            progress(f"drained server 0 (epoch {drain_epoch})")
            progress("phase: after_drain (shrunk fleet)")
            record_phase("after_drain",
                         coordinator.run_stream(inputs))
            results["epoch_final"] = coordinator.state.epoch
    finally:
        for server in servers + [spare]:
            server.stop(abort=True)
    return results


def render_elastic_bench(results: dict) -> str:
    """Human-readable summary of an elastic BENCH document."""
    lines = [
        f"Elastic fleet benchmark (key={results['key_size']}, "
        f"{results['samples']} requests per phase)",
        f"{'phase':<14} {'req/s':>8} {'wall s':>8} "
        f"{'dead':>5} {'bit-identical':>14}",
    ]
    for name in ("before", "during_join", "after_join",
                 "during_kill", "after_drain"):
        row = results["phases"].get(name)
        if row is None:
            continue
        lines.append(
            f"{name:<14} {row['req_per_s']:>8.2f} "
            f"{row['wall_seconds']:>8.2f} {row['dead_letters']:>5} "
            f"{str(row['bit_identical']):>14}"
        )
    join = results.get("join", {})
    rebalance = results.get("rebalance", {})
    if join:
        lines.append(
            f"join: server {join['server_id']} "
            f"({join['cores']} cores) at epoch {join['epoch']}, "
            f"{join.get('labeled_roundtrips', 0)} labeled "
            "round trips after re-plan"
        )
    if rebalance:
        lines.append(
            f"rebalance: applied={rebalance['applied']}, stages "
            f"{rebalance['moved_stages']} moved "
            f"(peak backlog {rebalance['peak_backlog']:.1f})"
        )
    if results.get("drain"):
        lines.append(
            f"drain: server {results['drain']['server_id']} retired "
            f"at epoch {results['drain']['epoch']}, "
            f"{results['drain']['present_members']} members remain"
        )
    lines.append("verdict: " + ("OK" if results["ok"] else "BROKEN"))
    return "\n".join(lines)


def write_bench_json(results: dict, path: str) -> None:
    """Write a BENCH JSON document (stable formatting for diffs)."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_bench(results: dict) -> str:
    """Human-readable summary table of a BENCH document."""
    lines = [
        "Paillier engine benchmark "
        f"(workers={results['workers']}, "
        f"elements={results['elements']}, "
        f"fc={tuple(results['fc_shape'])})",
        f"{'key':>6} {'op':<14} {'scalar ops/s':>14} "
        f"{'engine ops/s':>14} {'speedup':>9}",
    ]
    for key_size, row in sorted(results["key_sizes"].items(),
                                key=lambda kv: int(kv[0])):
        for op, entry in row.items():
            if not isinstance(entry, dict) \
                    or "scalar_ops_per_sec" not in entry:
                continue  # keygen_seconds, breakdown, ...
            lines.append(
                f"{key_size:>6} {op:<14} "
                f"{entry['scalar_ops_per_sec']:>14.1f} "
                f"{entry['engine_ops_per_sec']:>14.1f} "
                f"{entry['speedup']:>8.2f}x"
            )
    return "\n".join(lines)
