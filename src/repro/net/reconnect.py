"""Circuit breaker guarding per-worker reconnect attempts.

The coordinator's recovery loop retries a dead worker's endpoint with
exponential backoff; the breaker sits in front of those attempts so a
persistently-dead endpoint stops being hammered:

* **closed** — healthy; attempts flow.  Consecutive failures count up.
* **open** — tripped after ``threshold`` consecutive failures; every
  attempt is refused until ``cooldown`` seconds pass.
* **half-open** — after the cooldown one probe attempt is let through;
  success closes the breaker (counters reset), failure re-opens it and
  restarts the cooldown.

The clock is injectable so tests drive state transitions without
sleeping.  All methods are thread-safe; the coordinator shares one
breaker per worker between its heartbeat monitor and recovery loop.
"""

from __future__ import annotations

import threading
import time

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a cooldown probe."""

    def __init__(self, threshold: int = 5, cooldown: float = 5.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        if cooldown <= 0:
            raise ValueError(
                f"breaker cooldown must be positive, got {cooldown}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Whether an attempt may proceed right now.

        In the open state, the first call after the cooldown elapses
        transitions to half-open and is allowed (the probe); further
        calls while half-open are also allowed — the coordinator's
        recovery loop is single-threaded per worker, so at most one
        probe is in flight anyway.
        """
        with self._lock:
            if self._state == STATE_OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = STATE_HALF_OPEN
                    return True
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = STATE_CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == STATE_HALF_OPEN \
                    or self._failures >= self.threshold:
                if self._state != STATE_OPEN:
                    self.trips += 1
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._failures = 0
