"""Envelope payload codecs for the distributed runtime.

Builds the role-specific handshake spec a coordinator ships to each
worker, and converts :class:`~repro.stream.executors.StreamItem`
traffic to/from ``task`` / ``result`` / ``error`` envelopes.  Tensor
payloads are exactly the :mod:`repro.crypto.serialize` frames (scalar
or lane-packed); keys cross the wire as the same module's JSON forms.

Privacy separation (paper Eq. 6) holds on the wire: the spec sent to a
*model*-role worker carries scaled affines and the public key but never
the private key; the spec sent to a *data*-role worker carries the
private key and activation specs but never a model parameter.
"""

from __future__ import annotations

import base64
import dataclasses

import numpy as np

from ..config import RuntimeConfig
from ..crypto.sparse import SparseMatvecPlan
from ..crypto.serialize import (
    any_tensor_from_bytes,
    any_tensor_to_bytes,
    private_key_to_json,
    public_key_to_json,
)
from ..errors import (
    CryptoError,
    PoisonedRequestError,
    TransientStageError,
    TransportError,
)
from ..nn.layers import LayerKind
from ..scaling.fixed_point import ScaledAffine
from ..stream.executors import StreamItem
from .transport import (
    KIND_ANNOUNCE,
    KIND_ERROR,
    KIND_JOIN,
    KIND_LEAVE,
    KIND_RESULT,
    KIND_TASK,
    VERSION,
    Envelope,
)

#: Worker roles (mirror :class:`repro.planner.plan.ServerSpec.role`).
ROLE_MODEL = "model"
ROLE_DATA = "data"


def _b64(array: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(array).tobytes()
                            ).decode("ascii")


def _unb64(text: str, dtype: str, shape) -> np.ndarray:
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
        array = np.frombuffer(raw, dtype=dtype).reshape(tuple(shape))
    except (ValueError, TypeError) as exc:
        raise TransportError(f"malformed array field: {exc}") from exc
    return array.copy()


def affine_to_wire(affine: ScaledAffine) -> dict:
    return {
        "weight": _b64(affine.weight.astype(np.int64)),
        "weight_shape": list(affine.weight.shape),
        "raw_bias": _b64(np.asarray(affine.raw_bias, dtype=np.float64)),
        "bias_shape": list(np.asarray(affine.raw_bias).shape),
        "decimals": affine.decimals,
        "input_shape": list(affine.input_shape),
        "output_shape": list(affine.output_shape),
    }


def affine_from_wire(state: dict) -> ScaledAffine:
    try:
        return ScaledAffine(
            weight=_unb64(state["weight"], "int64",
                          state["weight_shape"]),
            raw_bias=_unb64(state["raw_bias"], "float64",
                            state["bias_shape"]),
            decimals=int(state["decimals"]),
            input_shape=tuple(state["input_shape"]),
            output_shape=tuple(state["output_shape"]),
        )
    except KeyError as exc:
        raise TransportError(f"affine record missing {exc}") from exc


def plan_to_wire(plan: SparseMatvecPlan) -> dict:
    """JSON-safe form of one layer's sparse matvec plan.

    Weights are scaled int64 values and row sums stay within Python
    int range, so everything rides as plain JSON integers; the nested
    column structure mirrors :class:`~repro.crypto.sparse.PlanColumn`
    exactly (column index, then ``(weight, rows)`` groups in the
    plan's canonical ascending-weight order, so the wire form is as
    deterministic as the plan identity it encodes).
    """
    return {
        "in_dim": plan.in_dim,
        "out_dim": plan.out_dim,
        "columns": [
            [i, [[w, list(rows)] for w, rows in groups]]
            for i, groups in plan.columns
        ],
        "row_weight_sums": list(plan.row_weight_sums),
    }


def plan_from_wire(state: dict) -> SparseMatvecPlan:
    """Rebuild a sparse matvec plan from its wire form.

    The plan constructor re-validates the full structure (dimension
    bounds, row/column ranges, no zero weights), so a malformed or
    tampered handshake section fails here as a
    :class:`~repro.errors.TransportError` instead of poisoning a
    session's linear kernels.
    """
    try:
        columns = tuple(
            (int(i), tuple((int(w), tuple(int(r) for r in rows))
                           for w, rows in groups))
            for i, groups in state["columns"]
        )
        return SparseMatvecPlan(
            int(state["in_dim"]),
            int(state["out_dim"]),
            columns,
            [int(s) for s in state["row_weight_sums"]],
        )
    except (CryptoError, KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed matvec plan: {exc}") from exc


def config_to_wire(config: RuntimeConfig) -> dict:
    return dataclasses.asdict(config)


def config_from_wire(state: dict) -> RuntimeConfig:
    try:
        return RuntimeConfig(**state)
    except TypeError as exc:
        raise TransportError(f"bad config record: {exc}") from exc


def build_worker_spec(model_provider, data_provider, plan,
                      role: str, tenant: str = "default") -> dict:
    """The handshake spec for one worker of the given role.

    Contains everything a fresh process needs to rebuild its stage
    executors: the runtime config, stage geometry, and the role's
    state (affines + public key for model workers; private key +
    activation specs + value decimals for data workers).

    ``tenant`` names the isolated session the worker should serve this
    connection under: one worker process hosts many tenants' stage
    state side by side (each with its own keypair), which is how the
    serving gateway multiplexes tenants onto one shared fleet.  The
    worker pins each tenant to a digest of its first handshake spec:
    a re-handshake under a different modulus is refused (tenant
    isolation), while one with the same keypair but a changed config
    or stage geometry rebuilds the tenant's session so stale
    executors never serve a reconfigured coordinator.
    """
    if role not in (ROLE_MODEL, ROLE_DATA):
        raise TransportError(f"unknown worker role {role!r}")
    stages = {}
    for stage in plan.stages:
        kind = ("linear" if stage.kind is LayerKind.LINEAR
                else "nonlinear")
        entry = {
            "kind": kind,
            "threads": plan.threads_for(stage.index),
        }
        if role == ROLE_MODEL and kind == "linear":
            stage_plan = model_provider._linear_plans[stage.index]
            entry["affines"] = [
                affine_to_wire(affine)
                for affine in stage_plan.affines
            ]
            # Compressed layers ship their sparse plans so remote
            # executors hit the same kernels bit-identically; a plan
            # change (re-pruned / re-clustered tenant model) changes
            # the spec digest, which forces the worker's pinned
            # session to rebuild instead of serving stale structure.
            entry["matvec_plans"] = [
                None if plan is None else plan_to_wire(plan)
                for plan in stage_plan.matvec_plans
            ]
        if role == ROLE_DATA and kind == "nonlinear":
            entry["activations"] = \
                model_provider.nonlinear_activations(stage.index)
        stages[str(stage.index)] = entry
    spec = {
        "version": VERSION,
        "role": role,
        "tenant": tenant,
        "num_stages": len(plan.stages),
        "use_tensor_partitioning": plan.use_tensor_partitioning,
        "config": config_to_wire(model_provider.config),
        "public_key": public_key_to_json(data_provider.public_key),
        "stages": stages,
    }
    if role == ROLE_MODEL:
        spec["decimals"] = model_provider.decimals
    else:
        spec["value_decimals"] = data_provider.value_decimals
        spec["private_key"] = private_key_to_json(
            data_provider._private_key
        )
    return spec


# -- stream item traffic ------------------------------------------------


def task_envelope(item: StreamItem, stage_index: int) -> Envelope:
    """Wrap a stream item as a stage-task envelope."""
    if item.tensor is None:
        raise TransportError(
            f"request {item.request_id} has no tensor to ship"
        )
    return Envelope(
        KIND_TASK,
        header={
            "request_id": item.request_id,
            "stage_index": stage_index,
            "obfuscation_round": item.obfuscation_round,
            "trace_id": item.trace_id,
            "trace_parent": item.trace_parent,
        },
        payload=any_tensor_to_bytes(item.tensor),
    )


def item_from_task(envelope: Envelope, public_key) -> StreamItem:
    """Rebuild the worker-side stream item from a task envelope."""
    header = envelope.header
    try:
        return StreamItem(
            request_id=int(header["request_id"]),
            tensor=any_tensor_from_bytes(envelope.payload, public_key),
            obfuscation_round=(
                None if header.get("obfuscation_round") is None
                else int(header["obfuscation_round"])
            ),
            trace_id=header.get("trace_id"),
            trace_parent=header.get("trace_parent"),
        )
    except KeyError as exc:
        raise TransportError(f"task envelope missing {exc}") from exc


def result_envelope(item: StreamItem) -> Envelope:
    """Wrap a processed item as a stage-result envelope.

    Final stages produce a float64 probability vector — shipped as raw
    little-endian bytes so the coordinator's copy is bit-identical to
    the in-process pipeline's.  Non-final stages ship the output tensor
    frame plus the outbound obfuscation round.
    """
    if item.result is not None:
        result = np.ascontiguousarray(np.asarray(item.result,
                                                 dtype=np.float64))
        return Envelope(
            KIND_RESULT,
            header={
                "request_id": item.request_id,
                "has_result": True,
                "result_shape": list(result.shape),
            },
            payload=result.tobytes(),
        )
    if item.tensor is None:
        raise TransportError(
            f"request {item.request_id} finished with neither a tensor "
            "nor a result"
        )
    return Envelope(
        KIND_RESULT,
        header={
            "request_id": item.request_id,
            "has_result": False,
            "obfuscation_round": item.obfuscation_round,
        },
        payload=any_tensor_to_bytes(item.tensor),
    )


def apply_result(envelope: Envelope, item: StreamItem,
                 public_key) -> StreamItem:
    """Fold a stage-result envelope back into the coordinator's item."""
    header = envelope.header
    got = header.get("request_id")
    if got != item.request_id:
        raise TransportError(
            f"result for request {got} arrived while request "
            f"{item.request_id} was in flight"
        )
    if header.get("has_result"):
        try:
            shape = tuple(int(d) for d in header["result_shape"])
            result = np.frombuffer(envelope.payload,
                                   dtype=np.float64).reshape(shape)
        except (KeyError, ValueError, TypeError) as exc:
            raise TransportError(
                f"malformed result envelope: {exc}"
            ) from exc
        item.result = result.copy()
        item.tensor = None
        item.obfuscation_round = None
        return item
    item.tensor = any_tensor_from_bytes(envelope.payload, public_key)
    item.obfuscation_round = (
        None if header.get("obfuscation_round") is None
        else int(header["obfuscation_round"])
    )
    return item


#: Error classifications carried on ``error`` envelopes.
CLASS_TRANSIENT = "transient"
CLASS_PERMANENT = "permanent"
CLASS_UNCLASSIFIED = "unclassified"


def error_envelope(request_id: int, classification: str,
                   message: str) -> Envelope:
    return Envelope(KIND_ERROR, header={
        "request_id": request_id,
        "classification": classification,
        "message": message,
    })


def raise_remote_error(envelope: Envelope) -> None:
    """Re-raise a worker-reported stage failure with its class intact.

    Transient failures become :class:`TransientStageError` (retried),
    permanent ones :class:`PoisonedRequestError` (dead-lettered), and
    unclassified ones a plain ``RuntimeError`` so the coordinator's
    retry policy applies its own ``retry_unclassified`` default —
    matching what would have happened had the executor raised locally.
    """
    header = envelope.header
    classification = header.get("classification", CLASS_UNCLASSIFIED)
    message = (f"remote stage failure: "
               f"{header.get('message', 'unknown error')}")
    if classification == CLASS_TRANSIENT:
        raise TransientStageError(message)
    if classification == CLASS_PERMANENT:
        raise PoisonedRequestError(message)
    raise RuntimeError(message)


# -- membership traffic (docs/ELASTIC.md) -------------------------------
#
# Spoken worker -> coordinator against the coordinator's membership
# listener, not against a worker's task port.  ``join`` advertises the
# worker's own listen address (the coordinator dials *back* with the
# normal hello handshake); ``announce`` is the coordinator's reply for
# both joins and leaves, carrying the new membership epoch.


def join_envelope(host: str, port: int, role: str,
                  cores: int) -> Envelope:
    """A worker's request to join a running fleet."""
    if role not in (ROLE_MODEL, ROLE_DATA):
        raise TransportError(f"unknown worker role {role!r}")
    return Envelope(KIND_JOIN, header={
        "version": VERSION,
        "host": str(host),
        "port": int(port),
        "role": role,
        "cores": int(cores),
    })


def join_from_envelope(envelope: Envelope) -> tuple:
    """``(host, port, role, cores)`` from a join envelope, validated."""
    header = envelope.header
    try:
        host = str(header["host"])
        port = int(header["port"])
        role = header["role"]
        cores = int(header["cores"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed join envelope: {exc}") from exc
    if header.get("version") != VERSION:
        raise TransportError(
            f"join speaks protocol version {header.get('version')} "
            f"(speaking {VERSION})"
        )
    if role not in (ROLE_MODEL, ROLE_DATA):
        raise TransportError(f"unknown worker role {role!r}")
    if not 0 < port < 65536:
        raise TransportError(f"join advertises invalid port {port}")
    if cores < 1:
        raise TransportError(f"join advertises {cores} cores")
    return host, port, role, cores


def leave_envelope(server_id: int) -> Envelope:
    """A request to drain one member out of the fleet."""
    return Envelope(KIND_LEAVE, header={
        "version": VERSION,
        "server_id": int(server_id),
    })


def leave_from_envelope(envelope: Envelope) -> int:
    try:
        return int(envelope.header["server_id"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed leave envelope: {exc}") from exc


def announce_envelope(epoch: int, server_id: int, role: str,
                      status: str) -> Envelope:
    """The coordinator's membership reply (join ack / leave ack)."""
    return Envelope(KIND_ANNOUNCE, header={
        "epoch": int(epoch),
        "server_id": int(server_id),
        "role": role,
        "status": status,
    })


def announce_from_envelope(envelope: Envelope) -> dict:
    header = envelope.header
    try:
        return {
            "epoch": int(header["epoch"]),
            "server_id": int(header["server_id"]),
            "role": str(header["role"]),
            "status": str(header["status"]),
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(
            f"malformed announce envelope: {exc}"
        ) from exc
