"""Length-prefixed framed TCP transport for the distributed runtime.

One frame carries one :class:`Envelope` — a typed message with a small
JSON header and an opaque binary payload (ciphertext tensors use the
:mod:`repro.crypto.serialize` wire formats verbatim):

``magic(4) | version(1) | kind(1) | header_len(4) | payload_len(4)``
followed by ``header_len`` bytes of UTF-8 JSON and ``payload_len``
payload bytes.  All integers are big-endian.

Envelope kinds mirror the protocol's message types: ``hello`` /
``welcome`` (handshake), ``task`` / ``result`` / ``error`` (stage
work), ``heartbeat`` / ``heartbeat-ack`` (liveness), ``shutdown``,
and the membership trio ``join`` / ``leave`` / ``announce``
(docs/ELASTIC.md) spoken against the coordinator's membership
listener rather than a worker.

Both directions enforce a hard frame-size ceiling
(:attr:`~repro.config.RuntimeConfig.net_max_frame_bytes`): oversized
sends and oversized *declared* receive lengths fail with
:class:`~repro.errors.TransportError` before any allocation, so a
malicious or corrupted peer cannot exhaust memory.  Every malformed
frame — bad magic, unknown kind, truncation, invalid header JSON —
is a :class:`TransportError`, never silent garbage.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from ..config import DEFAULT_CONFIG
from ..errors import TransportError
from ..observability import OBS_OFF

#: Frame magic for transport envelopes (distinct from the ``PPST``
#: tensor magic so a stray tensor blob cannot be mistaken for a frame).
MAGIC = b"PPNT"
#: Transport protocol version (checked in the handshake).
VERSION = 1

_FRAME = struct.Struct(">4sBBII")

#: Envelope kinds and their wire bytes.
KIND_HELLO = "hello"
KIND_WELCOME = "welcome"
KIND_TASK = "task"
KIND_RESULT = "result"
KIND_ERROR = "error"
KIND_HEARTBEAT = "heartbeat"
KIND_HEARTBEAT_ACK = "heartbeat-ack"
KIND_SHUTDOWN = "shutdown"
KIND_JOIN = "join"
KIND_LEAVE = "leave"
KIND_ANNOUNCE = "announce"

_KIND_TO_BYTE = {
    KIND_HELLO: 1,
    KIND_WELCOME: 2,
    KIND_TASK: 3,
    KIND_RESULT: 4,
    KIND_ERROR: 5,
    KIND_HEARTBEAT: 6,
    KIND_HEARTBEAT_ACK: 7,
    KIND_SHUTDOWN: 8,
    KIND_JOIN: 9,
    KIND_LEAVE: 10,
    KIND_ANNOUNCE: 11,
}
_BYTE_TO_KIND = {byte: kind for kind, byte in _KIND_TO_BYTE.items()}


@dataclass
class Envelope:
    """One typed transport message.

    Attributes:
        kind: one of the ``KIND_*`` strings.
        header: small JSON-serializable metadata dict.
        payload: opaque bytes (tensor frames, result arrays, empty for
            control messages).
    """

    kind: str
    header: dict = field(default_factory=dict)
    payload: bytes = b""

    def encode(self, max_frame_bytes: int) -> bytes:
        kind_byte = _KIND_TO_BYTE.get(self.kind)
        if kind_byte is None:
            raise TransportError(f"unknown envelope kind {self.kind!r}")
        header_bytes = json.dumps(self.header,
                                  separators=(",", ":")).encode("utf-8")
        total = _FRAME.size + len(header_bytes) + len(self.payload)
        if total > max_frame_bytes:
            raise TransportError(
                f"{self.kind} frame of {total} bytes exceeds the "
                f"{max_frame_bytes}-byte frame limit"
            )
        return (_FRAME.pack(MAGIC, VERSION, kind_byte,
                            len(header_bytes), len(self.payload))
                + header_bytes + self.payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise TransportError(
                f"receive timed out with {remaining}/{count} bytes "
                "outstanding"
            ) from exc
        except OSError as exc:
            raise TransportError(f"socket receive failed: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"peer closed the connection with {remaining}/{count} "
                "bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_envelope(sock: socket.socket,
                  max_frame_bytes: int) -> Envelope:
    """Read one framed envelope from a socket (blocking)."""
    head = _recv_exact(sock, _FRAME.size)
    magic, version, kind_byte, header_len, payload_len = \
        _FRAME.unpack(head)
    if magic != MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise TransportError(
            f"unsupported transport version {version} (speaking "
            f"{VERSION})"
        )
    kind = _BYTE_TO_KIND.get(kind_byte)
    if kind is None:
        raise TransportError(f"unknown envelope kind byte {kind_byte}")
    total = _FRAME.size + header_len + payload_len
    if total > max_frame_bytes:
        raise TransportError(
            f"peer declared a {total}-byte frame, over the "
            f"{max_frame_bytes}-byte limit"
        )
    header_bytes = _recv_exact(sock, header_len)
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    try:
        header = json.loads(header_bytes.decode("utf-8")) \
            if header_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed envelope header: {exc}") from exc
    if not isinstance(header, dict):
        raise TransportError(
            f"envelope header must be a JSON object, got "
            f"{type(header).__name__}"
        )
    return Envelope(kind, header, payload)


class Connection:
    """A framed, mutex-guarded envelope stream over one TCP socket.

    Thread-safe for one sender + one receiver; :meth:`request` (send
    then receive) additionally serializes whole round trips so several
    threads can share a connection for strict request/response traffic.
    Byte counters (``net_bytes_sent`` / ``net_bytes_received``, labeled
    by peer) land in the observability registry when enabled.
    """

    def __init__(self, sock: socket.socket,
                 max_frame_bytes: int = DEFAULT_CONFIG.net_max_frame_bytes,
                 obs=None, peer: str = "peer"):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP socket (e.g. a unix socketpair in tests)
        self._sock = sock
        self._max_frame_bytes = max_frame_bytes
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._rpc_lock = threading.Lock()
        self._closed = False
        self.peer = peer
        self.obs = obs if obs is not None else OBS_OFF
        self._m_sent = self.obs.registry.counter(
            "net_bytes_sent", peer=peer
        )
        self._m_received = self.obs.registry.counter(
            "net_bytes_received", peer=peer
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, envelope: Envelope) -> None:
        blob = envelope.encode(self._max_frame_bytes)
        with self._send_lock:
            if self._closed:
                raise TransportError(
                    f"connection to {self.peer} is closed"
                )
            try:
                self._sock.sendall(blob)
            except OSError as exc:
                raise TransportError(
                    f"send to {self.peer} failed: {exc}"
                ) from exc
        self._m_sent.inc(len(blob))

    def recv(self, timeout: float | None = None) -> Envelope:
        with self._recv_lock:
            if self._closed:
                raise TransportError(
                    f"connection to {self.peer} is closed"
                )
            try:
                self._sock.settimeout(timeout)
            except OSError as exc:
                raise TransportError(
                    f"connection to {self.peer} is unusable: {exc}"
                ) from exc
            envelope = read_envelope(self._sock, self._max_frame_bytes)
        self._m_received.inc(
            _FRAME.size + len(envelope.payload)
            + len(json.dumps(envelope.header, separators=(",", ":")))
        )
        return envelope

    def request(self, envelope: Envelope,
                timeout: float | None = None) -> Envelope:
        """One strict round trip: send, then receive the reply."""
        with self._rpc_lock:
            self.send(envelope)
            return self.recv(timeout)

    def set_socket_timeout(self, timeout: float | None) -> None:
        """Set the socket-level timeout that bounds *sends* (receives
        set their own per-call timeout).  :func:`dial` leaves the
        connect timeout armed so the handshake cannot stall on a
        black-holed peer; callers clear it (``None``) once the
        handshake completes so large task frames are not spuriously
        bounded."""
        try:
            self._sock.settimeout(timeout)
        except OSError as exc:
            raise TransportError(
                f"connection to {self.peer} is unusable: {exc}"
            ) from exc

    def close(self) -> None:
        """Close the socket; any thread blocked in recv wakes with a
        :class:`TransportError`."""
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def dial(host: str, port: int,
         connect_timeout: float = DEFAULT_CONFIG.net_connect_timeout,
         max_frame_bytes: int = DEFAULT_CONFIG.net_max_frame_bytes,
         obs=None, peer: str | None = None,
         factory=None) -> Connection:
    """Connect to a listening peer and wrap the socket.

    The connect timeout stays armed on the socket after the connect
    succeeds, so the *handshake* that follows is also deadlined: a
    listening-but-silent peer (accepted by the kernel backlog, never
    served) fails the hello/welcome round trip with
    :class:`TransportError` instead of stalling the dialer forever.
    Call :meth:`Connection.set_socket_timeout` with ``None`` once the
    handshake completes.

    Args:
        factory: optional ``factory(sock, max_frame_bytes, obs, peer)
            -> Connection`` override — the chaos layer
            (:mod:`repro.net.chaos`) injects its wrapper here.
    """
    try:
        sock = socket.create_connection((host, port),
                                        timeout=connect_timeout)
    except OSError as exc:
        raise TransportError(
            f"could not connect to {host}:{port}: {exc}"
        ) from exc
    sock.settimeout(connect_timeout)
    build = factory if factory is not None else Connection
    return build(sock, max_frame_bytes, obs=obs,
                 peer=peer or f"{host}:{port}")


def wait_for_port(host: str, port: int, deadline: float) -> None:
    """Poll until something accepts on ``host:port`` (test/CLI helper)."""
    end = time.monotonic() + deadline
    last: Exception | None = None
    while time.monotonic() < end:
        try:
            socket.create_connection((host, port), timeout=0.2).close()
            return
        except OSError as exc:
            last = exc
            time.sleep(0.05)
    raise TransportError(
        f"nothing listening on {host}:{port} after {deadline}s: {last}"
    )
