"""Networked distributed runtime: TCP transport, workers, coordinator.

The in-process thread pipeline and this package share one execution
path — the coordinator runs the very same
:class:`~repro.stream.pipeline.Pipeline` admission / retry /
dead-letter machinery over remote stage proxies, so results are
bit-identical between the two runtimes (see ``docs/DISTRIBUTED.md``).

Hardening layers (see ``docs/SOAK.md``): :mod:`repro.net.chaos`
injects deterministic seeded transport faults, and
:mod:`repro.net.reconnect` provides the circuit breaker behind the
coordinator's reconnect-with-backoff recovery path.
"""

from .chaos import (
    ChaosConnection,
    ChaosInjector,
    ChaosPlan,
    ChaosScript,
)
from .coordinator import (
    Coordinator,
    RemoteChannel,
    RemoteStageExecutor,
    WorkerHandle,
)
from .reconnect import CircuitBreaker
from .transport import (
    Connection,
    Envelope,
    dial,
    read_envelope,
    wait_for_port,
)
from .wire import ROLE_DATA, ROLE_MODEL, build_worker_spec
from .worker import WorkerServer

__all__ = [
    "ChaosConnection",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosScript",
    "CircuitBreaker",
    "Connection",
    "Coordinator",
    "Envelope",
    "ROLE_DATA",
    "ROLE_MODEL",
    "RemoteChannel",
    "RemoteStageExecutor",
    "WorkerHandle",
    "WorkerServer",
    "build_worker_spec",
    "dial",
    "read_envelope",
    "wait_for_port",
]
