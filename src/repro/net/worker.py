"""The remote stage worker: one process serving stage work over TCP.

A :class:`WorkerServer` listens on a host:port (``python -m repro
worker --listen HOST:PORT``; port 0 picks a free one), accepts framed
connections from a coordinator, and executes linear or non-linear
stage work with the *existing* stream executors — the handshake spec
(:func:`repro.net.wire.build_worker_spec`) carries everything needed
to rebuild them in a fresh process.

Connection protocol (strict request/response per connection):

1. coordinator sends ``hello`` with the role spec; worker pins its
   role on first contact, builds session state, replies ``welcome``;
2. then any mix of ``task`` (-> ``result`` / ``error``),
   ``heartbeat`` (-> ``heartbeat-ack``), and ``shutdown``.

Role pinning enforces the paper's privacy separation at the process
boundary: a worker that ever accepted model-provider state refuses a
data-role handshake (and vice versa), so no single OS process holds
both the model parameters and the private key.

Obfuscation across processes: linear executors get *stateless*
obfuscators (permutations rederived from ``(master_seed, round_id)``),
with round ids namespaced per stage (``first_round=stage_index,
round_stride=num_stages``), so any same-seeded worker can invert any
round issued anywhere — including re-issued rounds on the retry /
failover path, where inversion must be idempotent.
"""

from __future__ import annotations

import hashlib
import json
import random
import socket
import threading

from ..config import DEFAULT_CONFIG
from ..crypto.engine import PaillierEngine
from ..crypto.serialize import (
    private_key_from_json,
    public_key_from_json,
)
from ..errors import (
    ClusterMembershipError,
    HandshakeError,
    PoisonedRequestError,
    ProtocolError,
    TransientStageError,
    TransportError,
)
from ..obfuscation.obfuscator import Obfuscator
from ..observability import OBS_OFF, Observability
from ..stream.executors import (
    LinearStageExecutor,
    NonLinearStageExecutor,
)
from .transport import (
    KIND_ANNOUNCE,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HEARTBEAT_ACK,
    KIND_HELLO,
    KIND_SHUTDOWN,
    KIND_TASK,
    KIND_WELCOME,
    VERSION,
    Connection,
    Envelope,
    dial,
)
from .wire import (
    CLASS_PERMANENT,
    CLASS_TRANSIENT,
    CLASS_UNCLASSIFIED,
    ROLE_DATA,
    ROLE_MODEL,
    affine_from_wire,
    announce_from_envelope,
    config_from_wire,
    error_envelope,
    item_from_task,
    join_envelope,
    leave_envelope,
    plan_from_wire,
    result_envelope,
)

#: Seed salts matching the in-process parties (roles.py / executors.py)
#: so a worker's crypto state lines up with the single-process runtime.
_OBFUSCATOR_SALT = 0x0BF5
_EXECUTOR_RNG_SALT = 0x57
_DATA_ENGINE_SALT = 0x4450E


def _spec_digest(spec: dict) -> str:
    """Canonical digest of one handshake spec.

    A tenant session is pinned to this digest, not just its keypair:
    a re-handshake whose config or stage geometry changed (gateway
    reconfigured/redeployed against a live fleet) must rebuild the
    session's executors rather than silently compute with stale
    plans.  The spec is JSON-safe by construction (it crossed the
    wire as an envelope header), so sorted-key JSON is canonical.
    """
    return hashlib.sha256(
        json.dumps(spec, sort_keys=True,
                   separators=(",", ":")).encode("utf-8")
    ).hexdigest()


class _Session:
    """Per-tenant stage state rebuilt from one handshake spec.

    One worker process hosts any number of sessions side by side —
    keyed by tenant name, each with its own keypair and executors —
    but only ever of **one role** (the server pins the role, not the
    session)."""

    def __init__(self, spec: dict, obs: Observability,
                 worker_label: str = ""):
        if spec.get("version") != VERSION:
            raise HandshakeError(
                f"coordinator speaks version {spec.get('version')}, "
                f"worker speaks {VERSION}"
            )
        role = spec.get("role")
        if role not in (ROLE_MODEL, ROLE_DATA):
            raise HandshakeError(f"unknown worker role {role!r}")
        self.role = role
        self.tenant = str(spec.get("tenant", "default"))
        self.spec = spec
        self.spec_digest = _spec_digest(spec)
        self.obs = obs
        # Engines built for this session label their power-cache gauge
        # so one shared registry (the serving gateway's) can tell each
        # worker's per-tenant caches apart — and the tenancy tests can
        # assert no fixed-base table ever crosses a tenant boundary.
        self._engine_labels = {"worker": worker_label,
                               "tenant": self.tenant}
        self.m_tasks = obs.registry.counter("net_worker_tasks",
                                            tenant=self.tenant)
        try:
            self.config = config_from_wire(spec["config"])
            self.public_key = public_key_from_json(spec["public_key"])
            self.num_stages = int(spec["num_stages"])
            self.stages = spec["stages"]
        except KeyError as exc:
            raise HandshakeError(f"spec missing {exc}") from exc
        self._executors: dict[int, object] = {}
        self._lock = threading.Lock()
        self._rng = random.Random(self.config.seed ^ _EXECUTOR_RNG_SALT)
        self._engine: PaillierEngine | None = None
        if role == ROLE_DATA:
            try:
                self.private_key = private_key_from_json(
                    spec["private_key"]
                )
                self.value_decimals = int(spec["value_decimals"])
            except KeyError as exc:
                raise HandshakeError(f"spec missing {exc}") from exc
            if self.private_key.public_key.n != self.public_key.n:
                raise HandshakeError(
                    "private key does not match the session public key"
                )
            # The key holder's engine: CRT blinding, shared across the
            # worker's non-linear stages like DataProvider.engine is.
            self._engine = PaillierEngine(
                self.public_key,
                private_key=self.private_key,
                workers=self.config.workers,
                pool_size=self.config.blinding_pool_size,
                window_bits=self.config.power_window_bits,
                seed=self.config.seed ^ _DATA_ENGINE_SALT,
                obs=obs,
                dispatch_min_items=self.config.dispatch_min_items,
                backend=self.config.bigint_backend,
                power_cache_entries=self.config.power_cache_entries,
                power_cache_labels=self._engine_labels,
            )
            self._engine.prefill()

    def _stage_spec(self, stage_index: int) -> dict:
        stage = self.stages.get(str(stage_index))
        if stage is None:
            raise ProtocolError(
                f"stage {stage_index} is not in the handshake spec"
            )
        expected = "linear" if self.role == ROLE_MODEL else "nonlinear"
        if stage.get("kind") != expected:
            raise ProtocolError(
                f"a {self.role} worker cannot run {stage.get('kind')} "
                f"stage {stage_index} (privacy separation)"
            )
        return stage

    def executor_for(self, stage_index: int):
        with self._lock:
            executor = self._executors.get(stage_index)
            if executor is not None:
                return executor
            stage = self._stage_spec(stage_index)
            threads = int(stage.get("threads", 1))
            if self.role == ROLE_MODEL:
                wire_plans = stage.get("matvec_plans")
                executor = LinearStageExecutor(
                    stage_index,
                    [affine_from_wire(a) for a in stage["affines"]],
                    Obfuscator(
                        self.config.seed ^ _OBFUSCATOR_SALT,
                        first_round=stage_index,
                        round_stride=self.num_stages,
                        stateless=True,
                    ),
                    threads,
                    bool(self.spec.get("use_tensor_partitioning",
                                       True)),
                    self._rng,
                    final=stage_index == self.num_stages - 2,
                    config=self.config,
                    obs=self.obs,
                    # Reconstructed sparse plans route this worker's
                    # compressed layers through the same kernels the
                    # in-process runtime uses (bit-identical results).
                    plans=(None if wire_plans is None else [
                        None if p is None else plan_from_wire(p)
                        for p in wire_plans
                    ]),
                    engine_labels=self._engine_labels,
                )
            else:
                executor = NonLinearStageExecutor(
                    stage_index,
                    stage["activations"],
                    self.private_key,
                    self.value_decimals,
                    threads,
                    self._rng,
                    final=stage_index == self.num_stages - 1,
                    engine=self._engine,
                )
            self._executors[stage_index] = executor
            return executor

    def shutdown(self) -> None:
        with self._lock:
            for executor in self._executors.values():
                shutdown = getattr(executor, "shutdown", None)
                if shutdown is not None:
                    shutdown()
            self._executors.clear()


class WorkerServer:
    """Serves stage work over TCP; in-process (tests) or standalone.

    Args:
        host / port: listen address; port 0 binds an ephemeral port
            (read the real one from :attr:`address` after
            :meth:`start`).
        max_frame_bytes: transport frame ceiling, enforced both ways.
        obs: observability sinks; worker-side stage spans reuse the
            ``trace_id`` / ``trace_parent`` propagated in each task
            envelope, so a request's trace crosses the wire intact.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_frame_bytes: int =
                 DEFAULT_CONFIG.net_max_frame_bytes,
                 obs: Observability | None = None):
        self._max_frame_bytes = max_frame_bytes
        self.obs = obs if obs is not None else OBS_OFF
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        #: Per-tenant sessions; the *role* is pinned server-wide (one
        #: process never holds both model parameters and a private
        #: key), the handshake *spec digest* is pinned per tenant: an
        #: identical re-handshake reuses the session, the same keypair
        #: with a changed spec rebuilds it, a different keypair is
        #: refused.
        self._sessions: dict[str, _Session] = {}
        self._role: str | None = None
        self._session_lock = threading.Lock()
        self._connections: list[Connection] = []
        self._connections_lock = threading.Lock()
        self._stopped = threading.Event()
        self._accept_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-worker-{self.address[1]}", daemon=True,
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI path)."""
        self._accept_loop()

    def stop(self, abort: bool = False) -> None:
        """Stop serving.

        Args:
            abort: also hard-close every open connection — simulates a
                crashed worker mid-task (tests kill workers this way;
                the coordinator sees broken frames, not clean EOFs).
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        try:
            # close() alone does not wake a thread blocked in accept()
            # on Linux; shutdown() makes it return immediately.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if abort:
            with self._connections_lock:
                connections = list(self._connections)
            for connection in connections:
                connection.close()
        with self._session_lock:
            for session in self._sessions.values():
                session.shutdown()
            self._sessions.clear()
        thread = self._accept_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return not self._stopped.is_set()

    # -- elastic membership (docs/ELASTIC.md) --------------------------

    def _membership_roundtrip(self, host: str, port: int, envelope,
                              timeout: float | None) -> dict:
        """One envelope round trip against a membership listener."""
        connection = dial(
            host, port,
            max_frame_bytes=self._max_frame_bytes,
            obs=self.obs, peer="membership",
        )
        try:
            reply = connection.request(envelope, timeout=timeout)
        finally:
            connection.close()
        if reply.kind == KIND_ERROR:
            raise ClusterMembershipError(
                f"membership request refused: "
                f"{reply.header.get('message')}"
            )
        if reply.kind != KIND_ANNOUNCE:
            raise TransportError(
                f"expected an announce envelope, got {reply.kind}"
            )
        return announce_from_envelope(reply)

    def join_fleet(self, host: str, port: int, role: str,
                   cores: int = 2,
                   timeout: float | None = None) -> dict:
        """Register this (already started) worker with a running
        elastic coordinator's membership listener.

        Advertises this server's own listen address; the coordinator
        dials back with the normal hello handshake — which is why the
        accept loop must already be running (:meth:`start` or
        :meth:`serve_forever`).

        Returns the announce document:
        ``{"epoch", "server_id", "role", "status"}``.
        """
        if self._stopped.is_set():
            raise ClusterMembershipError(
                "cannot join a fleet after stop()"
            )
        return self._membership_roundtrip(
            host, port,
            join_envelope(self.address[0], self.address[1], role,
                          cores),
            timeout if timeout is not None
            else DEFAULT_CONFIG.cluster_join_timeout,
        )

    def leave_fleet(self, host: str, port: int, server_id: int,
                    timeout: float | None = None) -> dict:
        """Ask the coordinator to drain this worker's slot out of the
        fleet (graceful departure; the process keeps serving whatever
        is still in flight until the drain quiesces it)."""
        return self._membership_roundtrip(
            host, port, leave_envelope(server_id),
            timeout if timeout is not None
            else DEFAULT_CONFIG.cluster_join_timeout,
        )

    # -- serving -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            connection = Connection(
                sock, self._max_frame_bytes, obs=self.obs,
                peer="coordinator",
            )
            with self._connections_lock:
                self._connections.append(connection)
            threading.Thread(
                target=self._serve_connection, args=(connection,),
                name=f"repro-worker-conn-{self.address[1]}", daemon=True,
            ).start()

    def _handshake(self, connection: Connection) -> _Session | None:
        envelope = connection.recv(timeout=60.0)
        if envelope.kind != KIND_HELLO:
            raise HandshakeError(
                f"expected hello, got {envelope.kind}"
            )
        spec = envelope.header
        tenant = str(spec.get("tenant", "default"))
        with self._session_lock:
            if self._role is not None \
                    and self._role != spec.get("role"):
                raise HandshakeError(
                    f"worker is pinned to role {self._role!r}; "
                    f"refusing a {spec.get('role')!r} handshake "
                    "(privacy separation)"
                )
            session = self._sessions.get(tenant)
            if session is None:
                session = _Session(spec, self.obs,
                                   worker_label=str(self.address[1]))
                self._sessions[tenant] = session
                self._role = session.role
            elif session.spec_digest != _spec_digest(spec):
                try:
                    offered_n = public_key_from_json(
                        spec["public_key"]
                    ).n
                except (KeyError, TypeError, ValueError) as exc:
                    raise HandshakeError(
                        f"malformed public key in re-handshake: {exc}"
                    ) from exc
                if session.public_key.n != offered_n:
                    raise HandshakeError(
                        f"tenant {tenant!r} is pinned to a different "
                        "keypair on this worker; refusing the "
                        "handshake (tenant isolation)"
                    )
                # Same tenant, same keypair, different spec: the
                # coordinator was reconfigured (config knobs, stage
                # geometry).  Reusing the old executors would compute
                # with stale plans, so rebuild the session instead.
                session.shutdown()
                session = _Session(spec, self.obs,
                                   worker_label=str(self.address[1]))
                self._sessions[tenant] = session
                self.obs.registry.counter(
                    "net_worker_session_rebuilt", tenant=tenant
                ).inc()
        connection.send(Envelope(KIND_WELCOME, header={
            "version": VERSION,
            "role": session.role,
            "tenant": session.tenant,
            "port": self.address[1],
        }))
        return session

    def _serve_connection(self, connection: Connection) -> None:
        try:
            try:
                session = self._handshake(connection)
            except HandshakeError as exc:
                connection.send(error_envelope(
                    -1, CLASS_PERMANENT, f"handshake failed: {exc}"
                ))
                return
            while not self._stopped.is_set():
                envelope = connection.recv(timeout=None)
                if envelope.kind == KIND_HEARTBEAT:
                    connection.send(self._heartbeat_ack(envelope))
                elif envelope.kind == KIND_TASK:
                    connection.send(self._run_task(session, envelope))
                elif envelope.kind == KIND_SHUTDOWN:
                    if envelope.header.get("scope") == "server":
                        self.stop()
                    return
                else:
                    connection.send(error_envelope(
                        -1, CLASS_PERMANENT,
                        f"unexpected {envelope.kind} envelope",
                    ))
        except TransportError:
            return  # peer went away; nothing to clean up per-connection
        finally:
            connection.close()
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _heartbeat_ack(self, envelope: Envelope) -> Envelope:
        """Build the ack for one heartbeat.  A seam: liveness tests
        subclass this to stall a single worker's probe path without
        touching its task path."""
        return Envelope(
            KIND_HEARTBEAT_ACK,
            header={"nonce": envelope.header.get("nonce")},
        )

    def _run_task(self, session: _Session,
                  envelope: Envelope) -> Envelope:
        request_id = int(envelope.header.get("request_id", -1))
        try:
            item = item_from_task(envelope, session.public_key)
            stage_index = int(envelope.header["stage_index"])
            executor = session.executor_for(stage_index)
            with self.obs.tracer.span(
                f"remote-stage-{stage_index}",
                trace_id=item.trace_id,
                parent_id=item.trace_parent,
                request_id=item.request_id,
                stage=stage_index,
            ):
                item = executor.process(item)
            session.m_tasks.inc()
            return result_envelope(item)
        except Exception as exc:  # noqa: BLE001 - classified for the wire
            if isinstance(exc, TransientStageError):
                classification = CLASS_TRANSIENT
            elif isinstance(exc, (PoisonedRequestError, ProtocolError)):
                classification = CLASS_PERMANENT
            else:
                classification = CLASS_UNCLASSIFIED
            return error_envelope(request_id, classification, repr(exc))
