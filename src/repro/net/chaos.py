"""Seeded network chaos injection for the distributed runtime.

The stream runtime's fault model (:mod:`repro.stream.faults`) scripts
failures at the *stage* boundary; this module pushes the same
discipline down to the *transport*: a :class:`ChaosConnection` wraps a
framed TCP connection and, per frame, may

* **delay** the frame before it hits the wire,
* **drop the connection mid-frame** — half the encoded bytes are sent,
  then the socket is hard-closed, so the peer sees a truncated frame
  and the sender a :class:`~repro.errors.TransportError` (the shape of
  a worker dying mid-send or a partition cutting a stream),
* **duplicate a heartbeat** — the peer acks twice, and the stale ack
  arrives out-of-order on the next control-channel round trip,
* **slow a read** — a stall injected in front of the receive path.

Decisions are drawn from a **deterministic seeded plan**: a
:class:`ChaosPlan` (built from the ``chaos_*`` knobs on
:class:`~repro.config.RuntimeConfig`) hands each connection a
:class:`ChaosScript` seeded by ``(plan seed, connection index)``, so
the i-th connection's fault schedule replays exactly under the same
seed.  Handshake frames (``hello`` / ``welcome``) are always exempt —
chaos must not make a run unable to *start*, only unable to stay
comfortable.

The coordinator wires the plan in as the :func:`~repro.net.transport.
dial` factory, so every coordinator-side connection (control and task)
is chaos-wrapped while workers stay untouched; recovery is then
exercised exactly where the paper's deployment would need it, at the
driving side of the pipeline.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..errors import TransportError
from .transport import (
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_WELCOME,
    Connection,
    Envelope,
)

#: Frame kinds never touched by chaos (connection establishment).
EXEMPT_KINDS = frozenset({KIND_HELLO, KIND_WELCOME})


@dataclass(frozen=True)
class ChaosPlan:
    """Rates and magnitudes for one chaos campaign.

    Attributes mirror the ``chaos_*`` knobs on
    :class:`~repro.config.RuntimeConfig`; see there for semantics.
    A plan with every rate at 0 is falsy (no chaos).
    """

    seed: int = 0
    delay_rate: float = 0.0
    delay_seconds: float = 0.02
    drop_rate: float = 0.0
    dup_heartbeat_rate: float = 0.0
    slow_read_rate: float = 0.0
    slow_read_seconds: float = 0.02

    def __post_init__(self) -> None:
        for knob in ("delay_rate", "drop_rate", "dup_heartbeat_rate",
                     "slow_read_rate"):
            if not 0.0 <= getattr(self, knob) <= 1.0:
                raise ValueError(
                    f"chaos {knob} must be in [0, 1], got "
                    f"{getattr(self, knob)}"
                )
        for knob in ("delay_seconds", "slow_read_seconds"):
            if getattr(self, knob) < 0:
                raise ValueError(
                    f"chaos {knob} must be non-negative, got "
                    f"{getattr(self, knob)}"
                )

    def __bool__(self) -> bool:
        return (self.delay_rate > 0.0 or self.drop_rate > 0.0
                or self.dup_heartbeat_rate > 0.0
                or self.slow_read_rate > 0.0)

    @classmethod
    def from_config(cls, config) -> "ChaosPlan | None":
        """The plan a config's ``chaos_*`` knobs describe, or None
        when every rate is zero.  The plan seed folds the master seed
        with ``chaos_seed`` so chaos schedules can be varied without
        perturbing the crypto RNG streams."""
        plan = cls(
            seed=config.seed ^ (config.chaos_seed * 0x9E3779B1),
            delay_rate=config.chaos_delay_rate,
            delay_seconds=config.chaos_delay_seconds,
            drop_rate=config.chaos_drop_rate,
            dup_heartbeat_rate=config.chaos_dup_heartbeat_rate,
            slow_read_rate=config.chaos_slow_read_rate,
            slow_read_seconds=config.chaos_slow_read_seconds,
        )
        return plan if plan else None


class ChaosStats:
    """Thread-safe counters of what chaos actually injected."""

    __slots__ = ("_lock", "delays", "drops", "dup_heartbeats",
                 "slow_reads", "connections")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.delays = 0
        self.drops = 0
        self.dup_heartbeats = 0
        self.slow_reads = 0
        self.connections = 0

    def bump(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)

    @property
    def total(self) -> int:
        return (self.delays + self.drops + self.dup_heartbeats
                + self.slow_reads)

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "delays": self.delays,
            "drops": self.drops,
            "dup_heartbeats": self.dup_heartbeats,
            "slow_reads": self.slow_reads,
        }


class ChaosScript:
    """One connection's deterministic decision stream.

    Draw order is fixed (drop, delay, dup per send; slow per recv) so
    the same seed yields the same schedule regardless of frame
    payloads.  Draws are serialized by a lock because a connection's
    sender and receiver may be different threads.
    """

    def __init__(self, plan: ChaosPlan, index: int,
                 stats: ChaosStats):
        self.plan = plan
        self.index = index
        self.stats = stats
        self._rng = random.Random(plan.seed * 1_000_003 + index)
        self._lock = threading.Lock()

    def send_verdict(self, kind: str) -> tuple[bool, bool, bool]:
        """(drop, delay, duplicate) for one outbound frame."""
        if kind in EXEMPT_KINDS:
            return (False, False, False)
        with self._lock:
            drop = self._rng.random() < self.plan.drop_rate
            delay = self._rng.random() < self.plan.delay_rate
            dup = (kind == KIND_HEARTBEAT
                   and self._rng.random()
                   < self.plan.dup_heartbeat_rate)
        return (drop, delay, dup)

    def recv_verdict(self) -> bool:
        """Whether to stall before one receive."""
        with self._lock:
            return self._rng.random() < self.plan.slow_read_rate


class ChaosInjector:
    """Allocates per-connection scripts and acts as a dial factory.

    Pass :meth:`connection_factory` as the ``factory`` argument of
    :func:`~repro.net.transport.dial`; every dialed connection then
    gets the next deterministic :class:`ChaosScript`.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.stats = ChaosStats()
        self._lock = threading.Lock()
        self._next_index = 0

    def script(self) -> ChaosScript:
        with self._lock:
            index = self._next_index
            self._next_index += 1
        self.stats.bump("connections")
        return ChaosScript(self.plan, index, self.stats)

    def connection_factory(self, sock, max_frame_bytes,
                           obs=None, peer: str = "peer"
                           ) -> "ChaosConnection":
        return ChaosConnection(sock, max_frame_bytes, obs=obs,
                               peer=peer, script=self.script())


class ChaosConnection(Connection):
    """A framed connection with scripted transport chaos applied.

    Same surface as :class:`~repro.net.transport.Connection`; the
    extra failure modes all surface as the :class:`TransportError` /
    closed-connection outcomes real networks produce, so the
    reconnect / retry machinery above sees nothing chaos-specific.
    """

    def __init__(self, sock, max_frame_bytes, obs=None,
                 peer: str = "peer", script: ChaosScript | None = None):
        super().__init__(sock, max_frame_bytes, obs=obs, peer=peer)
        if script is None:
            raise ValueError("ChaosConnection needs a ChaosScript")
        self._script = script

    def send(self, envelope: Envelope) -> None:
        drop, delay, dup = self._script.send_verdict(envelope.kind)
        if drop:
            self._drop_mid_frame(envelope)
        if delay:
            self._script.stats.bump("delays")
            time.sleep(self._script.plan.delay_seconds)
        if dup:
            self._script.stats.bump("dup_heartbeats")
            super().send(envelope)
        super().send(envelope)

    def recv(self, timeout: float | None = None) -> Envelope:
        if self._script.recv_verdict():
            self._script.stats.bump("slow_reads")
            time.sleep(self._script.plan.slow_read_seconds)
        return super().recv(timeout)

    def _drop_mid_frame(self, envelope: Envelope) -> None:
        """Send a truncated frame, then hard-close the connection."""
        self._script.stats.bump("drops")
        blob = envelope.encode(self._max_frame_bytes)
        cut = max(1, len(blob) // 2)
        with self._send_lock:
            if not self._closed:
                try:
                    self._sock.sendall(blob[:cut])
                except OSError:
                    pass  # already half-dead; the close below settles it
        self.close()
        raise TransportError(
            f"chaos: dropped connection to {self.peer} mid-"
            f"{envelope.kind}-frame (script {self._script.index})"
        )
