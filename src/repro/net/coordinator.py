"""The cluster coordinator: planner assignments onto live TCP workers.

A :class:`Coordinator` takes the same (model provider, data provider,
plan) triple as the in-process :class:`~repro.stream.pipeline.Pipeline`
plus one worker address per cluster server, handshakes each worker into
its server's role, and then runs streams through **the existing
pipeline machinery**: `run_stream` admission, `StageWorker` retry
loops, the supervisor, and the dead-letter path are reused verbatim —
only the per-stage executors are swapped for
:class:`RemoteStageExecutor` proxies that ship each item over a
:class:`RemoteChannel` and await the result.

Failure handling composes with the existing retry policy instead of
duplicating it: any transport failure (broken frame, closed socket,
timed-out round trip, no live worker) surfaces as
:class:`~repro.errors.TransientStageError`, so the stage's retry loop
backs off and re-runs the item — by then against a failover worker of
the same role, because the first failure marked the original worker
dead.  One heartbeat probe thread *per worker* independently detects
silent worker death (missed
:attr:`~repro.config.RuntimeConfig.net_heartbeat_timeout`); per-worker
probes keep detection latency independent of fleet size — one stalled
worker cannot delay its neighbours' liveness checks.  A failure
force-closes that worker's task connections, which wakes any stage
thread blocked on it into the same transient-retry path
(drain-then-reassign: those in-flight items re-run against a failover
worker).

Transient partitions *heal without consuming the restart budget*: a
failure report spawns a background recovery loop that re-dials the
same address with exponential backoff
(:attr:`~repro.config.RuntimeConfig.net_reconnect_attempts` tries,
jitter drawn from a seeded RNG so schedules replay), gated by a
per-worker :class:`~repro.net.reconnect.CircuitBreaker`.  Only when
reconnection is exhausted does the respawn hook run — and only within
``worker_restart_budget``.  Exhausted request retries dead-letter the
request; the stream keeps serving everything else.

When the config's ``chaos_*`` knobs are set, every coordinator-side
connection is wrapped by :class:`~repro.net.chaos.ChaosConnection`, so
the reconnect/retry machinery above is exercised under deterministic
injected faults.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Sequence

import numpy as np

from ..errors import (
    HandshakeError,
    TransientStageError,
    TransportError,
)
from ..nn.layers import LayerKind
from ..observability import OBS_OFF, Observability
from ..planner.plan import Plan
from ..protocol.roles import DataProvider, ModelProvider
from ..stream.pipeline import Pipeline, StreamStats
from ..stream.retry import RetryPolicy
from .chaos import ChaosInjector, ChaosPlan
from .reconnect import CircuitBreaker
from .transport import (
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HEARTBEAT_ACK,
    KIND_HELLO,
    KIND_RESULT,
    KIND_SHUTDOWN,
    KIND_WELCOME,
    Connection,
    Envelope,
    dial,
)
from .wire import (
    ROLE_DATA,
    ROLE_MODEL,
    apply_result,
    build_worker_spec,
    raise_remote_error,
    task_envelope,
)

#: Signature of the optional worker-respawn hook:
#: ``respawn(server_id, role) -> (host, port)`` of a fresh worker.
RespawnFn = Callable[[int, str], tuple[str, int]]

#: Seed salts separating the coordinator's deterministic RNG streams
#: (reconnect backoff jitter, default retry-policy jitter) from the
#: crypto streams derived from the same master seed.
_RECONNECT_SALT = 0xBAC0FF
_RETRY_JITTER_SALT = 0x9177E4


class WorkerHandle:
    """One cluster-server slot bound to a live (or dead) worker."""

    def __init__(self, server_id: int, role: str,
                 address: tuple[str, int]):
        self.server_id = server_id
        self.role = role
        self.address = address
        self.alive = False
        #: Set while an elastic coordinator drains this member out of
        #: the fleet (docs/ELASTIC.md): the slot takes no failover
        #: traffic and its failures spawn no recovery loop.
        self.draining = False
        self.generation = 0
        self.restarts = 0
        self.reconnects = 0
        self.heartbeats_ok = 0
        self.breaker: CircuitBreaker | None = None
        self.control: Connection | None = None
        self._task_conns: List[Connection] = []
        self._lock = threading.Lock()

    def register(self, connection: Connection) -> None:
        with self._lock:
            self._task_conns.append(connection)

    def drain_connections(self) -> List[Connection]:
        with self._lock:
            connections = list(self._task_conns)
            self._task_conns.clear()
        return connections

    def describe(self) -> str:
        state = "up" if self.alive else "down"
        return (f"server {self.server_id} ({self.role}) @ "
                f"{self.address[0]}:{self.address[1]} [{state}, "
                f"gen {self.generation}, {self.restarts} restart(s), "
                f"{self.reconnects} reconnect(s)]")


class RemoteChannel:
    """The wire conduit for one (stage, worker-generation) pair.

    The network twin of the in-process bounded channel: ``submit``
    plays put-then-get as one strict round trip on a dedicated task
    connection, so the thread pipeline's stage workers drive remote
    stages through the same blocking call pattern they use locally.
    Lazily dialed; a dead connection stays dead (the executor builds a
    fresh channel for the next worker generation).
    """

    def __init__(self, coordinator: "Coordinator",
                 handle: WorkerHandle, stage_index: int):
        self._coordinator = coordinator
        self._handle = handle
        self._stage_index = stage_index
        self._connection: Connection | None = None
        self._lock = threading.Lock()

    def _ensure_connection(self) -> Connection:
        with self._lock:
            if self._connection is not None \
                    and not self._connection.closed:
                return self._connection
            self._connection = self._coordinator._open_session(
                self._handle,
                peer=f"worker-{self._handle.server_id}",
            )
            self._handle.register(self._connection)
            return self._connection

    def submit(self, item, timeout: float) -> object:
        """One stage-task round trip; returns the processed item."""
        connection = self._ensure_connection()
        reply = connection.request(
            task_envelope(item, self._stage_index), timeout=timeout
        )
        if reply.kind == KIND_ERROR:
            raise_remote_error(reply)
        if reply.kind != KIND_RESULT:
            raise TransportError(
                f"expected a result envelope, got {reply.kind}"
            )
        return apply_result(
            reply, item, self._coordinator.data_provider.public_key
        )

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None


class RemoteStageExecutor:
    """Stage-executor proxy: ships items to a worker of the right role.

    Drop-in for the in-process executors (same ``process(item)`` /
    ``shutdown()`` surface), handed to ``Pipeline(executors=...)`` so
    both runtimes share one code path.  Worker selection prefers the
    plan's assigned server and fails over to any live worker of the
    same role; with none live it raises
    :class:`~repro.errors.TransientStageError` so the retry policy
    keeps the request alive across a worker respawn.
    """

    def __init__(self, coordinator: "Coordinator", stage_index: int,
                 role: str):
        self.coordinator = coordinator
        self.stage_index = stage_index
        self.role = role
        self._channels: dict[tuple[int, int], RemoteChannel] = {}
        self._lock = threading.Lock()
        self._m_roundtrip = coordinator.obs.registry.histogram(
            "net_stage_roundtrip_seconds", stage=str(stage_index)
        )
        self._m_reassigned = coordinator.obs.registry.counter(
            "net_inflight_reassigned", stage=str(stage_index)
        )
        # Per-worker twins of the roundtrip histogram, so backlog and
        # latency attribute to a specific member (the unlabeled-by-
        # worker aggregate above stays for dashboard compatibility).
        self._worker_roundtrips: dict[str, object] = {}
        #: Server id of the worker that served the most recent item;
        #: the stream's :class:`~repro.stream.worker.StageWorker`
        #: mirrors it onto a worker-labeled queue-depth gauge.
        self.worker_label: str | None = None

    def _roundtrip_for(self, label: str):
        hist = self._worker_roundtrips.get(label)
        if hist is None:
            hist = self.coordinator.obs.registry.histogram(
                "net_stage_roundtrip_seconds",
                stage=str(self.stage_index), worker=label,
            )
            self._worker_roundtrips[label] = hist
        return hist

    def _channel_for(self, handle: WorkerHandle) -> RemoteChannel:
        key = (handle.server_id, handle.generation)
        with self._lock:
            channel = self._channels.get(key)
            if channel is None:
                channel = RemoteChannel(self.coordinator, handle,
                                        self.stage_index)
                self._channels[key] = channel
            return channel

    def process(self, item):
        handle = self.coordinator.pick_worker(self.role,
                                              self.stage_index)
        generation = handle.generation
        label = str(handle.server_id)
        self.worker_label = label
        channel = self._channel_for(handle)
        start = time.perf_counter()
        try:
            item = channel.submit(
                item, self.coordinator.config.net_request_timeout
            )
        except TransportError as exc:
            self.coordinator.report_failure(handle, generation)
            self._m_reassigned.inc()
            raise TransientStageError(
                f"stage {self.stage_index} round trip to "
                f"{handle.describe()} failed: {exc}"
            ) from exc
        elapsed = time.perf_counter() - start
        self._m_roundtrip.observe(elapsed)
        self._roundtrip_for(label).observe(elapsed)
        return item

    def shutdown(self) -> None:
        with self._lock:
            for channel in self._channels.values():
                channel.close()
            self._channels.clear()


class Coordinator:
    """Maps planner stage assignments onto registered remote workers.

    Args:
        model_provider / data_provider / plan: exactly the in-process
            pipeline's triple; the plan's cluster defines one server
            slot (with a role) per worker address.
        workers: one ``(host, port)`` per cluster server, in server-id
            order.
        respawn: optional hook called (from the failure path) with
            ``(server_id, role)`` to start a replacement worker;
            returns its address.  At most ``worker_restart_budget``
            respawns per server slot.
        worker_restart_budget: respawns allowed per server slot.
        retry_policy / request_deadline / channel_capacity /
            restart_budget / sink_timeout: forwarded to the underlying
            :class:`~repro.stream.pipeline.Pipeline` untouched.
        obs: observability sinks (defaults from the providers, like the
            in-process pipeline).
    """

    def __init__(
        self,
        model_provider: ModelProvider,
        data_provider: DataProvider,
        plan: Plan,
        workers: Sequence[tuple[str, int]],
        respawn: RespawnFn | None = None,
        worker_restart_budget: int = 0,
        retry_policy: RetryPolicy | None = None,
        request_deadline: float | None = None,
        channel_capacity: int = 8,
        restart_budget: int = 2,
        sink_timeout: float = 300.0,
        obs: Observability | None = None,
        tenant: str = "default",
    ):
        servers = plan.cluster.servers
        if len(workers) != len(servers):
            raise HandshakeError(
                f"plan has {len(servers)} servers but {len(workers)} "
                "worker addresses were given"
            )
        self.model_provider = model_provider
        self.data_provider = data_provider
        self.plan = plan
        self.config = model_provider.config
        if obs is None:
            for candidate in (getattr(model_provider, "obs", None),
                              getattr(data_provider, "obs", None)):
                if candidate is not None and candidate.enabled:
                    obs = candidate
                    break
        self.obs = obs if obs is not None else OBS_OFF
        model_provider.register_public_key(data_provider.public_key)
        self._respawn = respawn
        self._worker_restart_budget = worker_restart_budget
        self._retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(
                max_retries=3,
                jitter_seed=self.config.seed ^ _RETRY_JITTER_SALT,
            )
        )
        self._reconnect_policy = RetryPolicy(
            max_retries=self.config.net_reconnect_attempts,
            base_delay=self.config.net_reconnect_base_delay,
            max_delay=self.config.net_reconnect_max_delay,
        )
        chaos_plan = ChaosPlan.from_config(self.config)
        self.chaos = (ChaosInjector(chaos_plan)
                      if chaos_plan is not None else None)
        self._request_deadline = request_deadline
        self._channel_capacity = channel_capacity
        self._restart_budget = restart_budget
        self._sink_timeout = sink_timeout
        #: Tenant name carried in every handshake: workers host one
        #: isolated session per tenant, so many coordinators (one per
        #: tenant, each with its own keypair) can share a fleet.
        self.tenant = tenant
        self._specs = {
            role: build_worker_spec(model_provider, data_provider,
                                    plan, role, tenant=tenant)
            for role in (ROLE_MODEL, ROLE_DATA)
        }
        self.handles = [
            WorkerHandle(server.server_id, server.role, tuple(address))
            for server, address in zip(servers, workers)
        ]
        for handle in self.handles:
            handle.breaker = CircuitBreaker(
                threshold=self.config.net_breaker_threshold,
                cooldown=self.config.net_breaker_cooldown,
            )
        self._lock = threading.Lock()
        self._monitors: List[threading.Thread] = []
        self._recoveries: List[threading.Thread] = []
        self._stop_monitor = threading.Event()
        self._connected = False
        self._m_deaths = self.obs.registry.counter("net_worker_deaths")
        self._m_respawns = self.obs.registry.counter(
            "net_worker_respawns"
        )
        self._m_reconnects = self.obs.registry.counter(
            "net_worker_reconnects"
        )

    # -- wiring --------------------------------------------------------

    def _open_session(self, handle: WorkerHandle,
                      peer: str) -> Connection:
        """Dial a worker and run the role handshake on the new
        connection (used for both control and task connections)."""
        connection = dial(
            handle.address[0], handle.address[1],
            connect_timeout=self.config.net_connect_timeout,
            max_frame_bytes=self.config.net_max_frame_bytes,
            obs=self.obs, peer=peer,
            factory=(self.chaos.connection_factory
                     if self.chaos is not None else None),
        )
        try:
            reply = connection.request(
                Envelope(KIND_HELLO, header=self._specs[handle.role]),
                timeout=self.config.net_handshake_timeout,
            )
        except TransportError:
            connection.close()
            raise
        if reply.kind == KIND_ERROR:
            connection.close()
            raise HandshakeError(
                f"{handle.describe()} rejected the handshake: "
                f"{reply.header.get('message')}"
            )
        if reply.kind != KIND_WELCOME:
            connection.close()
            raise HandshakeError(
                f"expected welcome from {handle.describe()}, got "
                f"{reply.kind}"
            )
        # The dial left the connect timeout armed so the handshake
        # could not stall on a silent peer; clear it so large task
        # frames (or chaos-delayed sends) are not spuriously bounded.
        connection.set_socket_timeout(None)
        return connection

    def _attach(self, handle: WorkerHandle) -> None:
        handle.control = self._open_session(
            handle, peer=f"worker-{handle.server_id}"
        )
        handle.alive = True

    def connect(self) -> None:
        """Handshake every worker and start one heartbeat probe
        thread per worker (per-worker deadlines: one stalled worker
        cannot delay liveness detection on its neighbours)."""
        if self._connected:
            return
        for handle in self.handles:
            if not handle.draining:
                self._attach(handle)
        self._connected = True
        self._stop_monitor.clear()
        for handle in self.handles:
            if not handle.draining:
                self._start_probe(handle)

    def _start_probe(self, handle: WorkerHandle) -> None:
        """Start one heartbeat probe thread for a handle (called from
        :meth:`connect` for the initial fleet, and again for each
        member an elastic coordinator admits mid-stream)."""
        thread = threading.Thread(
            target=self._probe_loop, args=(handle,),
            name=f"repro-coordinator-heartbeat-{handle.server_id}",
            daemon=True,
        )
        self._monitors.append(thread)
        thread.start()

    def _probe_loop(self, handle: WorkerHandle) -> None:
        interval = self.config.net_heartbeat_interval
        ok_counter = self.obs.registry.counter(
            "net_heartbeats_ok", worker=str(handle.server_id)
        )
        nonce = 0
        while not self._stop_monitor.wait(interval):
            if handle.draining:
                return  # the member left the fleet; nothing to probe
            control = handle.control
            if not handle.alive or control is None:
                continue
            nonce += 1
            generation = handle.generation
            try:
                reply = control.request(
                    Envelope(KIND_HEARTBEAT, header={"nonce": nonce}),
                    timeout=self.config.net_heartbeat_timeout,
                )
                # A chaos-duplicated heartbeat leaves a stale ack in
                # the buffer, so the reply's nonce may lag — only the
                # *kind* proves liveness, by design.
                if reply.kind != KIND_HEARTBEAT_ACK:
                    raise TransportError(
                        f"expected heartbeat-ack, got {reply.kind}"
                    )
            except TransportError:
                self.report_failure(handle, generation)
                continue
            handle.heartbeats_ok += 1
            ok_counter.inc()

    def report_failure(self, handle: WorkerHandle,
                       generation: int | None = None) -> None:
        """Mark a worker dead, cut its connections, start recovery.

        Closing the dead worker's task connections wakes every stage
        thread blocked on it with a :class:`TransportError`, which the
        executor converts to :class:`TransientStageError` — the
        existing retry path then re-injects those in-flight items,
        against a failover worker or the recovered one
        (drain-then-reassign).

        Recovery runs on a background thread
        (:meth:`_recovery_loop`): reconnect with exponential backoff
        first — a healed transient partition costs *zero* restart
        budget — and only then, if the address stays dead, the respawn
        hook within ``worker_restart_budget``.

        Args:
            generation: the handle generation the caller observed the
                failure on; a stale report (the slot was already
                recovered into a newer generation) is ignored so one
                worker death is never double-counted against a fresh
                replacement.
        """
        with self._lock:
            if not handle.alive:
                return
            if generation is not None \
                    and handle.generation != generation:
                return
            handle.alive = False
            handle.generation += 1
            recovery_generation = handle.generation
            recover = (not self._stop_monitor.is_set()
                       and not handle.draining)
        self._m_deaths.inc()
        self.obs.tracer.event(
            "worker-death", server=handle.server_id, role=handle.role
        )
        if handle.control is not None:
            handle.control.close()
            handle.control = None
        for connection in handle.drain_connections():
            connection.close()
        if recover:
            thread = threading.Thread(
                target=self._recovery_loop,
                args=(handle, recovery_generation),
                name=f"repro-coordinator-recover-{handle.server_id}",
                daemon=True,
            )
            with self._lock:
                self._recoveries.append(thread)
            thread.start()

    def _recovery_loop(self, handle: WorkerHandle,
                       generation: int) -> None:
        """Heal one worker slot: reconnect, then (maybe) respawn.

        Backoff jitter comes from an RNG seeded by
        ``(master seed, server id, generation)``, so a given death's
        reconnect schedule replays exactly under the same seed.  The
        per-worker circuit breaker refuses attempts while open, so a
        persistently-dead endpoint is not hammered across repeated
        deaths of the same slot.
        """
        policy = self._reconnect_policy
        rng = random.Random(
            (self.config.seed ^ _RECONNECT_SALT) * 1_000_003
            + handle.server_id * 97 + generation
        )
        breaker = handle.breaker
        for attempt in range(1, policy.max_retries + 1):
            if self._stop_monitor.wait(
                    policy.backoff_delay(attempt, rng)):
                return
            with self._lock:
                if handle.alive or handle.generation != generation:
                    return  # someone else healed / superseded the slot
            if breaker is not None and not breaker.allow():
                continue  # open breaker: burn this attempt cooling down
            try:
                self._attach(handle)
            except (TransportError, HandshakeError):
                if breaker is not None:
                    breaker.record_failure()
                continue
            if breaker is not None:
                breaker.record_success()
            handle.reconnects += 1
            self._m_reconnects.inc()
            self.obs.tracer.event(
                "worker-reconnect", server=handle.server_id,
                role=handle.role, attempt=attempt,
            )
            return
        with self._lock:
            if handle.alive or handle.generation != generation:
                return
            do_respawn = (self._respawn is not None
                          and handle.restarts
                          < self._worker_restart_budget
                          and not self._stop_monitor.is_set())
            if do_respawn:
                handle.restarts += 1
        if not do_respawn:
            return  # slot stays dead; failover carries the load
        try:
            handle.address = tuple(
                self._respawn(handle.server_id, handle.role)
            )
            self._attach(handle)
            self._m_respawns.inc()
            if breaker is not None:
                breaker.record_success()
        except (TransportError, HandshakeError):
            pass  # slot stays dead; failover carries the load

    def pick_worker(self, role: str,
                    stage_index: int) -> WorkerHandle:
        """A live worker for a stage: its assigned server if up, else
        any live same-role worker (failover)."""
        assigned = self.plan.assignments[stage_index].server_id
        with self._lock:
            preferred = self.handles[assigned]
            if preferred.alive and not preferred.draining:
                return preferred
            for handle in self.handles:
                if handle.role == role and handle.alive \
                        and not handle.draining:
                    return handle
        raise TransientStageError(
            f"no live {role} worker for stage {stage_index} "
            f"({preferred.describe()})"
        )

    # -- running -------------------------------------------------------

    def executors(self) -> List[RemoteStageExecutor]:
        """One remote proxy per plan stage (fresh set per stream)."""
        return [
            RemoteStageExecutor(
                self, stage.index,
                ROLE_MODEL if stage.kind is LayerKind.LINEAR
                else ROLE_DATA,
            )
            for stage in self.plan.stages
        ]

    def run_stream(
        self,
        inputs: Sequence[np.ndarray],
        request_deadline: float | None = None,
    ) -> StreamStats:
        """Stream inputs through the remote cluster.

        Identical contract to the in-process
        :meth:`~repro.stream.pipeline.Pipeline.run_stream` — it *is*
        that method, running over remote stage proxies.

        Args:
            request_deadline: per-request deadline for this stream
                only, overriding the constructor's (the serving
                gateway threads each job's remaining budget through
                here).
        """
        if not self._connected:
            self.connect()
        pipeline = Pipeline(
            self.model_provider,
            self.data_provider,
            self.plan,
            channel_capacity=self._channel_capacity,
            retry_policy=self._retry_policy,
            request_deadline=(request_deadline
                              if request_deadline is not None
                              else self._request_deadline),
            restart_budget=self._restart_budget,
            sink_timeout=self._sink_timeout,
            executors=self.executors(),
            obs=self.obs,
        )
        return pipeline.run_stream(inputs)

    # -- teardown ------------------------------------------------------

    def close(self, shutdown_workers: bool = False) -> None:
        """Stop the monitor and drop every connection.

        Args:
            shutdown_workers: also send each live worker a
                server-scoped shutdown envelope so standalone worker
                processes exit cleanly.
        """
        self._stop_monitor.set()
        for thread in self._monitors:
            thread.join(timeout=10.0)
        self._monitors = []
        with self._lock:
            recoveries = list(self._recoveries)
            self._recoveries = []
        for thread in recoveries:
            thread.join(timeout=10.0)
        for handle in self.handles:
            if shutdown_workers and handle.alive \
                    and handle.control is not None:
                try:
                    handle.control.send(Envelope(
                        KIND_SHUTDOWN, header={"scope": "server"}
                    ))
                except TransportError:
                    pass
            if handle.control is not None:
                handle.control.close()
                handle.control = None
            for connection in handle.drain_connections():
                connection.close()
            handle.alive = False
        self._connected = False

    def __enter__(self) -> "Coordinator":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
