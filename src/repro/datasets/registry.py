"""Table III dataset registry: the nine evaluation dataset/model pairs.

Sample counts are scaled down from the paper's (e.g. 60,000 MNIST
training images -> 1,200 synthetic ones) so pure-numpy training stays
fast; the ``scale`` argument of :func:`load_dataset` restores larger
sizes when wanted.  The server split (model-provider vs data-provider
servers) follows Table III exactly and feeds the allocation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import DatasetError
from .synthetic import Dataset, make_image_classification, \
    make_tabular_classification


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table III.

    Attributes:
        key: dataset/model key (matches ``repro.nn.model_zoo``).
        kind: "tabular" or "image".
        shape: per-sample shape.
        num_classes: label count.
        train_samples, test_samples: scaled-down default sizes.
        paper_train, paper_test: the paper's sample counts (Table III).
        model_servers, data_servers: server split of Table III.
        difficulty: generator difficulty targeting the paper's accuracy
            regime.
    """

    key: str
    kind: str
    shape: tuple[int, ...]
    num_classes: int
    train_samples: int
    test_samples: int
    paper_train: int
    paper_test: int
    model_servers: int
    data_servers: int
    difficulty: float


DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in (
        DatasetSpec("breast", "tabular", (30,), 2, 456, 113, 456, 113,
                    2, 1, 0.35),
        DatasetSpec("heart", "tabular", (13,), 2, 820, 205, 820, 205,
                    2, 1, 0.30),
        DatasetSpec("cardio", "tabular", (11,), 2, 1200, 300, 60000, 10000,
                    2, 1, 1.60),
        DatasetSpec("mnist-1", "image", (1, 28, 28), 10, 1200, 300,
                    60000, 10000, 2, 1, 0.35),
        DatasetSpec("mnist-2", "image", (1, 28, 28), 10, 1200, 300,
                    60000, 10000, 2, 1, 0.35),
        DatasetSpec("mnist-3", "image", (1, 28, 28), 10, 1200, 300,
                    60000, 10000, 2, 2, 0.40),
        DatasetSpec("cifar-10-1", "image", (3, 32, 32), 10, 800, 200,
                    50000, 10000, 6, 3, 0.45),
        DatasetSpec("cifar-10-2", "image", (3, 32, 32), 10, 800, 200,
                    50000, 10000, 6, 3, 0.45),
        DatasetSpec("cifar-10-3", "image", (3, 32, 32), 10, 800, 200,
                    50000, 10000, 6, 3, 0.45),
    )
}


@lru_cache(maxsize=32)
def load_dataset(key: str, scale: float = 1.0, seed: int = 7) -> Dataset:
    """Generate the synthetic stand-in for a Table III dataset.

    Args:
        key: dataset key (see :data:`DATASET_SPECS`).
        scale: multiplier on the default (already scaled-down) sizes.
        seed: generator seed.
    """
    spec = DATASET_SPECS.get(key.lower())
    if spec is None:
        raise DatasetError(
            f"unknown dataset {key!r}; choose from {sorted(DATASET_SPECS)}"
        )
    total = max(int((spec.train_samples + spec.test_samples) * scale), 10)
    test_fraction = spec.test_samples / (
        spec.train_samples + spec.test_samples
    )
    if spec.kind == "tabular":
        return make_tabular_classification(
            samples=total,
            features=spec.shape[0],
            num_classes=spec.num_classes,
            difficulty=spec.difficulty,
            test_fraction=test_fraction,
            seed=seed,
            name=spec.key,
        )
    channels, height, width = spec.shape
    return make_image_classification(
        samples=total,
        channels=channels,
        height=height,
        width=width,
        num_classes=spec.num_classes,
        difficulty=spec.difficulty,
        test_fraction=test_fraction,
        seed=seed,
        name=spec.key,
    )
