"""Deterministic synthetic classification datasets.

Two generators cover the paper's dataset shapes:

* :func:`make_tabular_classification` — Gaussian class prototypes in
  feature space, for the Breast/Heart/Cardio healthcare stand-ins.
* :func:`make_image_classification` — smooth per-class prototype images
  with additive noise, for the MNIST/CIFAR-10 stand-ins.

Both expose a ``difficulty`` knob (prototype separation vs noise) so the
registry can roughly match the paper's accuracy regimes — e.g. the
Cardio model plateaus near 71% in the paper, so its stand-in is
generated with heavy class overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class Dataset:
    """A train/test split with metadata.

    Attributes:
        train_x, train_y: training samples and integer labels.
        test_x, test_y: held-out samples and labels.
        num_classes: label count.
        name: dataset identifier.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int
    name: str

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return tuple(self.train_x.shape[1:])

    def __post_init__(self) -> None:
        if self.train_x.shape[0] != self.train_y.shape[0]:
            raise DatasetError("train sample/label count mismatch")
        if self.test_x.shape[0] != self.test_y.shape[0]:
            raise DatasetError("test sample/label count mismatch")
        if self.num_classes < 2:
            raise DatasetError("num_classes must be >= 2")


def _split(
    x: np.ndarray, y: np.ndarray, test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    if not 0 < test_fraction < 1:
        raise DatasetError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    split_at = int(round(x.shape[0] * (1 - test_fraction)))
    if split_at == 0 or split_at == x.shape[0]:
        raise DatasetError("split produced an empty train or test set")
    return x[:split_at], y[:split_at], x[split_at:], y[split_at:]


def make_tabular_classification(
    samples: int,
    features: int,
    num_classes: int = 2,
    difficulty: float = 0.3,
    test_fraction: float = 0.2,
    seed: int = 0,
    name: str = "tabular",
) -> Dataset:
    """Gaussian-prototype tabular classification data.

    Args:
        samples: total samples (train + test).
        features: feature dimension.
        num_classes: label count.
        difficulty: noise-to-separation ratio in (0, inf); ~0.3 gives
            high-90s accuracy for a small MLP, ~1.2 lands near 70%.
        test_fraction: held-out fraction.
        seed: RNG seed; datasets are fully deterministic per seed.
        name: dataset name for reporting.
    """
    if samples < 10:
        raise DatasetError("need at least 10 samples")
    if difficulty <= 0:
        raise DatasetError("difficulty must be positive")
    rng = np.random.default_rng(seed)
    prototypes = rng.standard_normal((num_classes, features))
    labels = rng.integers(0, num_classes, size=samples)
    noise = rng.standard_normal((samples, features)) * difficulty
    x = prototypes[labels] + noise
    # Standardize features, as the Kaggle healthcare pipelines do.
    x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
    train_x, train_y, test_x, test_y = _split(x, labels, test_fraction, rng)
    return Dataset(train_x, train_y, test_x, test_y, num_classes, name)


def _smooth_prototype(
    rng: np.random.Generator, channels: int, height: int, width: int
) -> np.ndarray:
    """A smooth random image: low-frequency cosine mixture per channel."""
    ys = np.linspace(0, 1, height)[:, None]
    xs = np.linspace(0, 1, width)[None, :]
    proto = np.zeros((channels, height, width))
    for c in range(channels):
        image = np.zeros((height, width))
        for _ in range(4):
            fy, fx = rng.uniform(0.5, 3.0, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            amp = rng.uniform(0.5, 1.0)
            image += amp * np.cos(2 * np.pi * fy * ys + phase_y) \
                * np.cos(2 * np.pi * fx * xs + phase_x)
        proto[c] = image
    return proto / max(np.abs(proto).max(), 1e-9)


def make_image_classification(
    samples: int,
    channels: int,
    height: int,
    width: int,
    num_classes: int = 10,
    difficulty: float = 0.35,
    test_fraction: float = 0.2,
    seed: int = 0,
    name: str = "images",
) -> Dataset:
    """Smooth-prototype image classification data (MNIST/CIFAR shapes).

    Each class has a smooth low-frequency prototype image; samples are
    the prototype plus white noise scaled by ``difficulty``, then
    clipped to [0, 1]-ish range, mimicking normalized pixel data.
    """
    if samples < 10:
        raise DatasetError("need at least 10 samples")
    rng = np.random.default_rng(seed)
    prototypes = np.stack([
        _smooth_prototype(rng, channels, height, width)
        for _ in range(num_classes)
    ])
    labels = rng.integers(0, num_classes, size=samples)
    noise = rng.standard_normal(
        (samples, channels, height, width)
    ) * difficulty
    x = prototypes[labels] + noise
    x = np.clip((x + 1.0) / 2.0, 0.0, 1.0)
    train_x, train_y, test_x, test_y = _split(x, labels, test_fraction, rng)
    return Dataset(train_x, train_y, test_x, test_y, num_classes, name)
