"""Dataset persistence: save/load the synthetic datasets as ``.npz``.

Lets a study pin the exact tensors an experiment ran on (e.g. to share
with an external tool or across machines), independent of generator
code changes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import DatasetError
from .synthetic import Dataset

#: Format marker stored inside the archive.
_FORMAT = "repro-dataset-v1"


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        format=np.array(_FORMAT),
        name=np.array(dataset.name),
        num_classes=np.array(dataset.num_classes),
        train_x=dataset.train_x,
        train_y=dataset.train_y,
        test_x=dataset.test_x,
        test_y=dataset.test_y,
    )


def load_saved_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        DatasetError: when the file is missing, not an archive, or not
            in the expected format.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such dataset file: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            if "format" not in archive or \
                    str(archive["format"]) != _FORMAT:
                raise DatasetError(
                    f"{path} is not a {_FORMAT} archive"
                )
            return Dataset(
                train_x=archive["train_x"],
                train_y=archive["train_y"],
                test_x=archive["test_x"],
                test_y=archive["test_y"],
                num_classes=int(archive["num_classes"]),
                name=str(archive["name"]),
            )
    except (OSError, ValueError) as exc:
        raise DatasetError(f"cannot read dataset {path}: {exc}") from exc
