"""Synthetic stand-ins for the paper's datasets (Table III).

No network access is available in this environment, so MNIST, CIFAR-10,
and the Kaggle healthcare datasets are replaced by deterministic
synthetic generators with matching shapes and class counts.  See
DESIGN.md (substitution 2) for why this preserves the behaviour each
experiment measures.
"""

from .synthetic import (
    Dataset,
    make_image_classification,
    make_tabular_classification,
)
from .registry import DATASET_SPECS, DatasetSpec, load_dataset
from .io import load_saved_dataset, save_dataset

__all__ = [
    "Dataset",
    "make_image_classification",
    "make_tabular_classification",
    "DATASET_SPECS",
    "DatasetSpec",
    "load_dataset",
    "load_saved_dataset",
    "save_dataset",
]
