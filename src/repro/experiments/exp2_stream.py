"""Exp#2 (Figure 8): effectiveness of distributed stream processing.

Four variants per model:

* PlainBase    — centralized single-server plaintext inference.
* CipherBase   — centralized single-server, single-thread encrypted
                 inference.
* PP-Stream-25 — pipeline over 25 total CPU cores, CPU cores evenly
                 distributed across stages, tensor partitioning OFF.
* PP-Stream-50 — same with 50 total CPU cores.

All latencies come from the calibrated simulator at the reference
2048-bit cost profile (DESIGN.md, substitution 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planner.allocation import allocate_even
from ..simulate.simulator import (
    PipelineSimulator,
    centralized_cipher_latency,
    centralized_plain_latency,
)
from .common import (
    FIG_MODELS,
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from .report import format_table, percent_reduction


@dataclass(frozen=True)
class StreamComparisonRow:
    """Figure 8 latencies (seconds) for one model."""

    model_key: str
    plain_base: float
    cipher_base: float
    pp_stream_25: float
    pp_stream_50: float

    @property
    def reduction_25(self) -> float:
        """% latency reduction of PP-Stream-25 over CipherBase."""
        return percent_reduction(self.cipher_base, self.pp_stream_25)

    @property
    def reduction_50(self) -> float:
        return percent_reduction(self.cipher_base, self.pp_stream_50)


def _pp_stream_latency(key: str, total_cores: int, decimals: int,
                       stages) -> float:
    cluster = cluster_with_total_cores(key, total_cores)
    allocation = allocate_even(stages, cluster,
                               use_tensor_partitioning=False)
    simulator = PipelineSimulator(
        allocation.plan, reference_cost_model(), decimals
    )
    return simulator.request_latency()


def run_stream_comparison(
    keys: tuple[str, ...] = FIG_MODELS,
) -> list[StreamComparisonRow]:
    """Figure 8 for the healthcare and MNIST models."""
    cost_model = reference_cost_model()
    rows = []
    for key in keys:
        prepared = prepare_model(key)
        stages = prepared.stages()
        decimals = prepared.decimals
        rows.append(StreamComparisonRow(
            model_key=key,
            plain_base=centralized_plain_latency(stages, cost_model),
            cipher_base=centralized_cipher_latency(stages, cost_model,
                                                   decimals),
            pp_stream_25=_pp_stream_latency(key, 25, decimals, stages),
            pp_stream_50=_pp_stream_latency(key, 50, decimals, stages),
        ))
    return rows


def render_stream_comparison(rows: list[StreamComparisonRow]) -> str:
    table_rows = [
        [row.model_key, row.plain_base, row.cipher_base,
         row.pp_stream_25, row.pp_stream_50,
         f"{row.reduction_25:.2f}%", f"{row.reduction_50:.2f}%"]
        for row in rows
    ]
    return format_table(
        ["Model", "PlainBase (s)", "CipherBase (s)", "PP-25 (s)",
         "PP-50 (s)", "reduc. 25", "reduc. 50"],
        table_rows,
        "Fig. 8 - distributed stream processing vs centralized baselines",
    )
