"""Ablation (beyond the paper's figures): operation encapsulation.

Section IV-B argues against two encapsulation extremes: one stage per
primitive layer (excessive serialization/transfer at every boundary)
and one stage for everything (no privacy separation — and, as
CipherBase shows, no pipeline parallelism).  This ablation quantifies
the argument: simulated latency for

* ``merged``   — PP-Stream's adjacent-same-kind merging (the paper),
* ``unmerged`` — one stage per primitive layer,
* ``single``   — everything in one sequential worker (CipherBase).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planner.allocation import allocate_load_balanced
from ..planner.primitive import (
    MergedPrimitive,
    extract_primitives,
    merge_primitives,
)
from ..planner.profiling import profile_primitive_times
from ..simulate.stagecosts import make_comm_model
from ..simulate.simulator import (
    PipelineSimulator,
    centralized_cipher_latency,
)
from .common import (
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from .report import format_table


def unmerged_stages(model) -> list[MergedPrimitive]:
    """One stage per primitive layer — the rejected extreme."""
    primitives = extract_primitives(model)
    return [
        MergedPrimitive(index, primitive.kind, (primitive,))
        for index, primitive in enumerate(primitives)
    ]


@dataclass(frozen=True)
class MergingAblationRow:
    """Latencies (s) of the three encapsulation strategies."""

    model_key: str
    merged: float
    unmerged: float
    single_stage: float


def run_merging_ablation(
    keys: tuple[str, ...] = ("mnist-1", "mnist-2", "mnist-3"),
    total_cores: int = 48,
) -> list[MergingAblationRow]:
    cost_model = reference_cost_model()
    rows = []
    for key in keys:
        prepared = prepare_model(key)
        decimals = prepared.decimals
        cluster = cluster_with_total_cores(key, total_cores)

        def latency(stages) -> float:
            times = profile_primitive_times(stages, cost_model,
                                            decimals)
            allocation = allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=True,
                comm_model=make_comm_model(cost_model, True),
            )
            return PipelineSimulator(
                allocation.plan, cost_model, decimals
            ).request_latency()

        merged = merge_primitives(extract_primitives(prepared.model))
        rows.append(MergingAblationRow(
            model_key=key,
            merged=latency(merged),
            unmerged=latency(unmerged_stages(prepared.model)),
            single_stage=centralized_cipher_latency(
                merged, cost_model, decimals
            ),
        ))
    return rows


def render_merging_ablation(rows: list[MergingAblationRow]) -> str:
    return format_table(
        ["Model", "Merged (s)", "Per-primitive (s)", "Single stage (s)"],
        [[r.model_key, r.merged, r.unmerged, r.single_stage]
         for r in rows],
        "Ablation - operation encapsulation strategies (Section IV-B)",
    )
