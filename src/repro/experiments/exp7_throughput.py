"""Extension experiment: steady-state throughput (design goal HP).

The paper's latency figures imply throughput gains via pipelining but
never report them directly; this experiment fills that gap.  For each
model it simulates a backlogged stream of requests through the
full-featured PP-Stream plan and reports steady-state throughput
(requests/second) against the centralized CipherBase (1 / latency),
at 25 and 50 total cores.

Pipelining decouples throughput from single-request latency: the
pipeline completes one request per bottleneck-stage interval even
though each request still traverses every stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planner.allocation import allocate_load_balanced
from ..planner.profiling import profile_primitive_times
from ..simulate.simulator import (
    PipelineSimulator,
    centralized_cipher_latency,
)
from ..simulate.stagecosts import make_comm_model
from .common import (
    FIG_MODELS,
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from .report import format_table


@dataclass(frozen=True)
class ThroughputRow:
    """Requests/second for one model."""

    model_key: str
    cipher_base: float
    pp_stream_25: float
    pp_stream_50: float

    @property
    def speedup_50(self) -> float:
        return self.pp_stream_50 / self.cipher_base


def _pp_throughput(key: str, total_cores: int, decimals: int,
                   stages, cost_model, requests: int) -> float:
    cluster = cluster_with_total_cores(key, total_cores)
    times = profile_primitive_times(stages, cost_model, decimals)
    allocation = allocate_load_balanced(
        stages, times, cluster, method="water_filling",
        use_tensor_partitioning=True,
        comm_model=make_comm_model(cost_model, True),
    )
    simulator = PipelineSimulator(allocation.plan, cost_model, decimals)
    return simulator.simulate_stream(requests).throughput


def run_throughput(
    keys: tuple[str, ...] = FIG_MODELS,
    requests: int = 200,
) -> list[ThroughputRow]:
    """Steady-state throughput rows for the requested models."""
    cost_model = reference_cost_model()
    rows = []
    for key in keys:
        prepared = prepare_model(key)
        stages = prepared.stages()
        decimals = prepared.decimals
        cipher_latency = centralized_cipher_latency(stages, cost_model,
                                                    decimals)
        rows.append(ThroughputRow(
            model_key=key,
            cipher_base=1.0 / cipher_latency,
            pp_stream_25=_pp_throughput(key, 25, decimals, stages,
                                        cost_model, requests),
            pp_stream_50=_pp_throughput(key, 50, decimals, stages,
                                        cost_model, requests),
        ))
    return rows


@dataclass(frozen=True)
class LoadLatencyRow:
    """Mean latency (s) at one offered arrival rate."""

    model_key: str
    arrival_rate: float
    utilization: float
    mean_latency: float


def run_latency_vs_load(
    key: str = "mnist-1",
    total_cores: int = 48,
    utilizations: tuple[float, ...] = (0.2, 0.5, 0.8, 0.95, 1.2),
    requests: int = 300,
) -> list[LoadLatencyRow]:
    """Queueing behaviour: mean latency vs offered load.

    Requests arrive at a fraction of the pipeline's capacity (the
    bottleneck stage's service rate); below saturation the latency
    stays near the unloaded path time, and beyond it queues build and
    latency grows with the backlog — the standard pipeline-queueing
    story, reproduced from the simulator's schedule.
    """
    cost_model = reference_cost_model()
    prepared = prepare_model(key)
    stages = prepared.stages()
    decimals = prepared.decimals
    cluster = cluster_with_total_cores(key, total_cores)
    times = profile_primitive_times(stages, cost_model, decimals)
    allocation = allocate_load_balanced(
        stages, times, cluster, method="water_filling",
        use_tensor_partitioning=True,
        comm_model=make_comm_model(cost_model, True),
    )
    simulator = PipelineSimulator(allocation.plan, cost_model, decimals)
    capacity = 1.0 / simulator.bottleneck_service()
    rows = []
    for utilization in utilizations:
        rate = capacity * utilization
        stream = simulator.simulate_stream(
            requests, arrival_interval=1.0 / rate
        )
        rows.append(LoadLatencyRow(
            model_key=key,
            arrival_rate=rate,
            utilization=utilization,
            mean_latency=stream.mean_latency,
        ))
    return rows


def render_latency_vs_load(rows: list[LoadLatencyRow]) -> str:
    return format_table(
        ["Model", "Offered load (x capacity)", "Rate (req/s)",
         "Mean latency (s)"],
        [
            [row.model_key, f"{row.utilization:.2f}",
             row.arrival_rate, row.mean_latency]
            for row in rows
        ],
        "Extension - latency vs offered load (queueing behaviour)",
    )


def render_throughput(rows: list[ThroughputRow]) -> str:
    return format_table(
        ["Model", "CipherBase (req/s)", "PP-25 (req/s)",
         "PP-50 (req/s)", "speedup @50"],
        [
            [row.model_key, row.cipher_base, row.pp_stream_25,
             row.pp_stream_50, f"{row.speedup_50:.1f}x"]
            for row in rows
        ],
        "Extension - steady-state inference throughput",
    )
