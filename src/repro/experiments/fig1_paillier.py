"""Figure 1: homomorphic-encryption micro-benchmark.

The paper encrypts a 28x28 tensor, scalar-multiplies it by 10^6, adds
the result to the original, and decrypts, reporting per-step latency
versus key size (seconds for encryption/decryption, milliseconds for
the arithmetic).  This module reruns that exact experiment on the
repository's own Paillier implementation.

Pure Python is slower than the paper's GMP, so per-tensor times are
measured on a sample of elements and scaled to the full tensor
(``sample_elements``), keeping 2048-bit keys practical; the *ratios*
between steps and the growth with key size are what Figure 1 shows.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..crypto.paillier import generate_keypair
from ..errors import ReproError
from .report import format_table

#: The paper's tensor: 28 x 28 MNIST image.
TENSOR_ELEMENTS = 28 * 28

#: The paper's scalar multiplication constant.
SCALAR = 10 ** 6

#: Key sizes swept in Figure 1.
KEY_SIZES = (512, 1024, 2048)


@dataclass(frozen=True)
class PaillierBenchRow:
    """Per-tensor latencies (seconds) for one key size."""

    key_size: int
    encrypt_seconds: float
    scalar_mul_seconds: float
    add_seconds: float
    decrypt_seconds: float


def run_fig1(
    key_sizes: tuple[int, ...] = KEY_SIZES,
    sample_elements: int = 24,
    repeats: int = 2,
    seed: int = 0,
) -> list[PaillierBenchRow]:
    """Benchmark the four Figure 1 steps at each key size.

    Args:
        key_sizes: Paillier modulus sizes to sweep.
        sample_elements: elements actually timed; per-tensor latency is
            the per-element mean times 784.
        repeats: timing repetitions averaged per step.
        seed: RNG seed (key generation and plaintexts).
    """
    if sample_elements < 1 or repeats < 1:
        raise ReproError("sample_elements and repeats must be >= 1")
    rows = []
    rng = random.Random(seed)
    for key_size in key_sizes:
        public, private = generate_keypair(key_size, seed=seed)
        plaintexts = [rng.randrange(0, 256) for _ in
                      range(sample_elements)]

        def timed(fn) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best / sample_elements * TENSOR_ELEMENTS

        ciphers = [public.encrypt(m, rng) for m in plaintexts]
        encrypt_s = timed(
            lambda: [public.encrypt(m, rng) for m in plaintexts]
        )
        scaled = [c * SCALAR for c in ciphers]
        scalar_s = timed(lambda: [c * SCALAR for c in ciphers])
        add_s = timed(
            lambda: [a + b for a, b in zip(ciphers, scaled)]
        )
        sums = [a + b for a, b in zip(ciphers, scaled)]
        decrypt_s = timed(lambda: [private.decrypt(c) for c in sums])
        rows.append(PaillierBenchRow(
            key_size=key_size,
            encrypt_seconds=encrypt_s,
            scalar_mul_seconds=scalar_s,
            add_seconds=add_s,
            decrypt_seconds=decrypt_s,
        ))
    return rows


def render_fig1(rows: list[PaillierBenchRow]) -> str:
    """Render Figure 1 as a table (per 28x28 tensor, seconds)."""
    return format_table(
        headers=["Key size", "Encrypt (s)", "ScalarMul (s)", "Add (s)",
                 "Decrypt (s)"],
        rows=[
            [row.key_size, row.encrypt_seconds, row.scalar_mul_seconds,
             row.add_seconds, row.decrypt_seconds]
            for row in rows
        ],
        title="Fig. 1 - Paillier micro-benchmark (per 28x28 tensor)",
    )
