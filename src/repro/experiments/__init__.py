"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes a ``run_*`` function returning structured
results plus a ``render_*`` helper printing the same rows/series the
paper reports.  ``python -m repro.experiments <exp>`` runs them from
the command line; the ``benchmarks/`` suite regenerates each under
pytest-benchmark.

Index (see DESIGN.md for the full mapping):

* :mod:`fig1_paillier`  — Fig. 1 homomorphic-encryption micro-benchmark
* :mod:`exp1_scaling`   — Tables IV/V + Fig. 6 (scaling factors)
* :mod:`exp2_stream`    — Fig. 8 (distributed stream processing)
* :mod:`exp3_allocation`— Fig. 7 (load-balanced resource allocation)
* :mod:`exp4_partitioning` — Fig. 9 (tensor partitioning)
* :mod:`exp5_leakage`   — Table VI (information leakage)
* :mod:`exp6_comparison`— Table VII (state-of-the-art comparison)
"""

from . import (
    ablation_merging,
    common,
    exp1_scaling,
    exp2_stream,
    exp3_allocation,
    exp4_partitioning,
    exp5_leakage,
    exp6_comparison,
    exp7_throughput,
    fig1_paillier,
    report,
)

__all__ = [
    "ablation_merging",
    "common",
    "exp1_scaling",
    "exp2_stream",
    "exp3_allocation",
    "exp4_partitioning",
    "exp5_leakage",
    "exp6_comparison",
    "exp7_throughput",
    "fig1_paillier",
    "report",
]
