"""Plain-text table rendering shared by the experiment harness."""

from __future__ import annotations

from typing import Sequence

from ..errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted to four significant decimals; everything else
    through ``str``.
    """
    if not headers:
        raise ReproError("table needs headers")
    rendered_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])),
            *(len(row[i]) for row in rendered_rows)) if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def percent_reduction(baseline: float, improved: float) -> float:
    """Latency reduction in percent: 100 * (baseline - improved)/baseline."""
    if baseline <= 0:
        raise ReproError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline
