"""Command-line entry point: ``python -m repro.experiments <exp> ...``.

Runs one or more experiments and prints the paper's tables/figures as
plain text.  ``all`` runs everything (minutes; the CIFAR models train
on first use).
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablation_merging,
    exp1_scaling,
    exp2_stream,
    exp3_allocation,
    exp4_partitioning,
    exp5_leakage,
    exp6_comparison,
    exp7_throughput,
    fig1_paillier,
)
from .common import FIG_MODELS


def _run_fig1() -> None:
    rows = fig1_paillier.run_fig1()
    print(fig1_paillier.render_fig1(rows))


def _run_exp1(fast: bool) -> None:
    keys = FIG_MODELS if fast else None
    accuracy = exp1_scaling.run_accuracy_tables(
        keys or exp1_scaling.ALL_MODELS
    )
    print(exp1_scaling.render_accuracy_table(accuracy, "train"))
    print()
    print(exp1_scaling.render_accuracy_table(accuracy, "test"))
    print()
    latency = exp1_scaling.run_latency_vs_factor()
    print(exp1_scaling.render_latency_vs_factor(latency))


def _run_exp2(fast: bool) -> None:
    rows = exp2_stream.run_stream_comparison()
    print(exp2_stream.render_stream_comparison(rows))


def _run_exp3(fast: bool) -> None:
    rows = exp3_allocation.run_allocation_comparison()
    print(exp3_allocation.render_allocation_comparison(rows))


def _run_exp4(fast: bool) -> None:
    rows = exp4_partitioning.run_partitioning_comparison()
    print(exp4_partitioning.render_partitioning_comparison(rows))


def _run_exp5(fast: bool) -> None:
    rows = exp5_leakage.run_leakage(
        source="gaussian" if fast else "activations"
    )
    print(exp5_leakage.render_leakage(rows))


def _run_exp6(fast: bool) -> None:
    rows = exp6_comparison.run_comparison(
        ezpc_max_real_relu=16 if fast else 64
    )
    print(exp6_comparison.render_comparison(rows))


def _run_exp7(fast: bool) -> None:
    rows = exp7_throughput.run_throughput(
        requests=50 if fast else 200
    )
    print(exp7_throughput.render_throughput(rows))


def _run_ablation(fast: bool) -> None:
    keys = ("mnist-1",) if fast else ("mnist-1", "mnist-2", "mnist-3")
    rows = ablation_merging.run_merging_ablation(keys)
    print(ablation_merging.render_merging_ablation(rows))


_EXPERIMENTS = {
    "fig1": lambda fast: _run_fig1(),
    "exp1": _run_exp1,
    "exp2": _run_exp2,
    "exp3": _run_exp3,
    "exp4": _run_exp4,
    "exp5": _run_exp5,
    "exp6": _run_exp6,
    "exp7": _run_exp7,
    "ablation": _run_ablation,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the PP-Stream paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiments to run",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller workloads (skips CIFAR models, samples harder)",
    )
    args = parser.parse_args(argv)
    selected = (sorted(_EXPERIMENTS) if "all" in args.experiments
                else args.experiments)
    for name in selected:
        print(f"=== {name} ===")
        _EXPERIMENTS[name](args.fast)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
