"""Exp#5 (Table VI): information-leakage measurement.

Distance correlation between before- and after-obfuscation tensors as
tensor length grows from 2^5 to 2^13.  Tensors can come from two
sources:

* ``"activations"`` (default): real pre-obfuscation tensors exported
  from the trained models' hidden layers, like the paper — intermediate
  linear-stage outputs are collected, and lengths are matched by
  sampling contiguous windows of the requested size.
* ``"gaussian"``: synthetic standard-normal vectors (fast, fully
  deterministic).

Both give the paper's monotone trend: dCor falls from ~0.3 at 2^5 to
~0.02 at 2^13, because a random permutation of a longer exchangeable
vector decorrelates more completely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..nn.layers import LayerKind
from ..obfuscation.leakage import leakage_by_length
from ..planner.primitive import model_stages
from .common import prepare_model
from .report import format_table

#: The paper's tensor-length sweep.
LENGTHS = tuple(2 ** power for power in range(5, 14))


@dataclass(frozen=True)
class LeakageRow:
    """Mean distance correlation at one tensor length."""

    length: int
    distance_correlation: float


def _collect_activations(
    keys: tuple[str, ...], samples_per_model: int, seed: int
) -> np.ndarray:
    """Export real pre-obfuscation tensors: the outputs of every linear
    stage during plaintext inference, concatenated into one pool."""
    pool: list[np.ndarray] = []
    for key in keys:
        prepared = prepare_model(key)
        stages = model_stages(prepared.model)
        x = prepared.dataset.test_x[:samples_per_model]
        batch = np.asarray(x, dtype=np.float64)
        current = batch
        for stage in stages:
            for primitive in stage.primitives:
                current = primitive.layer.forward(current)
            if stage.kind is LayerKind.LINEAR:
                pool.append(current.reshape(-1))
    if not pool:
        raise ReproError("no activations collected")
    return np.concatenate(pool)


def run_leakage(
    lengths: tuple[int, ...] = LENGTHS,
    trials: int = 8,
    source: str = "activations",
    activation_models: tuple[str, ...] = ("mnist-1", "mnist-2"),
    seed: int = 0,
) -> list[LeakageRow]:
    """Table VI: mean dCor per tensor length.

    Args:
        lengths: tensor lengths to sweep.
        trials: independent (tensor, permutation) draws per length.
        source: "activations" (real hidden-layer tensors) or
            "gaussian" (synthetic).
        activation_models: models whose activations are exported when
            source="activations".
        seed: RNG seed.
    """
    if source == "gaussian":
        sampler = None
    elif source == "activations":
        pool = _collect_activations(activation_models,
                                    samples_per_model=4, seed=seed)

        def sampler(rng: random.Random, length: int) -> np.ndarray:
            if length > pool.size:
                raise ReproError(
                    f"activation pool ({pool.size}) smaller than "
                    f"requested length {length}"
                )
            start = rng.randrange(0, pool.size - length + 1)
            return pool[start:start + length]
    else:
        raise ReproError(
            f"unknown source {source!r}; use 'activations' or 'gaussian'"
        )
    results = leakage_by_length(lengths, trials=trials, seed=seed,
                                value_sampler=sampler)
    return [LeakageRow(length, results[length]) for length in lengths]


def render_leakage(rows: list[LeakageRow]) -> str:
    table_rows = [
        [f"2^{row.length.bit_length() - 1} = {row.length}",
         f"{row.distance_correlation:.4f}"]
        for row in rows
    ]
    return format_table(
        ["Tensor length", "Distance correlation"],
        table_rows,
        "Table VI - information leakage (before vs after obfuscation)",
    )
