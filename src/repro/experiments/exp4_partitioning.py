"""Exp#4 (Figure 9): tensor partitioning.

For each model and core budget: latency with tensor partitioning (input
partitioning for convolution chains + output partitioning everywhere)
versus without (every thread receives the whole input tensor and emits
one output element at a time).  Stream processing and load-balanced
allocation are enabled in both arms, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planner.allocation import allocate_load_balanced
from ..planner.profiling import profile_primitive_times
from ..simulate.simulator import PipelineSimulator
from ..simulate.stagecosts import make_comm_model
from .common import (
    FIG_MODELS,
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from .report import format_table, percent_reduction

#: Total-core sweep of Figure 9.
CORE_SWEEP = (12, 18, 24, 36, 48)


@dataclass(frozen=True)
class PartitioningRow:
    """Latency (s) with/without tensor partitioning."""

    model_key: str
    total_cores: int
    without_partitioning: float
    with_partitioning: float

    @property
    def reduction(self) -> float:
        return percent_reduction(self.without_partitioning,
                                 self.with_partitioning)


def run_partitioning_comparison(
    keys: tuple[str, ...] = FIG_MODELS,
    core_sweep: tuple[int, ...] = CORE_SWEEP,
) -> list[PartitioningRow]:
    """Figure 9 rows for the requested models and core budgets."""
    cost_model = reference_cost_model()
    rows = []
    for key in keys:
        prepared = prepare_model(key)
        stages = prepared.stages()
        decimals = prepared.decimals
        times = profile_primitive_times(stages, cost_model, decimals)
        for total_cores in core_sweep:
            cluster = cluster_with_total_cores(key, total_cores)
            with_tp = allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=True,
                comm_model=make_comm_model(cost_model, True),
            )
            without_tp = allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=False,
                comm_model=make_comm_model(cost_model, False),
            )
            rows.append(PartitioningRow(
                model_key=key,
                total_cores=total_cores,
                without_partitioning=PipelineSimulator(
                    without_tp.plan, cost_model, decimals
                ).request_latency(),
                with_partitioning=PipelineSimulator(
                    with_tp.plan, cost_model, decimals
                ).request_latency(),
            ))
    return rows


def render_partitioning_comparison(rows: list[PartitioningRow]) -> str:
    table_rows = [
        [row.model_key, row.total_cores, row.without_partitioning,
         row.with_partitioning, f"{row.reduction:.2f}%"]
        for row in rows
    ]
    return format_table(
        ["Model", "Cores", "No partitioning (s)", "Partitioning (s)",
         "Reduction"],
        table_rows,
        "Fig. 9 - tensor partitioning",
    )
