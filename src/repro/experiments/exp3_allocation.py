"""Exp#3 (Figure 7): load-balanced resource allocation.

For each model and total-core budget: simulated latency with the
even-split allocation versus the ILP/water-filling load-balanced
allocation.  Stream processing and tensor partitioning are enabled in
both arms, matching the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planner.allocation import allocate_even, allocate_load_balanced
from ..planner.profiling import profile_primitive_times
from ..simulate.simulator import PipelineSimulator
from ..simulate.stagecosts import make_comm_model
from .common import (
    FIG_MODELS,
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from .report import format_table, percent_reduction

#: Total-core sweep of Figure 7.
CORE_SWEEP = (12, 18, 24, 36, 48)


@dataclass(frozen=True)
class AllocationRow:
    """Latency (s) with/without load balancing at one core budget."""

    model_key: str
    total_cores: int
    even_latency: float
    balanced_latency: float

    @property
    def reduction(self) -> float:
        return percent_reduction(self.even_latency,
                                 self.balanced_latency)


def run_allocation_comparison(
    keys: tuple[str, ...] = FIG_MODELS,
    core_sweep: tuple[int, ...] = CORE_SWEEP,
) -> list[AllocationRow]:
    """Figure 7 rows for the requested models and core budgets."""
    cost_model = reference_cost_model()
    rows = []
    for key in keys:
        prepared = prepare_model(key)
        stages = prepared.stages()
        decimals = prepared.decimals
        times = profile_primitive_times(stages, cost_model, decimals)
        for total_cores in core_sweep:
            cluster = cluster_with_total_cores(key, total_cores)
            even = allocate_even(stages, cluster,
                                 use_tensor_partitioning=True)
            balanced = allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=True,
                comm_model=make_comm_model(cost_model, True),
            )
            even_latency = PipelineSimulator(
                even.plan, cost_model, decimals
            ).request_latency()
            balanced_latency = PipelineSimulator(
                balanced.plan, cost_model, decimals
            ).request_latency()
            rows.append(AllocationRow(
                model_key=key,
                total_cores=total_cores,
                even_latency=even_latency,
                balanced_latency=balanced_latency,
            ))
    return rows


def render_allocation_comparison(rows: list[AllocationRow]) -> str:
    table_rows = [
        [row.model_key, row.total_cores, row.even_latency,
         row.balanced_latency, f"{row.reduction:.2f}%"]
        for row in rows
    ]
    return format_table(
        ["Model", "Cores", "Even (s)", "Load-balanced (s)", "Reduction"],
        table_rows,
        "Fig. 7 - load-balanced resource allocation",
    )
