"""Exp#6 (Table VII): comparison with state-of-the-art systems.

PP-Stream (all features, simulated at the Table III server split) is
compared on the three MNIST models against:

* SecureML / CryptoNets / CryptoDL — quoted published numbers, exactly
  as the paper quotes them (their artifacts are not public);
* EzPC — the in-repo 2PC engine (secret-shared linear layers, garbled
  ReLU), executed for real with a modeled network.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.ezpc import EzPCBaseline
from ..baselines.reported import REPORTED_LATENCIES
from ..planner.allocation import allocate_load_balanced
from ..planner.profiling import profile_primitive_times
from ..simulate.simulator import PipelineSimulator
from ..simulate.stagecosts import make_comm_model
from .common import prepare_model, reference_cost_model, \
    table_iii_cluster
from .report import format_table

#: Models of Table VII.
MNIST_MODELS = ("mnist-1", "mnist-2", "mnist-3")


@dataclass(frozen=True)
class ComparisonRow:
    """One system's latency on one MNIST model."""

    system: str
    model_key: str
    latency_seconds: float
    provenance: str


def run_comparison(
    keys: tuple[str, ...] = MNIST_MODELS,
    ezpc_max_real_relu: int = 64,
) -> list[ComparisonRow]:
    """Table VII rows: reported baselines + EzPC engine + PP-Stream."""
    cost_model = reference_cost_model()
    rows: list[ComparisonRow] = []
    for reported in REPORTED_LATENCIES:
        if reported.model_key in keys:
            rows.append(ComparisonRow(
                system=reported.system,
                model_key=reported.model_key,
                latency_seconds=reported.latency_seconds,
                provenance=f"reported ({reported.environment})",
            ))
    for key in keys:
        prepared = prepare_model(key)
        ezpc = EzPCBaseline(prepared.model,
                            max_real_relu=ezpc_max_real_relu)
        _, latency = ezpc.infer(prepared.dataset.test_x[0])
        rows.append(ComparisonRow(
            system="EzPC",
            model_key=key,
            latency_seconds=latency.total_seconds,
            provenance=(
                f"in-repo 2PC engine: {latency.rounds} rounds, "
                f"{latency.bytes_exchanged / 1e6:.1f} MB, "
                f"{latency.and_gates} AND gates"
            ),
        ))
    for key in keys:
        prepared = prepare_model(key)
        stages = prepared.stages()
        decimals = prepared.decimals
        times = profile_primitive_times(stages, cost_model, decimals)
        cluster = table_iii_cluster(key)
        allocation = allocate_load_balanced(
            stages, times, cluster, method="water_filling",
            use_tensor_partitioning=True,
            comm_model=make_comm_model(cost_model, True),
        )
        simulator = PipelineSimulator(allocation.plan, cost_model,
                                      decimals)
        rows.append(ComparisonRow(
            system="PP-Stream",
            model_key=key,
            latency_seconds=simulator.request_latency(),
            provenance="simulated, all features, Table III servers",
        ))
    return rows


def render_comparison(rows: list[ComparisonRow]) -> str:
    systems = []
    for row in rows:
        if row.system not in systems:
            systems.append(row.system)
    models = []
    for row in rows:
        if row.model_key not in models:
            models.append(row.model_key)
    by_pair = {(r.system, r.model_key): r for r in rows}
    table_rows = []
    for system in systems:
        cells = [system]
        for model in models:
            row = by_pair.get((system, model))
            cells.append(f"{row.latency_seconds:.2f}" if row else "-")
        table_rows.append(cells)
    return format_table(
        ["System"] + list(models),
        table_rows,
        "Table VII - inference latency (s) vs state-of-the-art",
    )
