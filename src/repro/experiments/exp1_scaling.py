"""Exp#1: scaling factors — Tables IV and V, plus Figure 6.

Tables IV/V: inference accuracy (the paper's (TP+TN)/(TP+TN+FP+FN)
metric, in percent) versus the scaling factor 10^f on the training and
testing sets of each model, with the factor the selection procedure
picks in bold (here: returned separately).

Figure 6: simulated inference latency versus the scaling factor, all
PP-Stream features enabled — larger factors mean longer scalars inside
Paillier scalar multiplications and hence higher latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MAX_SCALING_DECIMALS
from ..planner.allocation import allocate_load_balanced
from ..planner.profiling import profile_primitive_times
from ..scaling.parameter_scaling import scaling_factor_sweep
from ..simulate.simulator import PipelineSimulator
from ..simulate.stagecosts import make_comm_model
from .common import (
    ALL_MODELS,
    cluster_with_total_cores,
    prepare_model,
    reference_cost_model,
)
from .report import format_table


@dataclass(frozen=True)
class ScalingAccuracyRow:
    """Accuracy sweep of one model (percent, like the paper's tables)."""

    model_key: str
    train_by_decimals: dict[int, float]
    test_by_decimals: dict[int, float]
    selected_decimals: int
    original_train: float
    original_test: float


def run_accuracy_tables(
    keys: tuple[str, ...] = ALL_MODELS,
    max_decimals: int = MAX_SCALING_DECIMALS,
) -> list[ScalingAccuracyRow]:
    """Tables IV and V for the requested models."""
    rows = []
    for key in keys:
        prepared = prepare_model(key)
        dataset = prepared.dataset
        train = scaling_factor_sweep(
            prepared.model, dataset.train_x, dataset.train_y,
            dataset.num_classes, max_decimals,
        )
        test = scaling_factor_sweep(
            prepared.model, dataset.test_x, dataset.test_y,
            dataset.num_classes, max_decimals,
        )
        from ..scaling.parameter_scaling import _model_accuracy

        rows.append(ScalingAccuracyRow(
            model_key=key,
            train_by_decimals={f: 100 * a for f, a in train.items()},
            test_by_decimals={f: 100 * a for f, a in test.items()},
            selected_decimals=prepared.decimals,
            original_train=100 * _model_accuracy(
                prepared.model, dataset.train_x, dataset.train_y,
                dataset.num_classes,
            ),
            original_test=100 * _model_accuracy(
                prepared.model, dataset.test_x, dataset.test_y,
                dataset.num_classes,
            ),
        ))
    return rows


def render_accuracy_table(
    rows: list[ScalingAccuracyRow], which: str = "train"
) -> str:
    """Render Table IV (which="train") or Table V (which="test")."""
    decimals = sorted(next(iter(rows)).train_by_decimals) if rows else []
    headers = ["Model"] + [f"10^{f}" for f in decimals] \
        + ["Original", "Selected"]
    table_rows = []
    for row in rows:
        sweep = (row.train_by_decimals if which == "train"
                 else row.test_by_decimals)
        original = (row.original_train if which == "train"
                    else row.original_test)
        table_rows.append(
            [row.model_key]
            + [f"{sweep[f]:.2f}" for f in decimals]
            + [f"{original:.2f}", f"10^{row.selected_decimals}"]
        )
    title = ("Table IV - accuracy vs scaling factor (training set, %)"
             if which == "train"
             else "Table V - accuracy vs scaling factor (testing set, %)")
    return format_table(headers, table_rows, title)


@dataclass(frozen=True)
class ScalingLatencyRow:
    """Figure 6: latency (s) per scaling factor for one model."""

    model_key: str
    latency_by_decimals: dict[int, float]


def run_latency_vs_factor(
    keys: tuple[str, ...] = ("mnist-1", "mnist-2", "mnist-3"),
    total_cores: int = 48,
    max_decimals: int = MAX_SCALING_DECIMALS,
) -> list[ScalingLatencyRow]:
    """Figure 6: simulated latency at each scaling factor.

    All PP-Stream features on: merged stages, load-balanced allocation,
    tensor partitioning.  Latency depends only on the model's structure
    (operation counts), not its weights, so models are built untrained —
    this keeps the CIFAR VGG rows cheap.
    """
    from ..nn import model_zoo
    from ..planner.primitive import model_stages

    cost_model = reference_cost_model()
    rows = []
    for key in keys:
        stages = model_stages(model_zoo.build_model(key))
        cluster = cluster_with_total_cores(key, total_cores)
        latencies = {}
        for decimals in range(max_decimals + 1):
            times = profile_primitive_times(stages, cost_model, decimals)
            allocation = allocate_load_balanced(
                stages, times, cluster, method="water_filling",
                use_tensor_partitioning=True,
                comm_model=make_comm_model(cost_model, True),
            )
            simulator = PipelineSimulator(allocation.plan, cost_model,
                                          decimals)
            latencies[decimals] = simulator.request_latency()
        rows.append(ScalingLatencyRow(key, latencies))
    return rows


def render_latency_vs_factor(rows: list[ScalingLatencyRow]) -> str:
    decimals = sorted(next(iter(rows)).latency_by_decimals) if rows else []
    headers = ["Model"] + [f"10^{f}" for f in decimals]
    table_rows = [
        [row.model_key]
        + [f"{row.latency_by_decimals[f]:.3f}" for f in decimals]
        for row in rows
    ]
    return format_table(
        headers, table_rows,
        "Fig. 6 - inference latency (s) vs scaling factor",
    )
