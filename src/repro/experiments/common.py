"""Shared infrastructure for the experiment harness.

Centralizes the per-model pieces every experiment needs — synthetic
dataset, trained model, selected scaling factor, Table III cluster —
behind in-process caches so a benchmark session trains each model once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..costs import CostModel
from ..datasets import DATASET_SPECS, load_dataset
from ..datasets.synthetic import Dataset
from ..errors import ReproError
from ..nn.model import Sequential
from ..nn import model_zoo
from ..nn.training import SGDTrainer
from ..planner.plan import ClusterSpec
from ..planner.primitive import MergedPrimitive, model_stages
from ..scaling.parameter_scaling import ScalingDecision, \
    select_scaling_factor

#: Per-model training hyper-parameters (tuned for the synthetic data).
_TRAINING = {
    "breast": dict(learning_rate=0.1, epochs=15, batch_size=32),
    "heart": dict(learning_rate=0.1, epochs=15, batch_size=32),
    "cardio": dict(learning_rate=0.05, epochs=20, batch_size=64),
    "mnist-1": dict(learning_rate=0.1, epochs=12, batch_size=64),
    "mnist-2": dict(learning_rate=0.05, epochs=10, batch_size=32),
    "mnist-3": dict(learning_rate=0.05, epochs=10, batch_size=32),
    "cifar-10-1": dict(learning_rate=0.02, epochs=8, batch_size=32),
    "cifar-10-2": dict(learning_rate=0.02, epochs=8, batch_size=32),
    "cifar-10-3": dict(learning_rate=0.015, epochs=8, batch_size=32),
}

#: Cores per server in the paper's testbed.
TESTBED_CORES_PER_SERVER = 24

#: The six models Figures 7/8/9 report (healthcare + MNIST).
FIG_MODELS = ("breast", "heart", "cardio", "mnist-1", "mnist-2", "mnist-3")

#: All nine Table III models.
ALL_MODELS = model_zoo.MODEL_KEYS


@dataclass(frozen=True)
class PreparedModel:
    """A trained model with everything the experiments consume."""

    key: str
    model: Sequential
    dataset: Dataset
    scaling: ScalingDecision
    train_accuracy: float

    @property
    def decimals(self) -> int:
        return self.scaling.decimals

    def stages(self) -> list[MergedPrimitive]:
        return model_stages(self.model)


@lru_cache(maxsize=16)
def prepare_model(key: str, seed: int = 0) -> PreparedModel:
    """Train (and cache) one Table III model on its synthetic dataset,
    then run the paper's scaling-factor selection on the training set."""
    if key not in DATASET_SPECS:
        raise ReproError(f"unknown model key {key!r}")
    dataset = load_dataset(key)
    model = model_zoo.build_model(key, seed=seed)
    params = _TRAINING[key]
    trainer = SGDTrainer(
        model,
        learning_rate=params["learning_rate"],
        batch_size=params["batch_size"],
        seed=seed,
    )
    result = trainer.fit(dataset.train_x, dataset.train_y,
                         epochs=params["epochs"])
    scaling = select_scaling_factor(
        model, dataset.train_x, dataset.train_y, dataset.num_classes
    )
    return PreparedModel(
        key=key,
        model=model,
        dataset=dataset,
        scaling=scaling,
        train_accuracy=result.train_accuracy,
    )


def table_iii_cluster(
    key: str, cores_per_server: int = TESTBED_CORES_PER_SERVER
) -> ClusterSpec:
    """The Table III server split for a model, at a given core count."""
    spec = DATASET_SPECS[key]
    return ClusterSpec.homogeneous(
        model_servers=spec.model_servers,
        data_servers=spec.data_servers,
        cores_per_server=cores_per_server,
    )


def cluster_with_total_cores(key: str, total_cores: int) -> ClusterSpec:
    """Table III server split with ``total_cores`` spread across servers
    (the Exp#2/3/4 core sweeps)."""
    spec = DATASET_SPECS[key]
    return ClusterSpec.with_total_cores(
        total_cores,
        model_servers=spec.model_servers,
        data_servers=spec.data_servers,
    )


def reference_cost_model() -> CostModel:
    """The frozen 2048-bit testbed cost profile used by all latency
    experiments (deterministic; see repro.costs)."""
    return CostModel.reference()
