"""Sequential model container with shape checking and (de)serialization."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

import numpy as np

from ..errors import ModelError
from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ElementwiseScale,
    Flatten,
    FullyConnected,
    Layer,
    LayerKind,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    ScaledSigmoid,
    Sigmoid,
    SoftMax,
    Tanh,
)


class Sequential:
    """An ordered stack of layers with a declared per-sample input shape.

    The input shape is declared up front so layer compatibility is
    checked at construction time, and so planners can compute every
    intermediate shape without running data through the model.
    """

    def __init__(self, input_shape: Tuple[int, ...],
                 layers: Iterable[Layer] = (), name: str = "model"):
        self.input_shape = tuple(input_shape)
        self.name = name
        self.layers: List[Layer] = []
        for layer in layers:
            self.add(layer)

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer, validating shape compatibility."""
        shape = self.output_shape()
        layer.output_shape(shape)  # raises ModelError on mismatch
        self.layers.append(layer)
        return self

    def output_shape(self) -> Tuple[int, ...]:
        """Per-sample output shape of the current stack."""
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def layer_shapes(self) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """(input_shape, output_shape) for each layer, per sample."""
        shapes = []
        shape = self.input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            shapes.append((shape, out))
            shape = out
        return shapes

    # ------------------------------------------------------------------
    # Inference / training passes
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the whole stack on a batch."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def forward_logits(self, x: np.ndarray,
                       training: bool = False) -> np.ndarray:
        """Run the stack but stop before a trailing SoftMax.

        Training with cross-entropy uses the numerically fused
        softmax+CE gradient, so the trailing SoftMax layer is skipped.
        """
        layers = self.layers
        if layers and isinstance(layers[-1], SoftMax):
            layers = layers[:-1]
        for layer in layers:
            x = layer.forward(x, training=training)
        return x

    def backward_from_logits(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backpropagate from the logits (skipping a trailing SoftMax)."""
        layers = self.layers
        if layers and isinstance(layers[-1], SoftMax):
            layers = layers[:-1]
        grad = grad_logits
        for layer in reversed(layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the final activation)."""
        out = self.forward(np.asarray(x))
        if out.ndim != 2:
            raise ModelError(
                f"predict expects a classifier producing (N, D), got "
                f"{out.shape}"
            )
        return out.argmax(axis=1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def params(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def kinds(self) -> List[LayerKind]:
        return [layer.kind for layer in self.layers]

    def summary(self) -> str:
        """A human-readable table of layers, shapes, kinds, params."""
        lines = [f"Sequential '{self.name}' input={self.input_shape}"]
        for layer, (in_shape, out_shape) in zip(self.layers,
                                                self.layer_shapes()):
            lines.append(
                f"  {type(layer).__name__:<16} {layer.kind.value:<9} "
                f"{in_shape!s:>16} -> {out_shape!s:<16} "
                f"params={layer.param_count()}"
            )
        lines.append(f"  total params: {self.param_count()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-friendly dict of architecture + weights."""
        spec = []
        for layer in self.layers:
            spec.append({
                "type": type(layer).__name__,
                "config": _layer_config(layer),
                "params": [p.tolist() for p in layer.params()],
                "buffers": _layer_buffers(layer),
            })
        return {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": spec,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "Sequential":
        """Rebuild a model from :meth:`state_dict` output."""
        model = cls(tuple(state["input_shape"]), name=state.get("name",
                                                                "model"))
        for layer_state in state["layers"]:
            layer = _build_layer(layer_state["type"], layer_state["config"])
            for param, values in zip(layer.params(), layer_state["params"]):
                param[...] = np.asarray(values, dtype=np.float64)
            _restore_buffers(layer, layer_state.get("buffers", {}))
            model.add(layer)
        return model

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.state_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "Sequential":
        return cls.from_state_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"Sequential(name={self.name!r}, layers={len(self.layers)}, "
            f"params={self.param_count()})"
        )


def _layer_config(layer: Layer) -> dict:
    if isinstance(layer, FullyConnected):
        return {"in_features": layer.in_features,
                "out_features": layer.out_features}
    if isinstance(layer, Conv2d):
        return {
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "kernel": layer.kernel,
            "stride": layer.stride,
            "padding": layer.padding,
        }
    if isinstance(layer, BatchNorm):
        return {"num_features": layer.num_features,
                "momentum": layer.momentum, "eps": layer.eps}
    if isinstance(layer, (MaxPool2d, AvgPool2d)):
        return {"kernel": layer.kernel, "stride": layer.stride}
    if isinstance(layer, ElementwiseScale):
        return {"scale": float(layer.scale[0])}
    if isinstance(layer, ScaledSigmoid):
        return {"scale": float(layer.scale[0])}
    if isinstance(layer, LeakyReLU):
        return {"alpha": layer.alpha}
    return {}


def _layer_buffers(layer: Layer) -> dict:
    if isinstance(layer, BatchNorm):
        return {
            "running_mean": layer.running_mean.tolist(),
            "running_var": layer.running_var.tolist(),
        }
    return {}


def _restore_buffers(layer: Layer, buffers: dict) -> None:
    if isinstance(layer, BatchNorm) and buffers:
        layer.running_mean = np.asarray(buffers["running_mean"])
        layer.running_var = np.asarray(buffers["running_var"])


_LAYER_TYPES = {
    "FullyConnected": FullyConnected,
    "Conv2d": Conv2d,
    "BatchNorm": BatchNorm,
    "ReLU": ReLU,
    "LeakyReLU": LeakyReLU,
    "Sigmoid": Sigmoid,
    "SoftMax": SoftMax,
    "Tanh": Tanh,
    "MaxPool2d": MaxPool2d,
    "AvgPool2d": AvgPool2d,
    "Flatten": Flatten,
    "ElementwiseScale": ElementwiseScale,
    "ScaledSigmoid": ScaledSigmoid,
}


def _build_layer(type_name: str, config: dict) -> Layer:
    layer_cls = _LAYER_TYPES.get(type_name)
    if layer_cls is None:
        raise ModelError(f"unknown layer type in state dict: {type_name}")
    return layer_cls(**config)
