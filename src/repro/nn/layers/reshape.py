"""Shape-manipulation layers (no arithmetic, classified linear)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...errors import ModelError
from .base import Layer, LayerKind, OpCounts


class Flatten(Layer):
    """Flatten (N, C, H, W) (or any batch tensor) to (N, D).

    Pure data movement; it carries no homomorphic cost and row-major
    order matches the obfuscator's lexicographic reshaping
    (Section III-C).
    """

    name = "flatten"

    def __init__(self) -> None:
        self._input_shape: Tuple[int, ...] | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim < 2:
            raise ModelError(
                f"Flatten expects a batch tensor, got shape {x.shape}"
            )
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ModelError("backward called before a training forward")
        return grad_output.reshape(self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = int(np.prod(input_shape))
        return OpCounts(input_size=size, output_size=size)
