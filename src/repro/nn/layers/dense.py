"""Fully-connected (dense) layer — a linear layer in the paper's taxonomy."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...errors import ModelError
from .base import Layer, LayerKind, OpCounts, require_shape


class FullyConnected(Layer):
    """Affine map ``y = x W^T + b``.

    Weights are He-initialized.  This is the layer the paper's Eq. (3)
    evaluates homomorphically: each output element costs ``in_features``
    ciphertext scalar-multiplications and additions.

    Attributes:
        weight: (out_features, in_features) float64.
        bias: (out_features,) float64.
    """

    name = "fc"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ):
        if in_features < 1 or out_features < 1:
            raise ModelError(
                f"feature counts must be positive, got {in_features} -> "
                f"{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        if rng is None:
            rng = np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.standard_normal(
            (out_features, in_features)
        ) * scale
        self.bias = np.zeros(out_features)
        self._grad_weight = np.zeros_like(self.weight)
        self._grad_bias = np.zeros_like(self.bias)
        self._cached_input: np.ndarray | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = require_shape(x, 2, "FullyConnected")
        if x.shape[1] != self.in_features:
            raise ModelError(
                f"expected {self.in_features} input features, got "
                f"{x.shape[1]}"
            )
        if training:
            self._cached_input = x
        return x @ self.weight.T + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise ModelError("backward called before a training forward")
        x = self._cached_input
        self._grad_weight = grad_output.T @ x
        self._grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weight

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ModelError(
                f"FullyConnected expects input shape ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        self.output_shape(input_shape)
        muls = self.in_features * self.out_features
        adds = self.in_features * self.out_features  # includes bias merge
        return OpCounts(
            ciphertext_muls=muls,
            ciphertext_adds=adds,
            input_size=self.in_features,
            output_size=self.out_features,
        )

    def params(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> List[np.ndarray]:
        return [self._grad_weight, self._grad_bias]

    def __repr__(self) -> str:
        return f"FullyConnected({self.in_features} -> {self.out_features})"
