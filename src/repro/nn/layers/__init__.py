"""Layer implementations for the numpy NN engine."""

from .base import Layer, LayerKind, OpCounts
from .dense import FullyConnected
from .conv import Conv2d
from .normalization import BatchNorm
from .activations import (
    ElementwiseScale,
    LeakyReLU,
    ReLU,
    ScaledSigmoid,
    Sigmoid,
    SoftMax,
    Tanh,
)
from .pooling import AvgPool2d, MaxPool2d
from .reshape import Flatten

__all__ = [
    "Layer",
    "LayerKind",
    "OpCounts",
    "FullyConnected",
    "Conv2d",
    "BatchNorm",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "SoftMax",
    "Tanh",
    "ElementwiseScale",
    "ScaledSigmoid",
    "AvgPool2d",
    "MaxPool2d",
    "Flatten",
]
