"""Pooling layers and the MaxPool -> stride-2 conv + ReLU rewrite.

MaxPooling is position-sensitive, so it cannot run on obfuscated tensors
(Section III-C).  The paper's fix — replacing MaxPool with a stride-2
convolution plus ReLU (Springenberg et al., ICLR 2015) — is implemented
here as :func:`maxpool_replacement`, which the model zoo applies when
building privacy-ready VGG variants.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...errors import ModelError
from .base import Layer, LayerKind, OpCounts, require_shape
from .activations import ReLU
from .conv import Conv2d, conv_output_hw


class MaxPool2d(Layer):
    """Non-overlapping square max pooling over (N, C, H, W)."""

    name = "maxpool"

    #: Planner flag: this non-linearity must see non-permuted input.
    position_sensitive = True

    def __init__(self, kernel: int = 2, stride: int | None = None):
        if kernel < 1:
            raise ModelError("kernel must be positive")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self._cache: tuple | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NONLINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = require_shape(x, 4, "MaxPool2d")
        n, c, h, w = x.shape
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, 0)
        out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
        argmax = np.empty((n, c, out_h, out_w), dtype=np.int64)
        for i in range(out_h):
            top = i * self.stride
            for j in range(out_w):
                left = j * self.stride
                window = x[:, :, top:top + self.kernel,
                           left:left + self.kernel].reshape(n, c, -1)
                out[:, :, i, j] = window.max(axis=2)
                argmax[:, :, i, j] = window.argmax(axis=2)
        if training:
            self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward called before a training forward")
        input_shape, argmax = self._cache
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        n, c, out_h, out_w = grad_output.shape
        for i in range(out_h):
            top = i * self.stride
            for j in range(out_w):
                left = j * self.stride
                flat_idx = argmax[:, :, i, j]
                di = flat_idx // self.kernel
                dj = flat_idx % self.kernel
                for batch in range(n):
                    for channel in range(c):
                        grad_input[
                            batch, channel,
                            top + di[batch, channel],
                            left + dj[batch, channel],
                        ] += grad_output[batch, channel, i, j]
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ModelError(
                f"MaxPool2d expects (C, H, W) input, got {input_shape}"
            )
        out_h, out_w = conv_output_hw(
            input_shape[1], input_shape[2], self.kernel, self.stride, 0
        )
        return (input_shape[0], out_h, out_w)

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        out_shape = self.output_shape(input_shape)
        out_size = int(np.prod(out_shape))
        return OpCounts(
            plain_ops=out_size * self.kernel * self.kernel,
            input_size=int(np.prod(input_shape)),
            output_size=out_size,
        )


class AvgPool2d(Layer):
    """Non-overlapping average pooling — linear, unlike MaxPool."""

    name = "avgpool"

    def __init__(self, kernel: int = 2, stride: int | None = None):
        if kernel < 1:
            raise ModelError("kernel must be positive")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self._input_shape: Tuple[int, ...] | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = require_shape(x, 4, "AvgPool2d")
        n, c, h, w = x.shape
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, 0)
        out = np.empty((n, c, out_h, out_w), dtype=np.float64)
        for i in range(out_h):
            top = i * self.stride
            for j in range(out_w):
                left = j * self.stride
                out[:, :, i, j] = x[:, :, top:top + self.kernel,
                                    left:left + self.kernel].mean(axis=(2, 3))
        if training:
            self._input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ModelError("backward called before a training forward")
        grad_input = np.zeros(self._input_shape, dtype=grad_output.dtype)
        share = 1.0 / (self.kernel * self.kernel)
        n, c, out_h, out_w = grad_output.shape
        for i in range(out_h):
            top = i * self.stride
            for j in range(out_w):
                left = j * self.stride
                grad_input[:, :, top:top + self.kernel,
                           left:left + self.kernel] += (
                    grad_output[:, :, i:i + 1, j:j + 1] * share
                )
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ModelError(
                f"AvgPool2d expects (C, H, W) input, got {input_shape}"
            )
        out_h, out_w = conv_output_hw(
            input_shape[1], input_shape[2], self.kernel, self.stride, 0
        )
        return (input_shape[0], out_h, out_w)

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        out_shape = self.output_shape(input_shape)
        out_size = int(np.prod(out_shape))
        # Averaging is a fixed linear map: one scalar mult per window
        # element under encryption.
        window = self.kernel * self.kernel
        return OpCounts(
            ciphertext_muls=out_size * window,
            ciphertext_adds=out_size * window,
            input_size=int(np.prod(input_shape)),
            output_size=out_size,
        )


def maxpool_replacement(
    channels: int, rng: np.random.Generator | None = None
) -> List[Layer]:
    """The paper's MaxPool substitute: stride-2 conv (2x2) + ReLU.

    Produces a depthwise-ish learnable downsampling with the same output
    geometry as a 2x2/stride-2 MaxPool.  Initialized near an average
    pool (all window taps 0.25 on the matching channel) so pre-trained
    behaviour is sensible even before fine-tuning.
    """
    conv = Conv2d(channels, channels, kernel=2, stride=2, padding=0,
                  rng=rng)
    conv.weight[:] = 0.0
    for channel in range(channels):
        conv.weight[channel, channel, :, :] = 0.25
    if rng is not None:
        conv.weight += rng.standard_normal(conv.weight.shape) * 0.01
    return [conv, ReLU()]
