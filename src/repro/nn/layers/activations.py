"""Activation layers: ReLU, Sigmoid, SoftMax, and the mixed ScaledSigmoid.

The paper's protocol places these at the data provider.  ReLU and
Sigmoid commute with permutations (element-wise), so they run on
obfuscated tensors; SoftMax does not, so the protocol only ever applies
it in the final, non-obfuscated round (Section III-C).

``ScaledSigmoid`` reproduces the paper's canonical *mixed* layer
(Figure 2's Sigmoid with a learnable scalar multiplication): it
decomposes into an ``ElementwiseScale`` linear primitive followed by a
``Sigmoid`` non-linear primitive.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...errors import ModelError
from .base import Layer, LayerKind, OpCounts


def _flat_size(shape: Tuple[int, ...]) -> int:
    size = 1
    for dim in shape:
        size *= dim
    return size


class ReLU(Layer):
    """Element-wise ``max(0, x)`` — permutation-compatible non-linearity."""

    name = "relu"

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NONLINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before a training forward")
        return grad_output * self._mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = _flat_size(input_shape)
        return OpCounts(plain_ops=size, input_size=size, output_size=size)


class Sigmoid(Layer):
    """Element-wise logistic function — permutation-compatible."""

    name = "sigmoid"

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NONLINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        out = np.empty_like(x, dtype=np.float64)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ModelError("backward called before a training forward")
        return grad_output * self._output * (1.0 - self._output)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = _flat_size(input_shape)
        # exp + divide per element: count 4 elementary plain ops.
        return OpCounts(plain_ops=4 * size, input_size=size,
                        output_size=size)


class Tanh(Layer):
    """Element-wise hyperbolic tangent — permutation-compatible."""

    name = "tanh"

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NONLINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(np.asarray(x))
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ModelError("backward called before a training forward")
        return grad_output * (1.0 - self._output ** 2)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = _flat_size(input_shape)
        return OpCounts(plain_ops=4 * size, input_size=size,
                        output_size=size)


class LeakyReLU(Layer):
    """Element-wise ``max(x, alpha * x)`` — permutation-compatible."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01):
        if not 0 <= alpha < 1:
            raise ModelError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NONLINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        if training:
            self._mask = x > 0
        return np.where(x > 0, x, self.alpha * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before a training forward")
        return grad_output * np.where(self._mask, 1.0, self.alpha)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = _flat_size(input_shape)
        return OpCounts(plain_ops=2 * size, input_size=size,
                        output_size=size)


class SoftMax(Layer):
    """Row-wise softmax over (N, D) logits.

    Position-sensitive, so the protocol never obfuscates its input
    (Section III-C); the planner asserts it only appears in the final
    non-linear primitive layer.
    """

    name = "softmax"

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NONLINEAR

    #: Planner flag: this non-linearity must see non-permuted input.
    position_sensitive = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2:
            raise ModelError(
                f"SoftMax expects (N, D) logits, got shape {x.shape}"
            )
        shifted = x - x.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1:
            raise ModelError(
                f"SoftMax expects flat input, got {input_shape}"
            )
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = _flat_size(input_shape)
        return OpCounts(plain_ops=5 * size, input_size=size,
                        output_size=size)


class ElementwiseScale(Layer):
    """Element-wise multiplication by a learnable scalar (linear).

    The linear primitive that a mixed :class:`ScaledSigmoid` decomposes
    into.
    """

    name = "scale"

    def __init__(self, scale: float = 1.0):
        self.scale = np.array([float(scale)])
        self._grad_scale = np.zeros(1)
        self._cached_input: np.ndarray | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        if training:
            self._cached_input = x
        return x * self.scale[0]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise ModelError("backward called before a training forward")
        self._grad_scale = np.array(
            [float((grad_output * self._cached_input).sum())]
        )
        return grad_output * self.scale[0]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = _flat_size(input_shape)
        return OpCounts(ciphertext_muls=size, input_size=size,
                        output_size=size)

    def params(self) -> List[np.ndarray]:
        return [self.scale]

    def grads(self) -> List[np.ndarray]:
        return [self._grad_scale]


class ScaledSigmoid(Layer):
    """``sigmoid(scale * x)`` — the paper's canonical MIXED layer.

    Contains both a linear operation (scalar multiplication between the
    input and a model parameter) and a non-linear one (exponentiation),
    exactly the Figure 2 example.  The planner decomposes it into its
    :class:`ElementwiseScale` and :class:`Sigmoid` primitives.
    """

    name = "scaled_sigmoid"

    def __init__(self, scale: float = 1.0):
        self._scale_layer = ElementwiseScale(scale)
        self._sigmoid = Sigmoid()

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MIXED

    @property
    def scale(self) -> np.ndarray:
        return self._scale_layer.scale

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self._sigmoid.forward(
            self._scale_layer.forward(x, training), training
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self._scale_layer.backward(
            self._sigmoid.backward(grad_output)
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        return self._scale_layer.op_counts(input_shape).merge(
            self._sigmoid.op_counts(input_shape)
        )

    def params(self) -> List[np.ndarray]:
        return self._scale_layer.params()

    def grads(self) -> List[np.ndarray]:
        return self._scale_layer.grads()

    def decompose(self) -> List[Layer]:
        return [self._scale_layer, self._sigmoid]
