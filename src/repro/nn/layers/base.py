"""Layer abstraction shared by the whole NN engine.

Every layer declares a :class:`LayerKind` — linear, non-linear, or mixed
(Section II-A of the paper) — which drives the planner's primitive-layer
extraction.  Layers also report :class:`OpCounts` for a given input
shape, the per-inference homomorphic-operation counts that feed the
simulator's cost model and the profiler's CPU-time estimates.

Shape convention: activations are batch-first numpy arrays.  Image
tensors are ``(N, C, H, W)``; flat tensors are ``(N, D)``.  ``forward``
takes and returns a full batch; ``backward`` takes the loss gradient of
the layer output and returns the gradient of the input, accumulating
parameter gradients internally for the optimizer.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ...errors import ModelError


class LayerKind(enum.Enum):
    """Operation category of a hidden layer (paper Section II-A)."""

    LINEAR = "linear"
    NONLINEAR = "nonlinear"
    MIXED = "mixed"


@dataclass(frozen=True)
class OpCounts:
    """Per-inference operation counts of one layer.

    Homomorphic cost drivers (ciphertext ops) for linear layers, and
    element counts for non-linear layers, for one input tensor (batch
    size 1).

    Attributes:
        ciphertext_muls: scalar multiplications ``E(m)^w`` performed.
        ciphertext_adds: ciphertext-ciphertext additions performed.
        plain_ops: plaintext elementary operations (non-linear layers).
        input_size: flat element count of the input tensor.
        output_size: flat element count of the output tensor.
    """

    ciphertext_muls: int = 0
    ciphertext_adds: int = 0
    plain_ops: int = 0
    input_size: int = 0
    output_size: int = 0

    def merge(self, other: "OpCounts") -> "OpCounts":
        """Combine counts of two fused layers (input of first, output of
        last, summed operation counts)."""
        return OpCounts(
            ciphertext_muls=self.ciphertext_muls + other.ciphertext_muls,
            ciphertext_adds=self.ciphertext_adds + other.ciphertext_adds,
            plain_ops=self.plain_ops + other.plain_ops,
            input_size=self.input_size,
            output_size=other.output_size,
        )


class Layer(ABC):
    """Abstract base class of every layer in the engine."""

    #: Human-readable layer name (class default; instances may override).
    name: str = "layer"

    @property
    @abstractmethod
    def kind(self) -> LayerKind:
        """Linear / non-linear / mixed classification."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer on a batch; caches what backward needs when
        ``training`` is true."""

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/d(output)`` to ``dL/d(input)``.

        Layers that support training override this; inference-only
        layers inherit the error.
        """
        raise ModelError(f"{type(self).__name__} does not support backward")

    @abstractmethod
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a per-sample input shape (no batch
        dimension)."""

    @abstractmethod
    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        """Operation counts for one input tensor of ``input_shape``."""

    # -- parameters -----------------------------------------------------

    def params(self) -> List[np.ndarray]:
        """Trainable parameter arrays (mutated in place by optimizers)."""
        return []

    def grads(self) -> List[np.ndarray]:
        """Gradient arrays aligned with :meth:`params`."""
        return []

    def param_count(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.params())

    # -- mixed-layer decomposition (paper Section IV-B) -----------------

    def decompose(self) -> List["Layer"]:
        """Split a MIXED layer into primitive linear/non-linear layers.

        Linear and non-linear layers return themselves; mixed layers
        must override and return their primitive parts in order.
        """
        if self.kind is LayerKind.MIXED:
            raise ModelError(
                f"mixed layer {type(self).__name__} must override decompose()"
            )
        return [self]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind.value})"


def require_shape(x: np.ndarray, ndim: int, what: str) -> np.ndarray:
    """Validate the batch rank of an activation tensor."""
    x = np.asarray(x)
    if x.ndim != ndim:
        raise ModelError(
            f"{what} expects a {ndim}-D batch tensor, got shape {x.shape}"
        )
    return x
