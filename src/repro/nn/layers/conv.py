"""2-D convolution layer (linear), implemented with im2col.

Convolution is the layer the paper's tensor partitioning targets
(Section IV-D): every output element depends on a local receptive field,
so input sub-tensors can be sent to threads instead of whole tensors.
The im2col machinery here is reused by :mod:`repro.partitioning` to
compute those receptive fields.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...errors import ModelError
from .base import Layer, LayerKind, OpCounts, require_shape


def conv_output_hw(
    height: int, width: int, kernel: int, stride: int, padding: int
) -> Tuple[int, int]:
    """Spatial output size of a convolution."""
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ModelError(
            f"kernel {kernel}/stride {stride}/padding {padding} too large "
            f"for input {height}x{width}"
        )
    return out_h, out_w


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold (N, C, H, W) into (N, out_h*out_w, C*kernel*kernel)."""
    n, c, h, w = x.shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, padding)
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    cols = np.empty((n, out_h * out_w, c * kernel * kernel), dtype=x.dtype)
    idx = 0
    for i in range(out_h):
        top = i * stride
        for j in range(out_w):
            left = j * stride
            patch = x[:, :, top:top + kernel, left:left + kernel]
            cols[:, idx, :] = patch.reshape(n, -1)
            idx += 1
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold (N, out_h*out_w, C*k*k) gradients back to (N, C, H, W)."""
    n, c, h, w = input_shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                      dtype=cols.dtype)
    idx = 0
    for i in range(out_h):
        top = i * stride
        for j in range(out_w):
            left = j * stride
            padded[:, :, top:top + kernel, left:left + kernel] += (
                cols[:, idx, :].reshape(n, c, kernel, kernel)
            )
            idx += 1
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Layer):
    """Square-kernel 2-D convolution over (N, C, H, W) tensors.

    Attributes:
        weight: (out_channels, in_channels, kernel, kernel).
        bias: (out_channels,).
    """

    name = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
    ):
        if min(in_channels, out_channels, kernel, stride) < 1:
            raise ModelError("conv dimensions must be positive")
        if padding < 0:
            raise ModelError("padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        if rng is None:
            rng = np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.weight = rng.standard_normal(
            (out_channels, in_channels, kernel, kernel)
        ) * np.sqrt(2.0 / fan_in)
        self.bias = np.zeros(out_channels)
        self._grad_weight = np.zeros_like(self.weight)
        self._grad_bias = np.zeros_like(self.bias)
        self._cached_cols: np.ndarray | None = None
        self._cached_input_shape: Tuple[int, int, int, int] | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = require_shape(x, 4, "Conv2d")
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ModelError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride,
                                      self.padding)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        if training:
            self._cached_cols = cols
            self._cached_input_shape = x.shape
        flat_w = self.weight.reshape(self.out_channels, -1)
        out = cols @ flat_w.T + self.bias  # (N, oh*ow, out_c)
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, out_h,
                                              out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_cols is None or self._cached_input_shape is None:
            raise ModelError("backward called before a training forward")
        n = grad_output.shape[0]
        grad_flat = grad_output.reshape(n, self.out_channels, -1)
        grad_flat = grad_flat.transpose(0, 2, 1)  # (N, oh*ow, out_c)
        flat_w = self.weight.reshape(self.out_channels, -1)
        self._grad_weight = np.einsum(
            "npo,npk->ok", grad_flat, self._cached_cols
        ).reshape(self.weight.shape)
        self._grad_bias = grad_flat.sum(axis=(0, 1))
        grad_cols = grad_flat @ flat_w  # (N, oh*ow, C*k*k)
        return col2im(grad_cols, self._cached_input_shape, self.kernel,
                      self.stride, self.padding)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ModelError(
                f"Conv2d expects input shape ({self.in_channels}, H, W), "
                f"got {input_shape}"
            )
        out_h, out_w = conv_output_hw(
            input_shape[1], input_shape[2], self.kernel, self.stride,
            self.padding
        )
        return (self.out_channels, out_h, out_w)

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        out_c, out_h, out_w = self.output_shape(input_shape)
        per_output = self.in_channels * self.kernel * self.kernel
        outputs = out_c * out_h * out_w
        return OpCounts(
            ciphertext_muls=outputs * per_output,
            ciphertext_adds=outputs * per_output,
            input_size=int(np.prod(input_shape)),
            output_size=outputs,
        )

    def params(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> List[np.ndarray]:
        return [self._grad_weight, self._grad_bias]

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels} -> {self.out_channels}, "
            f"k={self.kernel}, s={self.stride}, p={self.padding})"
        )
