"""Batch normalization — a linear layer at inference time.

At inference, BN is an affine per-channel map using running statistics,
which is why the paper classifies it as a linear layer (Figure 2): it
folds into the homomorphic pipeline as an element-wise scale-and-shift.
Training mode computes batch statistics and maintains running averages.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...errors import ModelError
from .base import Layer, LayerKind, OpCounts


class BatchNorm(Layer):
    """Per-channel batch normalization for 2-D (N, D) or 4-D (N, C, H, W).

    Attributes:
        gamma, beta: learnable scale and shift per channel/feature.
        running_mean, running_var: inference statistics.
    """

    name = "batchnorm"

    def __init__(self, num_features: int, momentum: float = 0.9,
                 eps: float = 1e-5):
        if num_features < 1:
            raise ModelError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._grad_gamma = np.zeros_like(self.gamma)
        self._grad_beta = np.zeros_like(self.beta)
        self._cache: tuple | None = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    def _reshape_params(self, ndim: int) -> Tuple[np.ndarray, ...]:
        if ndim == 2:
            shape = (1, self.num_features)
        elif ndim == 4:
            shape = (1, self.num_features, 1, 1)
        else:
            raise ModelError(f"BatchNorm supports 2-D or 4-D input, got "
                             f"{ndim}-D")
        return tuple(
            arr.reshape(shape)
            for arr in (self.gamma, self.beta, self.running_mean,
                        self.running_var)
        )

    def _channel_axes(self, ndim: int) -> Tuple[int, ...]:
        return (0,) if ndim == 2 else (0, 2, 3)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x)
        gamma, beta, run_mean, run_var = self._reshape_params(x.ndim)
        if x.shape[1] != self.num_features:
            raise ModelError(
                f"expected {self.num_features} channels, got {x.shape[1]}"
            )
        if training:
            axes = self._channel_axes(x.ndim)
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean) * inv_std
            count = x.size // self.num_features
            self.running_mean = (
                self.momentum * self.running_mean
                + (1 - self.momentum) * mean.reshape(-1)
            )
            self.running_var = (
                self.momentum * self.running_var
                + (1 - self.momentum) * var.reshape(-1)
            )
            self._cache = (x_hat, inv_std, gamma, axes, count)
            return gamma * x_hat + beta
        inv_std = 1.0 / np.sqrt(run_var + self.eps)
        return gamma * (x - run_mean) * inv_std + beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward called before a training forward")
        x_hat, inv_std, gamma, axes, count = self._cache
        self._grad_gamma = (grad_output * x_hat).sum(axis=axes)
        self._grad_beta = grad_output.sum(axis=axes)
        grad_xhat = grad_output * gamma
        sum_grad = grad_xhat.sum(axis=axes, keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
        return (
            inv_std / count
            * (count * grad_xhat - sum_grad - x_hat * sum_grad_xhat)
        )

    def inference_affine(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fold running stats into per-channel (scale, shift).

        This is what the homomorphic pipeline evaluates: BN at inference
        is exactly ``y = scale * x + shift``.
        """
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma * inv_std
        shift = self.beta - self.running_mean * scale
        return scale, shift

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if not input_shape or input_shape[0] != self.num_features:
            raise ModelError(
                f"BatchNorm expects leading channel dim {self.num_features}, "
                f"got {input_shape}"
            )
        return input_shape

    def op_counts(self, input_shape: Tuple[int, ...]) -> OpCounts:
        size = int(np.prod(input_shape))
        return OpCounts(
            ciphertext_muls=size,
            ciphertext_adds=size,
            input_size=size,
            output_size=size,
        )

    def params(self) -> List[np.ndarray]:
        return [self.gamma, self.beta]

    def grads(self) -> List[np.ndarray]:
        return [self._grad_gamma, self._grad_beta]

    def __repr__(self) -> str:
        return f"BatchNorm({self.num_features})"
