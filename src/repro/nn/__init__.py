"""Neural-network substrate: layers, models, training, metrics, zoo.

The paper assumes a trained model exists (trained with PyTorch/Matlab);
this reproduction trains its own models, so the subpackage provides a
complete numpy inference *and* training engine for the layer types the
paper's models use (Figure 2, Table III): fully-connected, convolution,
batch normalization, ReLU, Sigmoid, SoftMax, max/average pooling, and
flatten — plus the MaxPool -> stride-2-conv + ReLU rewrite of
Section III-C.
"""

from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ElementwiseScale,
    Flatten,
    FullyConnected,
    Layer,
    LayerKind,
    MaxPool2d,
    OpCounts,
    ReLU,
    ScaledSigmoid,
    Sigmoid,
    SoftMax,
)
from .model import Sequential
from .metrics import accuracy, confusion_counts
from .rewrite import (
    LayerPruneStats,
    PruneReport,
    count_position_sensitive,
    prune_model,
    rewrite_for_privacy,
)
from .training import SGDTrainer, TrainingResult
from . import model_zoo

__all__ = [
    "AvgPool2d",
    "BatchNorm",
    "Conv2d",
    "ElementwiseScale",
    "Flatten",
    "FullyConnected",
    "Layer",
    "LayerKind",
    "MaxPool2d",
    "OpCounts",
    "ReLU",
    "ScaledSigmoid",
    "Sigmoid",
    "SoftMax",
    "Sequential",
    "accuracy",
    "confusion_counts",
    "LayerPruneStats",
    "PruneReport",
    "count_position_sensitive",
    "prune_model",
    "rewrite_for_privacy",
    "SGDTrainer",
    "TrainingResult",
    "model_zoo",
]
