"""Minibatch SGD training for the numpy NN engine.

The paper trains its models externally (PyTorch / Matlab); this
reproduction trains in-repo.  The trainer uses fused softmax +
cross-entropy gradients (skipping any trailing SoftMax layer of the
model), SGD with momentum, and optional weight decay.  It is tuned for
the small synthetic datasets in :mod:`repro.datasets` — convergence in a
handful of epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import TrainingError
from .metrics import top1_accuracy
from .model import Sequential


@dataclass
class TrainingResult:
    """Summary of a training run.

    Attributes:
        epochs: epochs completed.
        losses: mean cross-entropy loss per epoch.
        train_accuracy: top-1 training accuracy after the final epoch.
    """

    epochs: int
    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Fused loss and gradient: returns (mean CE loss, dL/dlogits)."""
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    label_probs = probs[np.arange(n), labels]
    loss = float(-np.log(np.clip(label_probs, 1e-12, None)).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


class SGDTrainer:
    """Minibatch SGD with momentum and optional weight decay."""

    def __init__(
        self,
        model: Sequential,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        batch_size: int = 32,
        seed: int = 0,
    ):
        if learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise TrainingError("momentum must be in [0, 1)")
        if batch_size < 1:
            raise TrainingError("batch_size must be >= 1")
        self.model = model
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._velocity = [np.zeros_like(p) for p in model.params()]

    def train_epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One pass over the data; returns the mean loss."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise TrainingError(
                f"data/label count mismatch: {x.shape[0]} vs {y.shape[0]}"
            )
        order = self._rng.permutation(x.shape[0])
        total_loss = 0.0
        batches = 0
        for start in range(0, x.shape[0], self.batch_size):
            batch_idx = order[start:start + self.batch_size]
            logits = self.model.forward_logits(x[batch_idx], training=True)
            loss, grad = softmax_cross_entropy(logits, y[batch_idx])
            self.model.backward_from_logits(grad)
            self._apply_update()
            total_loss += loss
            batches += 1
        if batches == 0:
            raise TrainingError("empty training set")
        return total_loss / batches

    def _apply_update(self) -> None:
        params = self.model.params()
        grads = self.model.grads()
        if len(self._velocity) != len(params):
            raise TrainingError("model parameter list changed mid-training")
        for velocity, param, grad in zip(self._velocity, params, grads):
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        verbose: bool = False,
    ) -> TrainingResult:
        """Train for ``epochs`` passes and report the result."""
        if epochs < 1:
            raise TrainingError("epochs must be >= 1")
        result = TrainingResult(epochs=epochs)
        for epoch in range(epochs):
            loss = self.train_epoch(x, y)
            result.losses.append(loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: loss={loss:.4f}")
            if not np.isfinite(loss):
                raise TrainingError(
                    f"training diverged at epoch {epoch + 1} (loss={loss})"
                )
        predictions = self.model.predict(np.asarray(x, dtype=np.float64))
        result.train_accuracy = top1_accuracy(predictions, np.asarray(y))
        return result
