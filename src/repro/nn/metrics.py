"""Inference-accuracy metric exactly as the paper defines it.

Section IV-A: accuracy = (TP + TN) / (TP + TN + FP + FN), computed
one-vs-rest and micro-averaged for multi-class problems.  For binary and
multi-class classification alike this reduces to per-class confusion
counts summed over classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError


@dataclass(frozen=True)
class ConfusionCounts:
    """Micro-averaged one-vs-rest confusion counts.

    Attributes:
        tp, tn, fp, fn: summed over all classes.
    """

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def accuracy(self) -> float:
        total = self.tp + self.tn + self.fp + self.fn
        if total == 0:
            raise ModelError("no samples to compute accuracy over")
        return (self.tp + self.tn) / total


def confusion_counts(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> ConfusionCounts:
    """One-vs-rest confusion counts summed over classes.

    Args:
        predictions: (N,) integer predicted classes.
        labels: (N,) integer true classes.
        num_classes: number of classes.
    """
    predictions = np.asarray(predictions).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predictions.shape != labels.shape:
        raise ModelError(
            f"predictions and labels differ in length: "
            f"{predictions.shape} vs {labels.shape}"
        )
    if num_classes < 2:
        raise ModelError("num_classes must be >= 2")
    tp = tn = fp = fn = 0
    for cls in range(num_classes):
        pred_pos = predictions == cls
        true_pos = labels == cls
        tp += int(np.sum(pred_pos & true_pos))
        tn += int(np.sum(~pred_pos & ~true_pos))
        fp += int(np.sum(pred_pos & ~true_pos))
        fn += int(np.sum(~pred_pos & true_pos))
    return ConfusionCounts(tp=tp, tn=tn, fp=fp, fn=fn)


def accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> float:
    """The paper's accuracy metric, as a fraction in [0, 1].

    For the one-vs-rest micro-average this equals plain top-1 accuracy
    when ``num_classes == 2`` and is a monotone transform of it
    otherwise; the paper reports it in percent.
    """
    return confusion_counts(predictions, labels, num_classes).accuracy


def top1_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Plain fraction of exactly-correct predictions."""
    predictions = np.asarray(predictions).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predictions.shape != labels.shape:
        raise ModelError("predictions and labels differ in length")
    if predictions.size == 0:
        raise ModelError("no samples to compute accuracy over")
    return float(np.mean(predictions == labels))
