"""The nine evaluation models of Table III, built privacy-ready.

Builders for 3FC, 1Conv+2FC, 2Conv+2FC, and VGG13/16/19, matching the
paper's dataset/model pairings.  "Privacy-ready" means MaxPool is
already replaced by the stride-2-conv + ReLU substitution of
Section III-C, so every layer is either linear or a
permutation-compatible (or final) non-linearity.

The VGG builders accept a ``base_width`` multiplier (the paper's VGG
uses 64): pure-numpy training at full width is impractical in this
environment, so the default is 8 — the layer *structure* (depth, block
pattern, linear/non-linear alternation) is unchanged, which is what the
planner, partitioner, and all latency experiments consume.  Full-width
models can still be built for simulator-only studies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from .layers import (
    BatchNorm,
    Conv2d,
    Flatten,
    FullyConnected,
    ReLU,
    SoftMax,
)
from .layers.pooling import maxpool_replacement
from .model import Sequential

#: Per-block conv counts of the VGG variants (Simonyan & Zisserman 2014).
VGG_BLOCKS = {
    "vgg13": (2, 2, 2, 2, 2),
    "vgg16": (2, 2, 3, 3, 3),
    "vgg19": (2, 2, 4, 4, 4),
}


def three_fc(
    in_features: int,
    num_classes: int,
    hidden: Sequence[int] = (64, 32),
    seed: int = 0,
    name: str = "3FC",
) -> Sequential:
    """3FC: three fully-connected layers with ReLU, SoftMax output.

    Used by the Breast, Heart, Cardio, and MNIST-1 rows of Table III.
    """
    if len(hidden) != 2:
        raise ModelError("3FC takes exactly two hidden sizes")
    rng = np.random.default_rng(seed)
    model = Sequential((in_features,), name=name)
    model.add(FullyConnected(in_features, hidden[0], rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(hidden[0], hidden[1], rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(hidden[1], num_classes, rng=rng))
    model.add(SoftMax())
    return model


def flat_image_three_fc(
    input_shape: tuple[int, int, int],
    num_classes: int,
    hidden: Sequence[int] = (64, 32),
    seed: int = 0,
    name: str = "3FC",
) -> Sequential:
    """3FC over image input: Flatten then three fully-connected layers.

    MNIST-1 in Table III: the image is flattened (row-major, matching
    the obfuscator's lexicographic order) before the dense stack.
    """
    if len(hidden) != 2:
        raise ModelError("3FC takes exactly two hidden sizes")
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape, name=name)
    model.add(Flatten())
    in_features = model.output_shape()[0]
    model.add(FullyConnected(in_features, hidden[0], rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(hidden[0], hidden[1], rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(hidden[1], num_classes, rng=rng))
    model.add(SoftMax())
    return model


def conv_fc(
    input_shape: tuple[int, int, int],
    num_classes: int,
    conv_channels: Sequence[int],
    fc_hidden: int = 32,
    seed: int = 0,
    name: str = "ConvFC",
) -> Sequential:
    """``len(conv_channels)``Conv + 2FC with pool substitutions.

    ``conv_channels=(c,)`` is the paper's 1Conv+2FC (MNIST-2);
    ``conv_channels=(c1, c2)`` is 2Conv+2FC (MNIST-3).
    """
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape, name=name)
    channels = input_shape[0]
    for out_channels in conv_channels:
        model.add(Conv2d(channels, out_channels, kernel=3, stride=1,
                         padding=1, rng=rng))
        model.add(ReLU())
        for layer in maxpool_replacement(out_channels, rng=rng):
            model.add(layer)
        channels = out_channels
    model.add(Flatten())
    flat = model.output_shape()[0]
    model.add(FullyConnected(flat, fc_hidden, rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(fc_hidden, num_classes, rng=rng))
    model.add(SoftMax())
    return model


def vgg(
    variant: str,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    base_width: int = 8,
    fc_hidden: int = 64,
    batch_norm: bool = True,
    seed: int = 0,
) -> Sequential:
    """VGG13/16/19 with pool substitutions and a width multiplier.

    Args:
        variant: "vgg13", "vgg16", or "vgg19".
        input_shape: per-sample (C, H, W).
        num_classes: output classes.
        base_width: channels of the first block (the paper's VGG uses
            64; default 8 keeps numpy training tractable).
        fc_hidden: width of the hidden classifier layer.
        batch_norm: insert BatchNorm after each conv (linear layer, so
            it folds into the homomorphic pipeline).
        seed: weight-init seed.
    """
    blocks = VGG_BLOCKS.get(variant.lower())
    if blocks is None:
        raise ModelError(
            f"unknown VGG variant {variant!r}; choose from "
            f"{sorted(VGG_BLOCKS)}"
        )
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape, name=variant.upper())
    channels = input_shape[0]
    width = base_width
    for block_idx, conv_count in enumerate(blocks):
        for _ in range(conv_count):
            model.add(Conv2d(channels, width, kernel=3, stride=1,
                             padding=1, rng=rng))
            if batch_norm:
                model.add(BatchNorm(width))
            model.add(ReLU())
            channels = width
        spatial = model.output_shape()[1]
        if spatial >= 2:
            for layer in maxpool_replacement(channels, rng=rng):
                model.add(layer)
        if block_idx < 3:
            width *= 2
    model.add(Flatten())
    flat = model.output_shape()[0]
    model.add(FullyConnected(flat, fc_hidden, rng=rng))
    model.add(ReLU())
    model.add(FullyConnected(fc_hidden, num_classes, rng=rng))
    model.add(SoftMax())
    return model


def build_model(model_key: str, seed: int = 0, **overrides) -> Sequential:
    """Build one of the nine Table III models by dataset key.

    Keys: breast, heart, cardio, mnist-1, mnist-2, mnist-3,
    cifar-10-1, cifar-10-2, cifar-10-3.
    """
    key = model_key.lower()
    if key == "breast":
        return three_fc(30, 2, seed=seed, name="Breast-3FC", **overrides)
    if key == "heart":
        return three_fc(13, 2, seed=seed, name="Heart-3FC", **overrides)
    if key == "cardio":
        return three_fc(11, 2, seed=seed, name="Cardio-3FC", **overrides)
    if key == "mnist-1":
        return flat_image_three_fc(
            (1, 28, 28), 10, hidden=(128, 64), seed=seed,
            name="MNIST-1-3FC", **overrides,
        )
    if key == "mnist-2":
        return conv_fc((1, 28, 28), 10, conv_channels=(8,), seed=seed,
                       name="MNIST-2-1Conv2FC", **overrides)
    if key == "mnist-3":
        return conv_fc((1, 28, 28), 10, conv_channels=(8, 16), seed=seed,
                       name="MNIST-3-2Conv2FC", **overrides)
    if key == "cifar-10-1":
        return vgg("vgg13", seed=seed, **overrides)
    if key == "cifar-10-2":
        return vgg("vgg16", seed=seed, **overrides)
    if key == "cifar-10-3":
        return vgg("vgg19", seed=seed, **overrides)
    raise ModelError(f"unknown model key {model_key!r}")


#: All nine model keys in Table III order.
MODEL_KEYS = (
    "breast", "heart", "cardio",
    "mnist-1", "mnist-2", "mnist-3",
    "cifar-10-1", "cifar-10-2", "cifar-10-3",
)
