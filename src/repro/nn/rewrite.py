"""Model rewriting for privacy readiness.

The zoo builds models privacy-ready, but a user bringing their own
model may have MaxPool layers (position-sensitive, so incompatible with
obfuscated tensors — Section III-C).  :func:`rewrite_for_privacy`
applies the paper's substitution — MaxPool -> stride-2 conv + ReLU
(Springenberg et al.) — producing a model the planner accepts.

The substituted convolutions are initialized to average pooling, so the
rewritten model is a reasonable starting point; the paper's generality
claim assumes models are trained (or fine-tuned) with the substitution
in place, and :class:`repro.nn.training.SGDTrainer` can do that
fine-tuning here.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .layers import Layer, MaxPool2d
from .layers.pooling import maxpool_replacement
from .model import Sequential


def rewrite_for_privacy(
    model: Sequential, rng: np.random.Generator | None = None
) -> Sequential:
    """Return a copy of ``model`` with every MaxPool substituted.

    Args:
        model: any Sequential model; layers other than MaxPool2d are
            shared structurally (weights copied via state dict).
        rng: optional noise source for the substituted conv weights.

    Raises:
        ModelError: when a MaxPool has stride != kernel (the
            substitution is defined for non-overlapping pooling).
    """
    rewritten = Sequential(model.input_shape,
                           name=f"{model.name}-private")
    shape = model.input_shape
    for layer in model.layers:
        if isinstance(layer, MaxPool2d):
            if layer.stride != layer.kernel or layer.kernel != 2:
                raise ModelError(
                    "maxpool substitution supports 2x2/stride-2 pooling"
                    f", got kernel={layer.kernel} stride={layer.stride}"
                )
            channels = shape[0]
            for replacement in maxpool_replacement(channels, rng=rng):
                rewritten.add(replacement)
            shape = layer.output_shape(shape)
            continue
        clone = _clone_layer(layer)
        rewritten.add(clone)
        shape = layer.output_shape(shape)
    return rewritten


def _clone_layer(layer: Layer) -> Layer:
    """Deep-copy a layer through the model (de)serialization path."""
    from .model import _build_layer, _layer_config, _layer_buffers, \
        _restore_buffers

    clone = _build_layer(type(layer).__name__, _layer_config(layer))
    for parameter, source in zip(clone.params(), layer.params()):
        parameter[...] = source
    _restore_buffers(clone, _layer_buffers(layer))
    return clone


def count_position_sensitive(model: Sequential) -> int:
    """How many layers would block primitive extraction (diagnostics)."""
    return sum(
        1 for position, layer in enumerate(model.layers)
        if getattr(layer, "position_sensitive", False)
        and position != len(model.layers) - 1
    )
