"""Model rewriting for privacy readiness and compression.

The zoo builds models privacy-ready, but a user bringing their own
model may have MaxPool layers (position-sensitive, so incompatible with
obfuscated tensors — Section III-C).  :func:`rewrite_for_privacy`
applies the paper's substitution — MaxPool -> stride-2 conv + ReLU
(Springenberg et al.) — producing a model the planner accepts.

The substituted convolutions are initialized to average pooling, so the
rewritten model is a reasonable starting point; the paper's generality
claim assumes models are trained (or fine-tuned) with the substitution
in place, and :class:`repro.nn.training.SGDTrainer` can do that
fine-tuning here.

:func:`prune_model` is the compression-side rewrite (the Popcorn
direction): magnitude-prune each linear layer under an accuracy budget.
Every zeroed weight is a homomorphic scalar multiplication the
encrypted path never performs — the engine's compressed matvecs
(:meth:`repro.crypto.engine.PaillierEngine.fc_matvec` /
:meth:`~repro.crypto.engine.PaillierEngine.conv_im2col`) skip zero
weights outright — so pruning translates one-for-one into saved
modular exponentiations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ModelError
from .layers import Conv2d, FullyConnected, Layer, MaxPool2d
from .layers.pooling import maxpool_replacement
from .metrics import top1_accuracy
from .model import Sequential


def rewrite_for_privacy(
    model: Sequential, rng: np.random.Generator | None = None
) -> Sequential:
    """Return a copy of ``model`` with every MaxPool substituted.

    Args:
        model: any Sequential model; layers other than MaxPool2d are
            shared structurally (weights copied via state dict).
        rng: optional noise source for the substituted conv weights.

    Raises:
        ModelError: when a MaxPool has stride != kernel (the
            substitution is defined for non-overlapping pooling).
    """
    rewritten = Sequential(model.input_shape,
                           name=f"{model.name}-private")
    shape = model.input_shape
    for layer in model.layers:
        if isinstance(layer, MaxPool2d):
            if layer.stride != layer.kernel or layer.kernel != 2:
                raise ModelError(
                    "maxpool substitution supports 2x2/stride-2 pooling"
                    f", got kernel={layer.kernel} stride={layer.stride}"
                )
            channels = shape[0]
            for replacement in maxpool_replacement(channels, rng=rng):
                rewritten.add(replacement)
            shape = layer.output_shape(shape)
            continue
        clone = _clone_layer(layer)
        rewritten.add(clone)
        shape = layer.output_shape(shape)
    return rewritten


def _clone_layer(layer: Layer) -> Layer:
    """Deep-copy a layer through the model (de)serialization path."""
    from .model import _build_layer, _layer_config, _layer_buffers, \
        _restore_buffers

    clone = _build_layer(type(layer).__name__, _layer_config(layer))
    for parameter, source in zip(clone.params(), layer.params()):
        parameter[...] = source
    _restore_buffers(clone, _layer_buffers(layer))
    return clone


@dataclass(frozen=True)
class LayerPruneStats:
    """Pruning outcome of one prunable (linear) layer."""

    index: int
    layer: str
    total: int
    pruned: int
    threshold: float

    @property
    def density(self) -> float:
        """Fraction of weights that survived."""
        return 1.0 - self.pruned / self.total if self.total else 1.0


@dataclass(frozen=True)
class PruneReport:
    """What :func:`prune_model` did and what it cost in accuracy."""

    target_sparsity: float
    applied_sparsity: float
    layers: Tuple[LayerPruneStats, ...]
    baseline_accuracy: float | None = None
    pruned_accuracy: float | None = None

    @property
    def total(self) -> int:
        return sum(stats.total for stats in self.layers)

    @property
    def pruned(self) -> int:
        return sum(stats.pruned for stats in self.layers)

    @property
    def density(self) -> float:
        total = self.total
        return 1.0 - self.pruned / total if total else 1.0

    @property
    def accuracy_delta(self) -> float | None:
        """Accuracy change caused by pruning (negative = loss)."""
        if self.baseline_accuracy is None \
                or self.pruned_accuracy is None:
            return None
        return self.pruned_accuracy - self.baseline_accuracy


def _prune_at(model: Sequential, sparsity: float
              ) -> tuple[Sequential, list[LayerPruneStats]]:
    """Clone ``model`` with each linear layer magnitude-pruned to
    (approximately) the given per-layer sparsity."""
    pruned = Sequential(model.input_shape, name=f"{model.name}-pruned")
    stats: list[LayerPruneStats] = []
    for index, layer in enumerate(model.layers):
        clone = _clone_layer(layer)
        if sparsity > 0.0 and isinstance(clone,
                                         (Conv2d, FullyConnected)):
            weight = clone.weight
            magnitudes = np.abs(weight).reshape(-1)
            # quantile() on the sorted magnitudes is deterministic;
            # ties at the threshold all prune (<=), which can only
            # overshoot the target, never undershoot the budget check.
            threshold = float(np.quantile(magnitudes, sparsity))
            mask = np.abs(weight) <= threshold
            weight[mask] = 0.0
            stats.append(LayerPruneStats(
                index=index,
                layer=type(layer).__name__,
                total=int(weight.size),
                pruned=int(np.count_nonzero(mask)),
                threshold=threshold,
            ))
        pruned.add(clone)
    return pruned, stats


def prune_model(
    model: Sequential,
    sparsity: float = 0.7,
    *,
    inputs: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    accuracy_budget: float = 0.01,
    backoff: float = 0.75,
    min_sparsity: float = 0.05,
) -> tuple[Sequential, PruneReport]:
    """Magnitude-prune every linear layer under an accuracy budget.

    Weights of each FullyConnected / Conv2d layer below that layer's
    ``sparsity``-quantile magnitude are zeroed.  When evaluation data
    is provided, the sparsity backs off geometrically (factor
    ``backoff``) until the pruned model's top-1 accuracy is within
    ``accuracy_budget`` of the original — falling back to no pruning
    if even ``min_sparsity`` misses the budget — so the returned model
    is always deployable.  Entirely deterministic: no RNG is involved.

    Args:
        model: source model (left untouched; layers are deep-copied).
        sparsity: target fraction of weights to zero per linear layer.
        inputs, labels: optional evaluation set for the budget check.
        accuracy_budget: maximum tolerated top-1 accuracy drop
            (fraction, e.g. 0.01 = one percentage point).
        backoff: multiplicative sparsity reduction per failed attempt.
        min_sparsity: below this level, give up and return unpruned.

    Returns:
        ``(pruned_model, report)``.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ModelError(
            f"sparsity must be in [0, 1), got {sparsity}"
        )
    if not 0.0 < backoff < 1.0:
        raise ModelError(f"backoff must be in (0, 1), got {backoff}")
    if (inputs is None) != (labels is None):
        raise ModelError(
            "prune_model needs both inputs and labels, or neither"
        )
    baseline = None
    if inputs is not None:
        baseline = top1_accuracy(model.predict(inputs), labels)
    level = sparsity
    while True:
        pruned, stats = _prune_at(model, level)
        achieved = None
        if baseline is not None and level > 0.0:
            achieved = top1_accuracy(pruned.predict(inputs), labels)
            if baseline - achieved > accuracy_budget:
                level *= backoff
                if level < min_sparsity:
                    level = 0.0
                continue
        elif baseline is not None:
            achieved = baseline
        return pruned, PruneReport(
            target_sparsity=sparsity,
            applied_sparsity=level,
            layers=tuple(stats),
            baseline_accuracy=baseline,
            pruned_accuracy=achieved,
        )


def count_position_sensitive(model: Sequential) -> int:
    """How many layers would block primitive extraction (diagnostics)."""
    return sum(
        1 for position, layer in enumerate(model.layers)
        if getattr(layer, "position_sensitive", False)
        and position != len(model.layers) - 1
    )
