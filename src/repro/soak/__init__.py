"""Soak harness: sustained mixed workloads with leak sentinels.

``python -m repro soak`` drives the scenario mix in
:mod:`repro.soak.harness` — single-shot sessions, lane-packed batches,
fault-injected pipelines, chaos-enabled TCP runs, and worker
kill/respawn cycles — for a configurable duration, then asserts the
process came back to where it started: zero leaked threads and file
descriptors, flat memory, bit-identical outputs, zero unexpected dead
letters (see ``docs/SOAK.md``).
"""

from .harness import (
    SCENARIO_NAMES,
    SoakCheckError,
    SoakOptions,
    SoakReport,
    run_soak,
)
from .sentinels import (
    LeakReport,
    LeakSentinel,
    ResourceCensus,
    RssWatermark,
)

__all__ = [
    "LeakReport",
    "LeakSentinel",
    "ResourceCensus",
    "RssWatermark",
    "SCENARIO_NAMES",
    "SoakCheckError",
    "SoakOptions",
    "SoakReport",
    "run_soak",
]
