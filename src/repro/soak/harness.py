"""The soak driver: mixed workloads under a deterministic schedule.

Six scenarios cover the runtime's load-bearing surfaces:

========== ==========================================================
``single``  per-sample :class:`~repro.protocol.InferenceSession` runs
``packed``  lane-packed ``run_batch`` (key 256, 4 lanes, admission
            asserted at setup)
``faulted`` in-process pipeline under a seeded transient fault plan
            plus the retry/supervisor machinery
``chaos``   distributed TCP runs through a persistent coordinator
            with :mod:`repro.net.chaos` injection enabled — drops
            heal via reconnect-with-backoff, never the restart budget
``kill``    a model worker hard-killed mid-stream, respawned within
            budget; recovery time (death to live replacement) sampled
``serve``   the multi-tenant HTTP gateway over a shared 2-worker
            fleet: two tenants submit over HTTP every iteration, a
            fleet worker is hard-killed mid-job on a cadence and
            healed by binding a fresh worker to the same port
            (reconnect-with-backoff, zero restart budget); every job
            must reach ``done`` and reproduce the reference
``elastic`` a persistent :class:`~repro.cluster.ElasticCoordinator`
            under seeded membership churn (docs/ELASTIC.md): on a
            cadence a fresh worker joins over the wire and is
            re-planned into the fleet, streams run against the grown
            fleet, then the member drains back out and its process
            stops immediately (leak sentinels see no drift); zero
            dead letters, zero restarts, bit-identical outputs across
            every epoch
========== ==========================================================

The driver round-robins a seeded weighted schedule until the duration
expires.  Every scenario freezes its first output as the reference and
asserts each later iteration reproduces it **bit-identically** — the
soak's correctness axis — while :mod:`repro.soak.sentinels` guards the
resource axis.  Results land in ``BENCH_soak.json`` (see
``docs/SOAK.md`` for the schema).
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..config import RuntimeConfig
from ..errors import ReproError
from ..observability import NULL_TRACER, Observability
from ..stream.retry import RetryPolicy
from .sentinels import LeakSentinel, RssWatermark

#: Scenario registry order doubles as the deterministic schedule base.
SCENARIO_NAMES = ("single", "packed", "faulted", "chaos", "kill",
                  "serve", "elastic")

#: Relative schedule weights (kill/packed are the heavy iterations).
_WEIGHTS = {"single": 3, "packed": 1, "faulted": 2, "chaos": 2,
            "kill": 1, "serve": 2, "elastic": 2}

#: Seed salt for the harness's own RNG streams.
_SOAK_SALT = 0x50AC


class SoakCheckError(ReproError):
    """A soak invariant failed (output drift, unexpected dead letter,
    unhealed worker)."""


@dataclass
class SoakOptions:
    """Knobs for one soak run (CLI flags map 1:1)."""

    duration: float = 20.0
    seed: int = 7
    out: str | None = "BENCH_soak.json"
    scenarios: tuple = SCENARIO_NAMES
    rss_tolerance_mb: float = 64.0
    key_size: int = 128

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ReproError("soak duration must be positive")
        unknown = set(self.scenarios) - set(SCENARIO_NAMES)
        if unknown:
            raise ReproError(
                f"unknown soak scenario(s) {sorted(unknown)}; "
                f"known: {list(SCENARIO_NAMES)}"
            )


@dataclass
class SoakReport:
    """Everything ``BENCH_soak.json`` serializes."""

    doc: dict

    @property
    def ok(self) -> bool:
        return bool(self.doc.get("ok"))

    def render(self) -> str:
        doc = self.doc
        lines = [
            f"soak: {doc['elapsed_s']:.1f}s, seed {doc['seed']}, "
            f"{doc['requests_total']} requests "
            f"({doc['sustained_rps']:.2f} req/s sustained)",
            "iterations: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(doc["iterations"].items())
            ),
            f"latency: p50 {doc['latency_ms']['p50']:.1f}ms, "
            f"p99 {doc['latency_ms']['p99']:.1f}ms",
        ]
        recovery = doc["recovery_s"]
        if recovery["count"]:
            lines.append(
                f"recovery after kill: {recovery['count']} sample(s), "
                f"mean {recovery['mean']:.2f}s, max {recovery['max']:.2f}s"
            )
        lines.append(
            f"network: {doc['worker_deaths']} death(s), "
            f"{doc['reconnects']} reconnect(s), "
            f"{doc['respawns']} respawn(s); chaos injected "
            + ", ".join(f"{k}={v}" for k, v in sorted(
                doc["chaos"].items()))
        )
        serve = doc.get("serve") or {}
        if serve:
            lines.append(
                f"serve gateway: {serve['jobs_done']} job(s) done, "
                f"{serve['worker_kills']} fleet worker kill(s) healed"
            )
        elastic = doc.get("elastic") or {}
        if elastic:
            lines.append(
                f"elastic fleet: {elastic['joins']} join(s), "
                f"{elastic['drains']} drain(s), final epoch "
                f"{elastic['final_epoch']}"
            )
        lines.append(
            f"channel depth high-water: "
            f"{doc['channel_depth_high_water']:.0f}"
        )
        leaks = doc["leaks"]
        lines.append(
            f"leaks: threads={leaks['threads']}, "
            f"fd_delta={leaks['fd_delta']}, "
            f"socket_delta={leaks['socket_delta']}; rss steady growth "
            f"{leaks['rss_steady_growth_mb']:.1f}MB "
            f"(tolerance {leaks['rss_tolerance_mb']:.0f}MB, peak "
            f"{leaks['rss_peak_mb']:.1f}MB)"
        )
        lines.append("soak PASS" if self.ok else "soak FAIL: "
                     + "; ".join(doc["failures"]))
        return "\n".join(lines)


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

class _Scenario:
    """Base: setup once, run many, teardown once.

    ``run_once`` returns the number of requests completed and appends
    per-request latencies (batch scenarios amortize the batch wall
    time over its requests — documented in docs/SOAK.md).
    """

    name = "base"

    def __init__(self, options: SoakOptions, obs: Observability):
        self.options = options
        self.obs = obs
        self.latencies: List[float] = []
        self.iterations = 0

    def setup(self) -> None:
        raise NotImplementedError

    def run_once(self, iteration: int) -> int:
        raise NotImplementedError

    def teardown(self) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    @staticmethod
    def _close_engines(*providers) -> None:
        for provider in providers:
            engine = getattr(provider, "engine", None)
            if engine is not None:
                engine.close()

    @staticmethod
    def _check_identical(name: str, reference, got) -> None:
        for index, (want, have) in enumerate(zip(reference, got)):
            if not np.array_equal(want, have):
                raise SoakCheckError(
                    f"{name}: output {index} drifted from the "
                    "first-iteration reference"
                )
        if len(reference) != len(got):
            raise SoakCheckError(
                f"{name}: expected {len(reference)} outputs, got "
                f"{len(got)}"
            )


class _SingleShotScenario(_Scenario):
    """Sequential per-sample protocol sessions (Figure 3 workflow)."""

    name = "single"

    def setup(self) -> None:
        from ..experiments.common import prepare_model
        from ..protocol import (
            DataProvider,
            InferenceSession,
            ModelProvider,
        )

        prepared = prepare_model("breast")
        config = RuntimeConfig(key_size=self.options.key_size,
                               seed=self.options.seed)
        self._model_provider = ModelProvider(
            prepared.model, decimals=prepared.decimals, config=config
        )
        self._data_provider = DataProvider(
            value_decimals=prepared.decimals, config=config
        )
        self._session = InferenceSession(self._model_provider,
                                         self._data_provider)
        self._inputs = [np.asarray(x)
                        for x in prepared.dataset.test_x[:2]]
        self._reference: List[np.ndarray] | None = None

    def run_once(self, iteration: int) -> int:
        outputs = []
        for sample in self._inputs:
            start = time.perf_counter()
            outcome = self._session.run(sample)
            self.latencies.append(time.perf_counter() - start)
            outputs.append(outcome.probabilities)
        if self._reference is None:
            self._reference = outputs
        else:
            self._check_identical(self.name, self._reference, outputs)
        return len(outputs)

    def teardown(self) -> None:
        self._close_engines(self._model_provider, self._data_provider)


class _PackedScenario(_Scenario):
    """Lane-packed batches; admission is asserted, not hoped for."""

    name = "packed"
    _LANES = 4

    def setup(self) -> None:
        from ..experiments.common import prepare_model
        from ..protocol import (
            DataProvider,
            InferenceSession,
            ModelProvider,
        )

        prepared = prepare_model("breast")
        # Lane packing needs headroom: 256-bit plaintext space fits 4
        # lanes for this model (asserted below), 128-bit does not.
        config = RuntimeConfig(key_size=256, seed=self.options.seed,
                               pack_lanes=self._LANES)
        self._model_provider = ModelProvider(
            prepared.model, decimals=prepared.decimals, config=config
        )
        self._data_provider = DataProvider(
            value_decimals=prepared.decimals, config=config
        )
        plan = self._model_provider.plan_lane_packing(self._LANES)
        if not plan.admitted:
            raise SoakCheckError(
                f"packed: lane plan refused ({plan.reason}); the "
                "scenario would silently soak the fallback path"
            )
        self._session = InferenceSession(self._model_provider,
                                         self._data_provider)
        self._batch = np.asarray(
            prepared.dataset.test_x[:self._LANES]
        )
        self._reference: List[np.ndarray] | None = None

    def run_once(self, iteration: int) -> int:
        start = time.perf_counter()
        outcomes = self._session.run_batch(self._batch)
        elapsed = time.perf_counter() - start
        self.latencies.extend([elapsed / len(outcomes)] * len(outcomes))
        outputs = [o.probabilities for o in outcomes]
        if self._reference is None:
            self._reference = outputs
        else:
            self._check_identical(self.name, self._reference, outputs)
        return len(outputs)

    def teardown(self) -> None:
        self._close_engines(self._model_provider, self._data_provider)


class _FaultedPipelineScenario(_Scenario):
    """In-process stream runtime under seeded transient faults."""

    name = "faulted"

    def setup(self) -> None:
        from ..nn import model_zoo
        from ..planner.allocation import allocate_even
        from ..planner.plan import ClusterSpec
        from ..protocol import DataProvider, ModelProvider

        model = model_zoo.conv_fc(
            (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8,
            seed=3, name="soak-conv",
        )
        config = RuntimeConfig(key_size=self.options.key_size,
                               seed=self.options.seed)
        self._model_provider = ModelProvider(model, decimals=2,
                                             config=config)
        self._data_provider = DataProvider(value_decimals=2,
                                           config=config)
        cluster = ClusterSpec.homogeneous(1, 1, 2)
        self._plan = allocate_even(
            self._model_provider.stages, cluster
        ).plan
        rng = np.random.default_rng(self.options.seed)
        self._inputs = [rng.uniform(0, 1, (1, 8, 8))
                        for _ in range(3)]
        self._reference: Dict[int, np.ndarray] | None = None

    def _pipeline(self, fault_plan):
        from ..stream import Pipeline

        return Pipeline(
            self._model_provider, self._data_provider, self._plan,
            retry_policy=RetryPolicy(
                max_retries=4, base_delay=0.01,
                jitter_seed=self.options.seed ^ _SOAK_SALT,
            ),
            fault_plan=fault_plan,
            restart_budget=2,
            obs=self.obs,
        )

    def run_once(self, iteration: int) -> int:
        from ..stream import FaultPlan

        fault_plan = FaultPlan.random_transient(
            seed=self.options.seed * 7919 + iteration,
            num_requests=len(self._inputs),
            num_stages=len(self._plan.stages),
            rate=0.3,
        )
        start = time.perf_counter()
        stats = self._pipeline(fault_plan).run_stream(self._inputs)
        elapsed = time.perf_counter() - start
        if stats.dead_letters:
            raise SoakCheckError(
                f"faulted: {len(stats.dead_letters)} unexpected dead "
                "letter(s) under a transient-only fault plan: "
                + stats.dead_letters[0].describe()
            )
        count = len(stats.results)
        self.latencies.extend([elapsed / count] * count)
        outputs = {r.request_id: r.probabilities
                   for r in stats.results}
        if self._reference is None:
            self._reference = outputs
        else:
            self._check_identical(
                self.name,
                [self._reference[i] for i in sorted(self._reference)],
                [outputs[i] for i in sorted(outputs)],
            )
        return count

    def teardown(self) -> None:
        self._close_engines(self._model_provider, self._data_provider)


class _NetChaosScenario(_Scenario):
    """Distributed runs over a persistent chaos-wrapped coordinator.

    One coordinator and one worker fleet live across every iteration,
    so chaos-induced connection drops exercise the *reconnect* path:
    the soak asserts the fleet heals (every handle alive between
    iterations) without consuming any restart budget.
    """

    name = "chaos"

    def setup(self) -> None:
        from ..net import Coordinator, WorkerServer
        from ..nn import model_zoo
        from ..planner.allocation import allocate_even
        from ..planner.plan import ClusterSpec
        from ..protocol import DataProvider, ModelProvider
        from ..stream import Pipeline

        model = model_zoo.conv_fc(
            (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8,
            seed=3, name="soak-conv",
        )
        config = RuntimeConfig(
            key_size=self.options.key_size, seed=self.options.seed,
        ).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        ).with_chaos(
            seed=self.options.seed,
            delay_rate=0.10, delay_seconds=0.005,
            drop_rate=0.05,
            dup_heartbeat_rate=0.20,
            slow_read_rate=0.10, slow_read_seconds=0.005,
        ).with_reconnect(
            attempts=4, base_delay=0.02, max_delay=0.2,
        )

        def providers(cfg):
            return (
                ModelProvider(model, decimals=2, config=cfg),
                DataProvider(value_decimals=2, config=cfg),
            )

        cluster = ClusterSpec.homogeneous(2, 1, 2)
        self._model_provider, self._data_provider = providers(config)
        plan = allocate_even(
            self._model_provider.stages, cluster
        ).plan
        rng = np.random.default_rng(self.options.seed + 1)
        self._inputs = [rng.uniform(0, 1, (1, 8, 8))
                        for _ in range(3)]
        # Reference from the in-process pipeline (fresh providers: the
        # chaos runs must reproduce it bit-identically over TCP).
        ref_model, ref_data = providers(config)
        ref_stats = Pipeline(ref_model, ref_data, plan).run_stream(
            self._inputs
        )
        self._reference = {r.request_id: r.probabilities
                           for r in ref_stats.results}
        self._close_engines(ref_model, ref_data)

        self._servers = [WorkerServer(), WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in self._servers]
        self._coordinator = Coordinator(
            self._model_provider, self._data_provider, plan, addresses,
            retry_policy=RetryPolicy(
                max_retries=8, base_delay=0.02,
                jitter_seed=self.options.seed ^ _SOAK_SALT,
            ),
            obs=self.obs,
        )
        self._coordinator.connect()

    def run_once(self, iteration: int) -> int:
        start = time.perf_counter()
        stats = self._coordinator.run_stream(self._inputs)
        elapsed = time.perf_counter() - start
        if stats.dead_letters:
            raise SoakCheckError(
                f"chaos: {len(stats.dead_letters)} unexpected dead "
                "letter(s): " + stats.dead_letters[0].describe()
            )
        for handle in self._coordinator.handles:
            if handle.restarts:
                raise SoakCheckError(
                    "chaos: a transient drop consumed the restart "
                    f"budget on {handle.describe()} — reconnect "
                    "should have healed it"
                )
        count = len(stats.results)
        self.latencies.extend([elapsed / count] * count)
        self._check_identical(
            self.name,
            [self._reference[i] for i in sorted(self._reference)],
            [r.probabilities
             for r in sorted(stats.results,
                             key=lambda r: r.request_id)],
        )
        return count

    @property
    def reconnects(self) -> int:
        return sum(h.reconnects for h in self._coordinator.handles)

    @property
    def chaos_stats(self) -> dict:
        injector = self._coordinator.chaos
        return injector.stats.as_dict() if injector else {}

    def teardown(self) -> None:
        self._coordinator.close(shutdown_workers=True)
        for server in self._servers:
            server.stop(abort=True)
        self._close_engines(self._model_provider, self._data_provider)


class _SoakDyingWorker:
    """Factory avoiding a hard import cycle at module load."""

    def __new__(cls, die_after: int):
        from ..net import WorkerServer

        class _Dying(WorkerServer):
            def __init__(self, die_after: int):
                super().__init__()
                self.die_after = die_after
                self.tasks_done = 0
                self.died = threading.Event()
                self.died_at = 0.0

            def _run_task(self, session, envelope):
                self.tasks_done += 1
                if self.tasks_done > self.die_after:
                    self.died_at = time.monotonic()
                    self.died.set()
                    self.stop(abort=True)
                return super()._run_task(session, envelope)

        return _Dying(die_after)


class _NetKillScenario(_Scenario):
    """Hard worker kill mid-stream, respawn within budget, recovery
    time sampled (death observed -> replacement live)."""

    name = "kill"

    def setup(self) -> None:
        from ..nn import model_zoo
        from ..planner.allocation import allocate_even
        from ..planner.plan import ClusterSpec
        from ..protocol import DataProvider, ModelProvider
        from ..stream import Pipeline

        self._model = model_zoo.conv_fc(
            (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8,
            seed=3, name="soak-conv",
        )
        self._config = RuntimeConfig(
            key_size=self.options.key_size, seed=self.options.seed,
        ).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        ).with_reconnect(
            attempts=2, base_delay=0.02, max_delay=0.1,
        )
        self._model_provider = ModelProvider(
            self._model, decimals=2, config=self._config
        )
        self._data_provider = DataProvider(
            value_decimals=2, config=self._config
        )
        cluster = ClusterSpec.homogeneous(2, 1, 2)
        self._plan = allocate_even(
            self._model_provider.stages, cluster
        ).plan
        rng = np.random.default_rng(self.options.seed + 2)
        self._inputs = [rng.uniform(0, 1, (1, 8, 8))
                        for _ in range(4)]
        # Reference from *fresh* providers: in-process runs mutate
        # obfuscator state, which must not bleed into the coordinator's
        # providers (the distributed runs use stateless obfuscators).
        ref_model = ModelProvider(self._model, decimals=2,
                                  config=self._config)
        ref_data = DataProvider(value_decimals=2, config=self._config)
        ref_stats = Pipeline(ref_model, ref_data,
                             self._plan).run_stream(self._inputs)
        self._reference = {r.request_id: r.probabilities
                           for r in ref_stats.results}
        self._close_engines(ref_model, ref_data)
        self.recovery_times: List[float] = []
        self.deaths = 0
        self.respawns = 0

    def run_once(self, iteration: int) -> int:
        from ..net import Coordinator, WorkerServer

        victim = _SoakDyingWorker(2)
        servers = [victim, WorkerServer(), WorkerServer()]
        spawned: List[object] = []
        addresses = [server.start() for server in servers]

        def respawn(server_id: int, role: str):
            replacement = WorkerServer()
            spawned.append(replacement)
            self.respawns += 1
            return replacement.start()

        coordinator = Coordinator(
            self._model_provider, self._data_provider, self._plan,
            addresses,
            respawn=respawn, worker_restart_budget=1,
            retry_policy=RetryPolicy(
                max_retries=6, base_delay=0.05,
                jitter_seed=self.options.seed ^ _SOAK_SALT,
            ),
            obs=self.obs,
        )
        recovery: List[float] = []

        def watch_recovery():
            if not victim.died.wait(timeout=20.0):
                return
            handle = coordinator.handles[0]
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if handle.alive:
                    recovery.append(
                        time.monotonic() - victim.died_at
                    )
                    return
                time.sleep(0.005)

        watcher = threading.Thread(target=watch_recovery,
                                   name="repro-soak-kill-watcher")
        try:
            with coordinator:
                watcher.start()
                start = time.perf_counter()
                stats = coordinator.run_stream(self._inputs)
                elapsed = time.perf_counter() - start
                watcher.join(timeout=15.0)
        finally:
            if watcher.is_alive():  # unblock a never-died victim wait
                victim.died.set()
                watcher.join(timeout=1.0)
            for server in servers + spawned:
                server.stop(abort=True)
        if not victim.died.is_set():
            raise SoakCheckError(
                "kill: the victim worker never died mid-stream"
            )
        self.deaths += 1
        if stats.dead_letters:
            raise SoakCheckError(
                f"kill: {len(stats.dead_letters)} unexpected dead "
                "letter(s): " + stats.dead_letters[0].describe()
            )
        if recovery:
            self.recovery_times.extend(recovery)
        count = len(stats.results)
        self.latencies.extend([elapsed / count] * count)
        self._check_identical(
            self.name,
            [self._reference[i] for i in sorted(self._reference)],
            [r.probabilities
             for r in sorted(stats.results,
                             key=lambda r: r.request_id)],
        )
        return count

    def teardown(self) -> None:
        self._close_engines(self._model_provider, self._data_provider)


class _ServeGatewayScenario(_Scenario):
    """The multi-tenant serving gateway under periodic worker kills.

    The full serving stack runs across every iteration: a shared
    2-worker TCP fleet, one HTTP gateway, two tenants with distinct
    Paillier keypairs.  Each iteration submits one job per tenant over
    real HTTP and polls both to a terminal state; on a fixed cadence a
    fleet worker (alternating roles) is hard-killed *after* the
    submits land — mid-job — and healed by binding a fresh
    :class:`~repro.net.worker.WorkerServer` to the **same port**, so
    the per-tenant coordinators recover through reconnect-with-backoff
    (the re-handshake re-provisions the tenant sessions) without
    touching any restart budget.  Every job must end ``done`` with
    output bit-identical to the first iteration's reference, and the
    job tracker must hold no non-terminal job between iterations.
    """

    name = "serve"
    _TENANTS = ("soak-a", "soak-b")
    _KILL_EVERY = 3  # hard-kill a fleet worker every Nth iteration

    def setup(self) -> None:
        from ..net import WorkerServer
        from ..serve.gateway import ServeGateway, build_serve_model
        from ..serve.loadgen import _Client

        model, decimals, input_shape = build_serve_model("tiny")
        config = RuntimeConfig(
            key_size=self.options.key_size, seed=self.options.seed,
        ).with_net(
            heartbeat_interval=0.1, heartbeat_timeout=1.0,
        ).with_reconnect(
            attempts=6, base_delay=0.02, max_delay=0.2,
        ).with_serve(
            queue_capacity=16, workers=2, tenant_quota=8,
        )
        self._fleet = [WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in self._fleet]
        self._gateway = ServeGateway(
            model, decimals, config, mode="fleet",
            worker_addresses=addresses, obs=self.obs,
        )
        host, port = self._gateway.start()
        self._client = _Client(f"http://{host}:{port}")
        rng = np.random.default_rng(self.options.seed + 3)
        self._inputs = {
            name: rng.uniform(0, 1, input_shape).tolist()
            for name in self._TENANTS
        }
        self._reference: Dict[str, np.ndarray] | None = None
        self.kills = 0
        self.jobs_done = 0

    def _kill_and_rebind(self) -> None:
        from ..net import WorkerServer

        victim_index = self.kills % len(self._fleet)
        victim = self._fleet[victim_index]
        host, port = victim.address
        victim.stop(abort=True)
        replacement = WorkerServer(host=host, port=port)
        replacement.start()
        self._fleet[victim_index] = replacement
        self.kills += 1

    def run_once(self, iteration: int) -> int:
        from ..serve.jobs import DONE, TERMINAL_STATES

        # Never kill on the warm-up iteration (the reference freeze
        # must see an undisturbed fleet).
        kill_now = (self.iterations > 0
                    and self.iterations % self._KILL_EVERY == 0)
        start = time.perf_counter()
        jobs = []
        for name in self._TENANTS:
            status, body, _headers = self._client.post(
                "/v1/infer",
                {"tenant": name, "input": self._inputs[name]},
            )
            if status != 202:
                raise SoakCheckError(
                    f"serve: submit for {name} -> HTTP {status}: "
                    f"{body.get('error')}"
                )
            jobs.append((name, body["job_id"]))
        if kill_now:
            self._kill_and_rebind()
        outputs: Dict[str, np.ndarray] = {}
        poll_deadline = time.monotonic() + 30.0
        for name, job_id in jobs:
            while True:
                if time.monotonic() > poll_deadline:
                    raise SoakCheckError(
                        f"serve: job {job_id} ({name}) not terminal "
                        "within 30s"
                    )
                status, body, _headers = self._client.get(
                    f"/v1/jobs/{job_id}?tenant={name}"
                )
                if status != 200:
                    raise SoakCheckError(
                        f"serve: poll {job_id} -> HTTP {status}"
                    )
                if body["state"] in TERMINAL_STATES:
                    break
                time.sleep(0.02)
            if body["state"] != DONE:
                raise SoakCheckError(
                    f"serve: job {job_id} ({name}) ended "
                    f"{body['state']!r}"
                    + (f": {body['error']}" if body.get("error")
                       else "")
                )
            outputs[name] = np.asarray(
                body["result"]["probabilities"]
            )
        elapsed = time.perf_counter() - start
        self.latencies.extend([elapsed / len(jobs)] * len(jobs))
        self.jobs_done += len(jobs)
        if not self._gateway.manager.tracker.all_terminal():
            raise SoakCheckError(
                "serve: a non-terminal job is stuck in the tracker "
                "after its iteration drained"
            )
        if self._reference is None:
            self._reference = outputs
        else:
            self._check_identical(
                self.name,
                [self._reference[name] for name in self._TENANTS],
                [outputs[name] for name in self._TENANTS],
            )
        return len(jobs)

    def teardown(self) -> None:
        self._gateway.close()
        for server in self._fleet:
            server.stop(abort=True)


class _ElasticScenario(_Scenario):
    """Membership churn on a persistent elastic coordinator.

    One :class:`~repro.cluster.ElasticCoordinator` lives across every
    iteration.  On a fixed cadence an iteration *churns*: a fresh
    model worker registers over the wire (``join_fleet`` against the
    membership listener), the fleet re-plans onto it, the stream runs
    on the grown fleet, and the member is drained back out — its
    process stopped immediately, so the leak sentinels would catch a
    connection or thread left behind by the drain.  Server ids are
    append-only, so the epoch and cluster table grow monotonically
    while every output stays bit-identical to the in-process
    reference and no restart budget is ever consumed.
    """

    name = "elastic"
    _CHURN_EVERY = 2  # join+drain on every Nth iteration

    def setup(self) -> None:
        from ..cluster import ElasticCoordinator
        from ..net import WorkerServer
        from ..nn import model_zoo
        from ..planner.allocation import allocate_even
        from ..planner.plan import ClusterSpec
        from ..protocol import DataProvider, ModelProvider
        from ..stream import Pipeline

        model = model_zoo.conv_fc(
            (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8,
            seed=3, name="soak-conv",
        )
        config = RuntimeConfig(
            key_size=self.options.key_size, seed=self.options.seed,
        ).with_net(
            heartbeat_interval=0.2, heartbeat_timeout=3.0,
        ).with_reconnect(
            attempts=4, base_delay=0.02, max_delay=0.2,
        )

        def providers(cfg):
            return (
                ModelProvider(model, decimals=2, config=cfg),
                DataProvider(value_decimals=2, config=cfg),
            )

        cluster = ClusterSpec.homogeneous(1, 1, 2)
        self._model_provider, self._data_provider = providers(config)
        plan = allocate_even(
            self._model_provider.stages, cluster
        ).plan
        rng = np.random.default_rng(self.options.seed + 4)
        self._inputs = [rng.uniform(0, 1, (1, 8, 8))
                        for _ in range(3)]
        ref_model, ref_data = providers(config)
        ref_stats = Pipeline(ref_model, ref_data, plan).run_stream(
            self._inputs
        )
        self._reference = {r.request_id: r.probabilities
                           for r in ref_stats.results}
        self._close_engines(ref_model, ref_data)

        self._servers = [WorkerServer(), WorkerServer()]
        addresses = [server.start() for server in self._servers]
        self._coordinator = ElasticCoordinator(
            self._model_provider, self._data_provider, plan,
            addresses,
            retry_policy=RetryPolicy(
                max_retries=6, base_delay=0.05,
                jitter_seed=self.options.seed ^ _SOAK_SALT,
            ),
            obs=self.obs,
        )
        self._coordinator.connect()
        self.joins = 0
        self.drains = 0

    def run_once(self, iteration: int) -> int:
        from ..net import WorkerServer

        # Never churn on the warm-up iteration: the reference freeze
        # must see the seed fleet.
        churn = (self.iterations > 0
                 and self.iterations % self._CHURN_EVERY == 0)
        spare = None
        spare_id = None
        if churn:
            spare = WorkerServer()
            spare.start()
            host, port = self._coordinator.membership_address
            reply = spare.join_fleet(host, port, "model", cores=4)
            spare_id = reply["server_id"]
            self.joins += 1
            # Route real work onto the member: re-plan the grown
            # fleet (the joined 4-core worker out-bids the 2-core
            # original for linear stages).
            self._coordinator.apply_plan(
                self._coordinator.allocation_for()
            )
        start = time.perf_counter()
        stats = self._coordinator.run_stream(self._inputs)
        elapsed = time.perf_counter() - start
        if stats.dead_letters:
            raise SoakCheckError(
                f"elastic: {len(stats.dead_letters)} unexpected dead "
                "letter(s) across membership churn: "
                + stats.dead_letters[0].describe()
            )
        for handle in self._coordinator.handles:
            if handle.restarts:
                raise SoakCheckError(
                    "elastic: membership churn consumed the restart "
                    f"budget on {handle.describe()} — joins and "
                    "drains must never look like failures"
                )
        count = len(stats.results)
        self.latencies.extend([elapsed / count] * count)
        self._check_identical(
            self.name,
            [self._reference[i] for i in sorted(self._reference)],
            [r.probabilities
             for r in sorted(stats.results,
                             key=lambda r: r.request_id)],
        )
        if churn:
            self._coordinator.drain_member(spare_id)
            spare.stop(abort=True)  # sentinels must see no residue
            self.drains += 1
        return count

    @property
    def final_epoch(self) -> int:
        return self._coordinator.state.epoch

    def teardown(self) -> None:
        self._coordinator.close()
        for server in self._servers:
            server.stop(abort=True)
        self._close_engines(self._model_provider, self._data_provider)


_SCENARIO_CLASSES = {
    "single": _SingleShotScenario,
    "packed": _PackedScenario,
    "faulted": _FaultedPipelineScenario,
    "chaos": _NetChaosScenario,
    "kill": _NetKillScenario,
    "serve": _ServeGatewayScenario,
    "elastic": _ElasticScenario,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def run_soak(options: SoakOptions,
             progress=None) -> SoakReport:
    """Run the soak and return (and optionally write) the report.

    Args:
        progress: optional ``progress(message)`` callable for CLI
            narration.
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    # A real registry for channel-depth high-water marks, but the null
    # tracer: span accumulation over a long soak would itself read as
    # memory growth.
    obs = Observability(enabled=True, tracer=NULL_TRACER)
    sentinel = LeakSentinel()
    rss = RssWatermark()
    failures: List[str] = []

    say(f"soak: baseline census, then {options.duration:.0f}s of "
        + "/".join(options.scenarios))
    sentinel.baseline()
    rss.sample()

    scenarios = [
        _SCENARIO_CLASSES[name](options, obs)
        for name in SCENARIO_NAMES if name in options.scenarios
    ]
    schedule = [s for s in scenarios for _ in range(_WEIGHTS[s.name])]
    rng = random.Random(options.seed * 1_000_003 + _SOAK_SALT)
    started = time.monotonic()
    requests_total = 0
    iteration = 0
    ready: List[_Scenario] = []
    try:
        for scenario in scenarios:
            scenario.setup()
            ready.append(scenario)
            say(f"  {scenario.name}: warm-up (freezing the reference "
                "output)")
            requests_total += scenario.run_once(iteration)
            scenario.iterations += 1
            iteration += 1
        # Warm-up complete: references frozen, caches and pools
        # filled.  RSS growth beyond here counts against tolerance.
        rss.mark_steady()
        deadline = started + options.duration
        while time.monotonic() < deadline:
            scenario = rng.choice(schedule)
            requests_total += scenario.run_once(iteration)
            scenario.iterations += 1
            iteration += 1
            rss.sample()
    except SoakCheckError as exc:
        failures.append(str(exc))
    finally:
        say("  teardown + settle")
        for scenario in ready:
            try:
                scenario.teardown()
            except Exception as exc:  # noqa: BLE001 - keep tearing down
                failures.append(
                    f"{scenario.name}: teardown failed: {exc!r}"
                )
    elapsed = time.monotonic() - started
    rss.sample()
    leak_report = sentinel.finish()

    latencies = [lat for s in scenarios for lat in s.latencies]
    chaos_scenario = next(
        (s for s in ready if s.name == "chaos"), None
    )
    kill_scenario = next(
        (s for s in ready if s.name == "kill"), None
    )
    serve_scenario = next(
        (s for s in ready if s.name == "serve"), None
    )
    elastic_scenario = next(
        (s for s in ready if s.name == "elastic"), None
    )
    recovery_times = (kill_scenario.recovery_times
                      if kill_scenario else [])
    depth_high_water = max(
        (gauge.high_water for _, gauge in obs.registry.find(
            "gauge", "stream_queue_depth")),
        default=0.0,
    )

    if not leak_report.ok:
        failures.append(leak_report.describe())
    if not rss.flat(options.rss_tolerance_mb):
        failures.append(
            f"rss grew {rss.steady_growth_mb:.1f}MB in steady state "
            f"(tolerance {options.rss_tolerance_mb:.0f}MB)"
        )
    if kill_scenario and kill_scenario.deaths \
            and not recovery_times:
        failures.append(
            "kill: worker death was never healed by respawn "
            "(no recovery sample)"
        )

    doc = {
        "schema": "soak/1",
        "seed": options.seed,
        "duration_s": options.duration,
        "elapsed_s": elapsed,
        "key_size": options.key_size,
        "iterations": {s.name: s.iterations for s in scenarios},
        "requests_total": requests_total,
        "sustained_rps": (requests_total / elapsed
                          if elapsed > 0 else 0.0),
        "latency_ms": {
            "p50": _percentile(latencies, 50) * 1000.0,
            "p99": _percentile(latencies, 99) * 1000.0,
        },
        "recovery_s": {
            "count": len(recovery_times),
            "mean": (sum(recovery_times) / len(recovery_times)
                     if recovery_times else 0.0),
            "max": max(recovery_times, default=0.0),
        },
        "worker_deaths": (kill_scenario.deaths
                          if kill_scenario else 0),
        "respawns": (kill_scenario.respawns
                     if kill_scenario else 0),
        "reconnects": (chaos_scenario.reconnects
                       if chaos_scenario else 0),
        "chaos": (chaos_scenario.chaos_stats
                  if chaos_scenario else {}),
        "serve": ({"jobs_done": serve_scenario.jobs_done,
                   "worker_kills": serve_scenario.kills}
                  if serve_scenario else {}),
        "elastic": ({"joins": elastic_scenario.joins,
                     "drains": elastic_scenario.drains,
                     "final_epoch": elastic_scenario.final_epoch}
                    if elastic_scenario else {}),
        "channel_depth_high_water": depth_high_water,
        "leaks": {
            "threads": leak_report.leaked_threads,
            "fd_delta": leak_report.fd_delta,
            "fds": leak_report.leaked_fds,
            "socket_delta": leak_report.socket_delta,
            "census_supported": leak_report.supported,
            "rss_steady_growth_mb": rss.steady_growth_mb,
            "rss_peak_mb": rss.peak_mb,
            "rss_tolerance_mb": options.rss_tolerance_mb,
        },
        "failures": failures,
        "ok": not failures,
    }
    report = SoakReport(doc)
    if options.out:
        with open(options.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report
