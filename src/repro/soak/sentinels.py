"""Leak sentinels: resource censuses taken before and after a soak.

A soak run proves more than "the workload still passes after N
minutes" — it proves the process *returns to its starting state*.
The sentinels here capture that state:

* **thread census** — a multiset of live thread names
  (:func:`threading.enumerate`), so a leaked executor pool or an
  unjoined heartbeat probe shows up by name;
* **fd / socket census** — ``/proc/self/fd`` entries and how many of
  them are sockets, so an undrained task connection or an unclosed
  listener shows up as a descriptor delta;
* **RSS watermark** — periodic resident-set samples from
  ``/proc/self/statm``, split into a warm-up phase (allocators and
  caches filling) and a steady-state phase whose growth must stay
  under a documented tolerance.

Teardown in this codebase is deliberately asynchronous in places
(stage executors use ``shutdown(wait=False)``; worker connection
threads exit when their sockets close), so :meth:`LeakSentinel.finish`
*settles*: it re-captures with short sleeps (after a ``gc.collect``)
until the census matches the baseline or the settle timeout expires —
only then is a delta reported as a leak.

Everything degrades gracefully off Linux: censuses that need ``/proc``
report ``-1`` (unknown) and the corresponding checks pass vacuously
rather than failing the soak on an unsupported platform.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


def thread_census() -> Counter:
    """Multiset of live thread names."""
    return Counter(thread.name for thread in threading.enumerate())


def fd_census() -> Dict[int, str] | None:
    """``fd -> target`` for every open descriptor, or None when the
    platform has no ``/proc/self/fd``."""
    try:
        entries = os.listdir("/proc/self/fd")
    except OSError:
        return None
    census: Dict[int, str] = {}
    for entry in entries:
        try:
            fd = int(entry)
            census[fd] = os.readlink(f"/proc/self/fd/{entry}")
        except (OSError, ValueError):
            continue  # raced with a close, or the listdir fd itself
    return census


def socket_count(census: Dict[int, str] | None) -> int:
    if census is None:
        return -1
    return sum(1 for target in census.values()
               if target.startswith("socket:"))


def rss_bytes() -> int:
    """Current resident set size, or -1 when unsupported."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, IndexError, ValueError):
        return -1


@dataclass
class ResourceCensus:
    """One point-in-time capture of process-level resources."""

    threads: Counter
    fds: Dict[int, str] | None
    rss: int

    @classmethod
    def capture(cls) -> "ResourceCensus":
        return cls(threads=thread_census(), fds=fd_census(),
                   rss=rss_bytes())

    @property
    def fd_count(self) -> int:
        return -1 if self.fds is None else len(self.fds)

    @property
    def sockets(self) -> int:
        return socket_count(self.fds)


@dataclass
class LeakReport:
    """Delta between the baseline and the settled final census."""

    leaked_threads: List[str]
    leaked_fds: List[str]
    fd_delta: int
    socket_delta: int
    supported: bool

    @property
    def ok(self) -> bool:
        if not self.supported:
            return not self.leaked_threads
        return (not self.leaked_threads and self.fd_delta <= 0
                and self.socket_delta <= 0)

    def describe(self) -> str:
        if self.ok:
            return "no leaks: threads, fds and sockets are back to baseline"
        parts = []
        if self.leaked_threads:
            parts.append(f"threads {self.leaked_threads}")
        if self.fd_delta > 0:
            parts.append(f"+{self.fd_delta} fds {self.leaked_fds}")
        if self.socket_delta > 0:
            parts.append(f"+{self.socket_delta} sockets")
        return "leaked " + ", ".join(parts)


class LeakSentinel:
    """Baseline-vs-final resource comparison with settle retries."""

    def __init__(self, settle_timeout: float = 5.0,
                 settle_interval: float = 0.1):
        self.settle_timeout = settle_timeout
        self.settle_interval = settle_interval
        self._baseline: ResourceCensus | None = None

    def baseline(self) -> ResourceCensus:
        """Capture the pre-workload state.  Call before any scenario
        allocates anything."""
        gc.collect()
        self._baseline = ResourceCensus.capture()
        return self._baseline

    def _delta(self, final: ResourceCensus) -> LeakReport:
        base = self._baseline
        assert base is not None
        leaked_threads = sorted(
            (final.threads - base.threads).elements()
        )
        supported = base.fds is not None and final.fds is not None
        if supported:
            new_fds = sorted(set(final.fds) - set(base.fds))
            leaked_fds = [f"{fd}->{final.fds[fd]}" for fd in new_fds]
            fd_delta = final.fd_count - base.fd_count
            socket_delta = final.sockets - base.sockets
        else:
            leaked_fds, fd_delta, socket_delta = [], 0, 0
        return LeakReport(
            leaked_threads=leaked_threads,
            leaked_fds=leaked_fds,
            fd_delta=fd_delta,
            socket_delta=socket_delta,
            supported=supported,
        )

    def finish(self) -> LeakReport:
        """Capture the post-teardown state, settling first.

        Asynchronous teardown (executor threads draining after
        ``shutdown(wait=False)``, connection threads noticing their
        closed sockets) is given up to ``settle_timeout`` seconds to
        converge; the report reflects the *last* capture.
        """
        if self._baseline is None:
            raise RuntimeError("LeakSentinel.finish before baseline")
        deadline = time.monotonic() + self.settle_timeout
        while True:
            gc.collect()
            report = self._delta(ResourceCensus.capture())
            if report.ok or time.monotonic() >= deadline:
                return report
            time.sleep(self.settle_interval)


@dataclass
class RssWatermark:
    """Periodic RSS sampling with a warm-up / steady-state split.

    The first phase (until :meth:`mark_steady`) is warm-up: allocator
    arenas, import caches and crypto pools filling is expected growth.
    Flatness is judged on the steady phase only: the final sample must
    stay within the tolerance of the *first steady* sample.
    """

    samples: List[int] = field(default_factory=list)
    steady_start: int | None = None

    def sample(self) -> int:
        rss = rss_bytes()
        if rss >= 0:
            self.samples.append(rss)
        return rss

    def mark_steady(self) -> None:
        """End of warm-up: growth beyond here counts against the
        tolerance."""
        rss = self.sample()
        if rss >= 0:
            self.steady_start = rss

    @property
    def supported(self) -> bool:
        return bool(self.samples)

    @property
    def peak_mb(self) -> float:
        return max(self.samples) / 1e6 if self.samples else -1.0

    @property
    def steady_growth_mb(self) -> float:
        """Final sample minus the first steady-state sample, in MB
        (0.0 when sampling is unsupported or steady was never
        marked)."""
        if self.steady_start is None or not self.samples:
            return 0.0
        return (self.samples[-1] - self.steady_start) / 1e6

    def flat(self, tolerance_mb: float) -> bool:
        return self.steady_growth_mb <= tolerance_mb
