"""Seeded random permutations of tensor element positions.

A permutation here is the unit of the paper's obfuscation protocol
(Section III-C): the model provider reshapes a tensor to a 1-D vector in
lexicographic (row-major) order, permutes the element positions with a
fresh random seed each round, and later inverts the permutation.  There
are ``P!`` possible permutations of a length-``P`` vector, which is the
security argument of Section III-D.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

import numpy as np

from ..errors import ObfuscationError

T = TypeVar("T")


class Permutation:
    """A fixed permutation of ``length`` positions.

    ``apply`` moves the element at position ``i`` to position
    ``forward[i]``'s slot — concretely, ``out[j] = in[order[j]]`` where
    ``order`` is the sampled arrangement.  ``invert`` restores the
    original order.  Composition and equality are provided so protocol
    tests can verify round-trip identities algebraically.
    """

    __slots__ = ("_order", "_inverse")

    def __init__(self, order: Sequence[int]):
        order = list(order)
        n = len(order)
        if sorted(order) != list(range(n)):
            raise ObfuscationError(
                "order must be a permutation of range(n)"
            )
        self._order = tuple(order)
        inverse = [0] * n
        for out_pos, in_pos in enumerate(order):
            inverse[in_pos] = out_pos
        self._inverse = tuple(inverse)

    @classmethod
    def random(cls, length: int, seed: int) -> "Permutation":
        """Sample a uniformly random permutation from a seed."""
        if length < 1:
            raise ObfuscationError(f"length must be >= 1, got {length}")
        rng = random.Random(seed)
        order = list(range(length))
        rng.shuffle(order)
        return cls(order)

    @classmethod
    def identity(cls, length: int) -> "Permutation":
        return cls(range(length))

    @property
    def length(self) -> int:
        return len(self._order)

    @property
    def order(self) -> tuple[int, ...]:
        return self._order

    def apply(self, items: Sequence[T]) -> list[T]:
        """Permute a flat sequence: ``out[j] = items[order[j]]``."""
        if len(items) != self.length:
            raise ObfuscationError(
                f"sequence length {len(items)} != permutation length "
                f"{self.length}"
            )
        return [items[i] for i in self._order]

    def invert(self, items: Sequence[T]) -> list[T]:
        """Undo :meth:`apply` on a flat sequence."""
        if len(items) != self.length:
            raise ObfuscationError(
                f"sequence length {len(items)} != permutation length "
                f"{self.length}"
            )
        return [items[i] for i in self._inverse]

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Permute a 1-D ndarray."""
        values = np.asarray(values)
        if values.ndim != 1 or values.shape[0] != self.length:
            raise ObfuscationError(
                f"expected 1-D array of length {self.length}, got shape "
                f"{values.shape}"
            )
        return values[np.array(self._order)]

    def invert_array(self, values: np.ndarray) -> np.ndarray:
        """Undo :meth:`apply_array`."""
        values = np.asarray(values)
        if values.ndim != 1 or values.shape[0] != self.length:
            raise ObfuscationError(
                f"expected 1-D array of length {self.length}, got shape "
                f"{values.shape}"
            )
        return values[np.array(self._inverse)]

    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation equivalent to applying ``other`` then self."""
        if other.length != self.length:
            raise ObfuscationError("cannot compose permutations of different "
                                   "lengths")
        return Permutation([other._order[i] for i in self._order])

    def inverse(self) -> "Permutation":
        """Return the inverse permutation as a standalone object."""
        return Permutation(self._inverse)

    def is_identity(self) -> bool:
        return self._order == tuple(range(self.length))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._order == other._order

    def __hash__(self) -> int:
        return hash(self._order)

    def __repr__(self) -> str:
        preview = ", ".join(str(i) for i in self._order[:8])
        suffix = ", ..." if self.length > 8 else ""
        return f"Permutation(length={self.length}, order=[{preview}{suffix}])"
