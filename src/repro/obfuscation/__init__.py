"""Obfuscation substrate: seeded permutations and the leakage metric.

The paper protects non-linear operations by having the model provider
randomly permute tensor element positions before handing tensors to the
data provider (Section III-C), and quantifies the residual leakage of the
permuted-but-not-hidden values with distance correlation (Exp#5).
"""

from .permutation import Permutation
from .obfuscator import Obfuscator, ObfuscationRecord
from .leakage import distance_correlation, leakage_by_length
from .attacks import extraction_comparison, least_squares_extraction

__all__ = [
    "Permutation",
    "Obfuscator",
    "ObfuscationRecord",
    "distance_correlation",
    "leakage_by_length",
    "extraction_comparison",
    "least_squares_extraction",
]
