"""The model provider's per-round obfuscation state machine.

Section III-C requires that every round uses a *fresh* random permutation
(different seeds per round) and that the model provider can invert the
permutation it applied when the tensor comes back from the data provider.
The :class:`Obfuscator` owns that state: it derives a per-round seed from
a master seed, remembers which permutation is outstanding for each round,
and refuses out-of-order inversions — protocol misuse is an error, not
silent corruption.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Sequence, TypeVar

from ..errors import ObfuscationError
from .permutation import Permutation

T = TypeVar("T")


@dataclass(frozen=True)
class ObfuscationRecord:
    """Bookkeeping for one obfuscation round.

    Attributes:
        round_id: monotonically increasing round counter.
        permutation: the permutation applied in that round.
    """

    round_id: int
    permutation: Permutation


class Obfuscator:
    """Derives fresh per-round permutations and tracks them for inversion.

    The master seed stays at the model provider; the data provider never
    sees seeds or permutations, only permuted tensors.

    Distributed mode: the networked runtime runs each linear stage's
    obfuscator in its own worker process, so round ids must be globally
    unique across the cluster and inversion must survive retries (a
    failed-over stage task replays deobfuscation for a round another
    attempt already consumed).  ``first_round``/``round_stride``
    namespace each stage's round-id sequence (stage *i* of *S* stages
    issues ``i, i + stride, i + 2*stride, ...``), and ``stateless=True``
    rederives permutations from ``(master_seed, round_id)`` on demand —
    every issued permutation is a pure function of the pair, so any
    same-seeded obfuscator in any process can invert any round, any
    number of times.
    """

    def __init__(self, master_seed: int, first_round: int = 0,
                 round_stride: int = 1, stateless: bool = False):
        if round_stride < 1:
            raise ObfuscationError(
                f"round_stride must be >= 1, got {round_stride}"
            )
        if first_round < 0:
            raise ObfuscationError(
                f"first_round must be non-negative, got {first_round}"
            )
        self._master_seed = master_seed
        self._first_round = first_round
        self._round_stride = round_stride
        self._stateless = stateless
        self._next_round = first_round
        self._outstanding: dict[int, ObfuscationRecord] = {}
        self._history: list[ObfuscationRecord] = []
        # The stream runtime calls obfuscate()/deobfuscate() from
        # several stage threads concurrently.
        self._lock = threading.Lock()

    @property
    def rounds_started(self) -> int:
        return (self._next_round - self._first_round) // self._round_stride

    @property
    def stateless(self) -> bool:
        return self._stateless

    def history(self) -> tuple[ObfuscationRecord, ...]:
        """All permutations ever issued (for leakage analysis in Exp#5)."""
        return tuple(self._history)

    def _derive_seed(self, round_id: int) -> int:
        # A distinct, deterministic stream per round: seed a fresh
        # generator with the (master_seed, round_id) pair so adjacent
        # rounds share no obvious structure.
        return random.Random(
            f"{self._master_seed}:{round_id}"
        ).getrandbits(64)

    def obfuscate(self, items: Sequence[T]) -> tuple[int, list[T]]:
        """Permute a flat sequence with a fresh round permutation.

        Returns:
            (round_id, permuted items); the round id must be presented
            back to :meth:`deobfuscate` with the round-trip result.
        """
        with self._lock:
            round_id = self._next_round
            self._next_round += self._round_stride
        permutation = Permutation.random(
            len(items), self._derive_seed(round_id)
        )
        record = ObfuscationRecord(round_id, permutation)
        with self._lock:
            if not self._stateless:
                self._outstanding[round_id] = record
            self._history.append(record)
        return round_id, permutation.apply(items)

    def deobfuscate(self, round_id: int, items: Sequence[T]) -> list[T]:
        """Invert the permutation issued for ``round_id``.

        In the default stateful mode each round may be inverted exactly
        once; inverting an unknown or already-consumed round raises
        :class:`ObfuscationError`.  In stateless (distributed) mode the
        permutation is rederived from ``(master_seed, round_id,
        len(items))`` instead of looked up, so inversion is idempotent
        and works in any same-seeded process — the retry path depends
        on both properties.
        """
        if self._stateless:
            permutation = Permutation.random(
                len(items), self._derive_seed(round_id)
            )
            return permutation.invert(items)
        with self._lock:
            record = self._outstanding.pop(round_id, None)
        if record is None:
            raise ObfuscationError(
                f"round {round_id} is unknown or already deobfuscated"
            )
        return record.permutation.invert(items)

    def peek_permutation(self, round_id: int) -> Permutation:
        """Look up an outstanding round's permutation (model provider only)."""
        record = self._outstanding.get(round_id)
        if record is None:
            raise ObfuscationError(f"round {round_id} is not outstanding")
        return record.permutation
