"""Empirical attack evaluation: model extraction by a curious client.

Section III-D argues the data provider cannot recover the model
parameters because every intermediate tensor it sees is randomly
permuted per round.  This module makes that argument *testable*: it
mounts the natural linear-regression extraction attack a curious data
provider could run against the first linear layer —

    it knows its own inputs x and observes (permuted) outputs y',
    so it solves least squares  min_W ||X W^T - Y||  over many queries

— once against unpermuted outputs (obfuscation off: recovery succeeds,
showing the attack is real) and once against per-round-permuted outputs
(obfuscation on: recovery fails).  Exp#5's distance correlation
quantifies the leakage of *values*; this quantifies the protection of
*parameters*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..errors import ObfuscationError
from .permutation import Permutation


@dataclass(frozen=True)
class ExtractionOutcome:
    """Result of one extraction attempt.

    Attributes:
        relative_error: ||W_hat - W|| / ||W|| (Frobenius).
        residual: least-squares residual per sample.
    """

    relative_error: float
    residual: float


def least_squares_extraction(
    weight: np.ndarray,
    bias: np.ndarray,
    queries: int,
    obfuscate: bool,
    seed: int = 0,
) -> ExtractionOutcome:
    """Attack a linear layer ``y = W x + b`` with chosen queries.

    Args:
        weight: true (out, in) weights the attacker wants.
        bias: true (out,) bias.
        queries: number of (x, y) observations the attacker collects.
        obfuscate: permute each response with a fresh per-round
            permutation (the protocol's behaviour) or not (the
            vulnerable strawman).
        seed: RNG seed.
    """
    weight = np.asarray(weight, dtype=np.float64)
    bias = np.asarray(bias, dtype=np.float64)
    if weight.ndim != 2 or bias.shape != (weight.shape[0],):
        raise ObfuscationError("weight/bias shapes are inconsistent")
    if queries < weight.shape[1] + 1:
        raise ObfuscationError(
            "attacker needs at least in_features + 1 queries"
        )
    rng = np.random.default_rng(seed)
    seed_stream = random.Random(seed)
    out_dim, in_dim = weight.shape
    x = rng.standard_normal((queries, in_dim))
    y = x @ weight.T + bias
    if obfuscate:
        permuted = np.empty_like(y)
        for row in range(queries):
            permutation = Permutation.random(
                out_dim, seed_stream.getrandbits(48)
            )
            permuted[row] = permutation.apply_array(y[row])
        y = permuted
    # attacker solves [X 1] @ [W^T; b] = Y
    design = np.hstack([x, np.ones((queries, 1))])
    solution, residuals, _, _ = np.linalg.lstsq(design, y, rcond=None)
    w_hat = solution[:-1].T
    relative_error = float(
        np.linalg.norm(w_hat - weight) / max(np.linalg.norm(weight),
                                             1e-12)
    )
    residual = float(residuals.sum() / queries) if residuals.size \
        else 0.0
    return ExtractionOutcome(relative_error=relative_error,
                             residual=residual)


def extraction_comparison(
    out_dim: int = 16,
    in_dim: int = 8,
    queries: int = 200,
    seed: int = 0,
) -> tuple[ExtractionOutcome, ExtractionOutcome]:
    """(without obfuscation, with obfuscation) on a random layer."""
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((out_dim, in_dim))
    bias = rng.standard_normal(out_dim)
    plain = least_squares_extraction(weight, bias, queries,
                                     obfuscate=False, seed=seed)
    protected = least_squares_extraction(weight, bias, queries,
                                         obfuscate=True, seed=seed)
    return plain, protected
