"""Distance correlation (Székely et al. 2007) for leakage measurement.

Exp#5 of the paper quantifies how much information a permuted tensor
leaks about the original by computing the distance correlation between
the before- and after-obfuscation vectors (via the ``dcor`` package).
This module implements the sample distance correlation from first
principles: pairwise distance matrices, double centering, and the
normalized distance covariance.

dCor is 0 only for independent samples and 1 for identical ones; the
paper reports values from 0.29 (length 2^5) down to 0.02 (length 2^13),
falling as tensors grow.
"""

from __future__ import annotations

import random
from typing import Iterable

import numpy as np

from ..errors import ObfuscationError
from .permutation import Permutation


#: Row-block size for the memory-light distance-covariance pass.
_BLOCK_ROWS = 512


def distance_covariance(x: np.ndarray, y: np.ndarray) -> float:
    """Sample distance covariance of two equal-length 1-D samples.

    Uses the double-centering identity

        mean(A o B) = mean(a o b) - 2 * mean_i(abar_i * bbar_i)
                      + abar * bbar

    (A, B the centered distance matrices; abar_i row means; abar the
    grand mean), evaluated over row blocks so the n x n distance
    matrices are never materialized — exact, and O(block * n) memory
    even at the paper's 2^13 tensor length.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if x.shape != y.shape:
        raise ObfuscationError(
            f"samples must have equal length, got {x.shape} and {y.shape}"
        )
    if x.size < 2:
        raise ObfuscationError("distance covariance needs >= 2 samples")
    n = x.size
    row_means_x = np.empty(n)
    row_means_y = np.empty(n)
    cross_sum = 0.0
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        block_x = np.abs(x[start:stop, None] - x[None, :])
        block_y = np.abs(y[start:stop, None] - y[None, :])
        row_means_x[start:stop] = block_x.mean(axis=1)
        row_means_y[start:stop] = block_y.mean(axis=1)
        cross_sum += float((block_x * block_y).sum())
    grand_x = float(row_means_x.mean())
    grand_y = float(row_means_y.mean())
    value = (
        cross_sum / (n * n)
        - 2.0 * float((row_means_x * row_means_y).mean())
        + grand_x * grand_y
    )
    return float(np.sqrt(max(value, 0.0)))


def distance_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Sample distance correlation in [0, 1].

    Returns 0 when either sample is constant (zero distance variance),
    matching the convention of the reference ``dcor`` implementation.
    """
    dcov = distance_covariance(x, y)
    dvar_x = distance_covariance(x, x)
    dvar_y = distance_covariance(y, y)
    denom = dvar_x * dvar_y
    if denom == 0:
        return 0.0
    return float(dcov / np.sqrt(denom))


def permutation_leakage(
    values: np.ndarray, seed: int
) -> float:
    """dCor between a vector and a seeded random permutation of it."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    permutation = Permutation.random(values.size, seed)
    return distance_correlation(values, permutation.apply_array(values))


def leakage_by_length(
    lengths: Iterable[int],
    trials: int = 8,
    seed: int = 0,
    value_sampler=None,
) -> dict[int, float]:
    """Average permutation leakage for each tensor length (Table VI).

    Args:
        lengths: tensor lengths to evaluate (the paper sweeps 2^5..2^13).
        trials: independent (tensor, permutation) draws per length.
        seed: master seed.
        value_sampler: callable ``(rng, length) -> np.ndarray`` producing
            the pre-obfuscation tensor; defaults to standard normal
            activations, resembling post-linear-layer tensors.

    Returns:
        mapping from length to mean distance correlation.
    """
    rng = random.Random(seed)
    if value_sampler is None:
        def value_sampler(r: random.Random, n: int) -> np.ndarray:
            gen = np.random.default_rng(r.getrandbits(32))
            return gen.standard_normal(n)

    results: dict[int, float] = {}
    for length in lengths:
        if length < 2:
            raise ObfuscationError(
                f"tensor length must be >= 2, got {length}"
            )
        total = 0.0
        for _ in range(trials):
            values = value_sampler(rng, length)
            total += permutation_leakage(values, rng.getrandbits(48))
        results[length] = total / trials
    return results
