"""Per-stage executors: the work a stage performs on each stream item.

Executors carry the party-specific state (scaled affines + obfuscator
for linear stages at the model provider; the private key and activation
list for non-linear stages at the data provider) and know how to split
one request into per-thread tasks using tensor partitioning.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, RuntimeConfig
from ..crypto.engine import PaillierEngine
from ..crypto.paillier import PaillierPrivateKey
from ..crypto.sparse import SparseMatvecPlan
from ..crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from ..errors import ProtocolError, StreamError
from ..nn.layers import LayerKind
from ..obfuscation.obfuscator import Obfuscator
from ..partitioning.partition import partition_affine, partition_elementwise
from ..planner.plan import Plan
from ..protocol.roles import (
    DataProvider,
    ModelProvider,
    apply_activation,
    apply_activation_batch,
)
from ..scaling.fixed_point import ScaledAffine, scale_to_int
from .retry import DeadLetter


@dataclass
class StreamItem:
    """One inference request flowing through the pipeline.

    Attributes:
        request_id: monotone id assigned by the source.
        tensor: current encrypted tensor — scalar or lane-packed (a
            packed item carries a whole batch through the pipeline as
            one request; executors branch on the tensor type).
        obfuscation_round: outstanding obfuscator round id, if permuted.
        enqueue_time: perf-counter timestamp at admission.
        result: final probabilities once the sink stage ran.
        fault: set when the request was dead-lettered; downstream
            stages forward such tombstones untouched so the sink can
            account for every admitted request.
        trace_id: per-request trace id riding the item so every stage
            span (and retry/restart/dead-letter event) lands on the
            same trace; None when tracing is off.
        trace_parent: span id of the request's root span; stage spans
            attach under it.
    """

    request_id: int
    tensor: EncryptedTensor | PackedEncryptedTensor | None
    obfuscation_round: int | None = None
    enqueue_time: float = 0.0
    result: np.ndarray | None = None
    fault: DeadLetter | None = None
    trace_id: str | None = None
    trace_parent: str | None = None


def _with_cells(template, cells):
    """Rebuild a flat tensor of ``template``'s type around new cells
    (the permute/deobfuscate steps shuffle cells without touching any
    other tensor state)."""
    if isinstance(template, PackedEncryptedTensor):
        return PackedEncryptedTensor(
            template.public_key, cells, (len(cells),),
            template.packer, template.batch, template.exponent,
        )
    return EncryptedTensor(
        template.public_key, cells, (len(cells),), template.exponent
    )


class LinearStageExecutor:
    """Model-provider stage: inverse-obfuscate, affine(s), obfuscate.

    ``plans`` (parallel to ``affines``; ``None`` entries or ``None``
    outright mean dense) carries each layer's
    :class:`~repro.crypto.sparse.SparseMatvecPlan`.  A planned affine
    runs whole-layer through the engine's compressed ``fc_matvec`` —
    bit-identical to the dense path — instead of being thread-
    partitioned: row-block subtasks would fragment exactly the
    column-level dedup the plan exists for, and the engine brings its
    own process-pool dispatch for large plans.  ``engine_labels``
    (e.g. ``{"worker": ..., "tenant": ...}``) label the lazily-built
    engine's ``paillier_power_cache_entries`` gauge so a fleet
    worker's caches are attributable per tenant in /metrics.
    """

    def __init__(
        self,
        stage_index: int,
        affines: Sequence[ScaledAffine],
        obfuscator: Obfuscator,
        threads: int,
        use_partitioning: bool,
        rng: random.Random,
        final: bool,
        config: RuntimeConfig = DEFAULT_CONFIG,
        obs=None,
        plans: Sequence[SparseMatvecPlan | None] | None = None,
        engine_labels: dict | None = None,
    ):
        if threads < 1:
            raise StreamError("executor needs >= 1 thread")
        self.stage_index = stage_index
        self.affines = list(affines)
        self.plans = (list(plans) if plans is not None
                      else [None] * len(self.affines))
        if len(self.plans) != len(self.affines):
            raise StreamError(
                f"got {len(self.plans)} matvec plans for "
                f"{len(self.affines)} affines"
            )
        self.obfuscator = obfuscator
        self.threads = threads
        self.use_partitioning = use_partitioning
        self.final = final
        self._rng = rng
        self._config = config
        self._obs = obs
        self._engine_labels = dict(engine_labels or {})
        # Batched crypto engine, created lazily once the first item
        # reveals the session's public key (the model provider side
        # never holds the private key, so no CRT here).
        self._engine: PaillierEngine | None = None
        # Lazily (re)created: a drained pipeline shuts the pool down,
        # but executors outlive streams — a reused Pipeline must get a
        # fresh pool, not "cannot schedule new futures after shutdown".
        self._pool: ThreadPoolExecutor | None = None
        # Static-bias encryption cache (model weights never change):
        # keyed by (affine index, input exponent); lane-packed items
        # use a separate cache keyed additionally by lane geometry.
        self._bias_cache: dict[tuple[int, int], EncryptedTensor] = {}
        self._packed_bias_cache: dict[tuple, PackedEncryptedTensor] = {}

    def _engine_for(self, public_key) -> PaillierEngine:
        if self._engine is None or self._engine.public_key.n != public_key.n:
            self._engine = PaillierEngine(
                public_key,
                workers=self._config.workers,
                pool_size=self._config.blinding_pool_size,
                window_bits=self._config.power_window_bits,
                seed=self._config.seed ^ (0x57E << 8) ^ self.stage_index,
                obs=self._obs,
                dispatch_min_items=self._config.dispatch_min_items,
                backend=self._config.bigint_backend,
                power_cache_entries=self._config.power_cache_entries,
                power_cache_labels=self._engine_labels,
            )
        return self._engine

    def process(self, item: StreamItem) -> StreamItem:
        if item.tensor is None:
            raise StreamError("linear stage received an empty item")
        cells = list(item.tensor.flatten().cells())
        if item.obfuscation_round is not None:
            cells = self.obfuscator.deobfuscate(
                item.obfuscation_round, cells
            )
        current = _with_cells(item.tensor, cells)
        for affine_index, affine in enumerate(self.affines):
            current = self._apply_affine(affine_index, affine, current,
                                         self.plans[affine_index])
        if self.final:
            item.tensor = current
            item.obfuscation_round = None
            return item
        round_id, permuted = self.obfuscator.obfuscate(
            list(current.cells())
        )
        item.tensor = _with_cells(current, permuted)
        item.obfuscation_round = round_id
        return item

    def _packed_bias(
        self, affine_index: int, affine: ScaledAffine,
        tensor: PackedEncryptedTensor,
    ) -> PackedEncryptedTensor:
        key = (affine_index, tensor.exponent, tensor.batch,
               tensor.packer.lane_bits)
        cached = self._packed_bias_cache.get(key)
        if cached is None:
            engine = self._engine_for(tensor.public_key)
            bias = np.asarray(affine.bias_at(tensor.exponent)).reshape(-1)
            lanes = [[int(b)] * tensor.batch for b in bias]
            cells = engine.encrypt_many_packed(
                lanes, tensor.packer, rng=self._rng
            )
            cached = PackedEncryptedTensor(
                tensor.public_key, cells, (len(cells),),
                tensor.packer, tensor.batch,
                exponent=tensor.exponent + affine.decimals,
            )
            self._packed_bias_cache[key] = cached
        return cached

    def _apply_affine(
        self, affine_index: int, affine: ScaledAffine,
        tensor: EncryptedTensor,
        plan: SparseMatvecPlan | None = None,
    ) -> EncryptedTensor:
        packed = isinstance(tensor, PackedEncryptedTensor)
        if packed:
            encrypted_bias = self._packed_bias(affine_index, affine,
                                               tensor)
        else:
            cache_key = (affine_index, tensor.exponent)
            encrypted_bias = self._bias_cache.get(cache_key)
            if encrypted_bias is None:
                encrypted_bias = EncryptedTensor.encrypt(
                    affine.bias_at(tensor.exponent), tensor.public_key,
                    self._rng,
                    exponent=tensor.exponent + affine.decimals,
                )
                self._bias_cache[cache_key] = encrypted_bias
        out_exponent = tensor.exponent + affine.decimals

        engine = self._engine_for(tensor.public_key)

        if plan is not None:
            # Compressed layer: run whole through the engine's sparse
            # kernel (partitioned row blocks would split the plan's
            # per-column dedup; the engine dispatches large plans to
            # its own process pool).  Bit-identical to the task path.
            out = tensor.affine(
                affine.weight,
                encrypted_bias,
                self._rng,
                weight_exponent=affine.decimals,
                engine=engine,
                plan=plan,
            )
            if out.exponent != out_exponent:
                raise StreamError("affine exponent bookkeeping mismatch")
            return out

        tasks = partition_affine(
            affine, self.threads,
            input_partitioning=self.use_partitioning,
        )

        def run_task(task):
            sub_input = tensor.gather(task.input_indices)
            return sub_input.affine(
                task.weight,
                encrypted_bias.gather(task.output_indices),
                self._rng,
                weight_exponent=affine.decimals,
                engine=engine,
            )

        if len(tasks) == 1:
            parts = [run_task(tasks[0])]
        else:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix=f"repro-linear-{self.stage_index}",
                )
            parts = list(self._pool.map(run_task, tasks))
        combined = (PackedEncryptedTensor if packed
                    else EncryptedTensor).concatenate(parts)
        if combined.exponent != out_exponent:
            raise StreamError("affine exponent bookkeeping mismatch")
        return combined

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None


class NonLinearStageExecutor:
    """Data-provider stage: decrypt, activations, re-encrypt."""

    def __init__(
        self,
        stage_index: int,
        activations: Sequence[str],
        private_key: PaillierPrivateKey,
        value_decimals: int,
        threads: int,
        rng: random.Random,
        final: bool,
        engine: PaillierEngine | None = None,
    ):
        if threads < 1:
            raise StreamError("executor needs >= 1 thread")
        self.stage_index = stage_index
        self.activations = list(activations)
        self.final = final
        self._private_key = private_key
        self._value_decimals = value_decimals
        self.threads = threads
        self._rng = rng
        # The data provider's engine (CRT blinding pool + batched
        # decryption); shared across stages like the private key is.
        self._engine = engine
        # Lazily (re)created across streams; see LinearStageExecutor.
        self._pool: ThreadPoolExecutor | None = None
        if not final and any(a == "softmax" for a in self.activations):
            raise ProtocolError(
                "SoftMax only allowed in the final stage (Section III-C)"
            )

    def process(self, item: StreamItem) -> StreamItem:
        if item.tensor is None:
            raise StreamError("non-linear stage received an empty item")
        tensor = item.tensor.flatten()
        packed = isinstance(tensor, PackedEncryptedTensor)
        tasks = partition_elementwise(tensor.size, self.threads)

        def decrypt_task(task):
            sub = tensor.gather(task.input_indices)
            return sub.decrypt_float(self._private_key,
                                     engine=self._engine)

        if len(tasks) == 1:
            pieces = [decrypt_task(tasks[0])]
        else:
            pieces = list(self._pool_for().map(decrypt_task, tasks))
        # Packed pieces are (batch, k) blocks: join along positions.
        flat = np.concatenate(pieces, axis=-1)
        for activation in self.activations:
            flat = (apply_activation_batch(activation, flat, self.final)
                    if packed
                    else apply_activation(activation, flat, self.final))
        if self.final:
            item.result = flat
            item.tensor = None
            item.obfuscation_round = None
            return item
        rescaled = scale_to_int(flat, self._value_decimals)

        def encrypt_task(task):
            if packed:
                values = rescaled[:, list(task.input_indices)]
                return PackedEncryptedTensor.encrypt_batch(
                    values, tensor.packer,
                    exponent=self._value_decimals,
                    engine=self._engine,
                )
            values = rescaled[list(task.input_indices)]
            if self._engine is not None \
                    and self._engine.public_key.n == tensor.public_key.n:
                return EncryptedTensor.encrypt(
                    values, tensor.public_key,
                    exponent=self._value_decimals,
                    engine=self._engine,
                )
            return EncryptedTensor.encrypt(
                values, tensor.public_key, self._rng,
                exponent=self._value_decimals,
            )

        if len(tasks) == 1:
            parts = [encrypt_task(tasks[0])]
        else:
            parts = list(self._pool_for().map(encrypt_task, tasks))
        item.tensor = (PackedEncryptedTensor if packed
                       else EncryptedTensor).concatenate(parts)
        # The tensor stays in permuted order; the obfuscation round id
        # is carried through untouched for the next linear stage.
        return item

    def _pool_for(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads,
                thread_name_prefix=f"repro-nonlinear-{self.stage_index}",
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None


def build_executors(
    model_provider: ModelProvider,
    data_provider: DataProvider,
    plan: Plan,
    obs=None,
) -> List[object]:
    """Instantiate one executor per stage from the two parties + plan.

    The linear executors share the model provider's obfuscator and
    scaled affines; the non-linear executors get the data provider's
    private key — mirroring where state physically lives.  ``obs``
    (an :class:`~repro.observability.Observability`) flows into the
    linear executors' lazily-built engines; the non-linear executors
    inherit whatever the data provider's engine was built with.
    """
    executors: List[object] = []
    stages = plan.stages
    rng = random.Random(model_provider.config.seed ^ 0x57)
    num_stages = len(stages)
    for stage in stages:
        threads = plan.threads_for(stage.index)
        final = stage.index >= num_stages - 2
        if stage.kind is LayerKind.LINEAR:
            stage_plan = model_provider._linear_plans[stage.index]
            executors.append(
                LinearStageExecutor(
                    stage.index,
                    stage_plan.affines,
                    model_provider._obfuscator,
                    threads,
                    plan.use_tensor_partitioning,
                    rng,
                    final=final and stage.index == num_stages - 2,
                    config=model_provider.config,
                    obs=obs,
                    plans=stage_plan.matvec_plans,
                )
            )
        else:
            activations = model_provider.nonlinear_activations(
                stage.index
            )
            executors.append(
                NonLinearStageExecutor(
                    stage.index,
                    activations,
                    data_provider._private_key,
                    data_provider.value_decimals,
                    threads,
                    rng,
                    final=stage.index == num_stages - 1,
                    engine=data_provider.engine,
                )
            )
    return executors
