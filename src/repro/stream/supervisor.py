"""Worker supervision: heartbeats, restarts, and orderly shutdown.

The :class:`Supervisor` owns the pipeline's stage workers.  It polls
worker liveness on a monitor thread:

* a worker that finished normally (inbound drained) is left alone;
* a worker whose thread died (a :class:`~repro.errors.WorkerCrashError`
  from the executor, a forwarding failure, any bug) is **restarted** —
  a fresh :class:`StageWorker` is bound to the same executor and
  channels, and the dead incarnation's in-flight item is re-injected
  (at the head of its inbound channel if it was still unprocessed, at
  the head of its outbound channel if it was processed but not yet
  forwarded) — up to a per-stage ``restart_budget``;
* when the budget is exhausted the failure is **fatal**: the
  supervisor records it, closes every channel (waking all blocked
  producers and consumers), waits for the remaining threads to exit,
  and finalizes every worker so no thread is left blocked on a channel
  and no executor pool is leaked.

Heartbeat ages are sampled each poll and exposed via
:meth:`Supervisor.heartbeat_ages` / :meth:`Supervisor.stalled_stages`
for observability.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import StageFailedError
from ..observability import OBS_OFF, Observability
from .channel import Channel
from .retry import DeadLetter
from .worker import StageWorker


@dataclass
class _StageSlot:
    """Current incarnation plus totals from dead incarnations."""

    worker: StageWorker
    restarts: int = 0
    items_processed: int = 0
    busy_seconds: float = 0.0
    crash_log: List[str] = field(default_factory=list)

    def total_items(self) -> int:
        return self.items_processed + self.worker.items_processed

    def total_busy(self) -> float:
        return self.busy_seconds + self.worker.busy_seconds

    def absorb_dead(self, dead: StageWorker) -> None:
        self.items_processed += dead.items_processed
        self.busy_seconds += dead.busy_seconds


class Supervisor:
    """Monitors stage workers, restarting crashed ones within budget.

    Args:
        workers: one started-or-startable worker per stage, in
            pipeline order.
        channels: every channel in the pipeline (source .. sink);
            closed wholesale on fatal shutdown.
        restart_budget: restarts allowed per stage before the failure
            is fatal.
        poll_interval: monitor thread sampling period in seconds.
        stall_threshold: heartbeat age in seconds beyond which a stage
            is reported by :meth:`stalled_stages` (observability only;
            a stalled-but-alive worker is usually just backpressured).
        obs: observability sinks; each restart increments a per-stage
            ``stream_restarts`` counter and records a ``restart``
            event span on the in-flight item's trace.
    """

    def __init__(
        self,
        workers: Sequence[StageWorker],
        channels: Sequence[Channel],
        restart_budget: int = 2,
        poll_interval: float = 0.02,
        stall_threshold: float = 30.0,
        obs: Observability | None = None,
    ):
        if restart_budget < 0:
            raise ValueError("restart_budget must be non-negative")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.restart_budget = restart_budget
        self.poll_interval = poll_interval
        self.stall_threshold = stall_threshold
        self.fatal_error: StageFailedError | None = None
        self.obs = obs if obs is not None else OBS_OFF
        self._slots = [_StageSlot(worker=w) for w in workers]
        self._channels = list(channels)
        self._stop = threading.Event()
        self._started = False
        self._thread = threading.Thread(
            target=self._monitor, name="repro-stream-supervisor",
            daemon=True
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Mark workers supervised, start them, start monitoring."""
        for slot in self._slots:
            slot.worker.supervised = True
            slot.worker.start()
        self._started = True
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait for the monitor to finish (all stages done or fatal
        shutdown complete)."""
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise StageFailedError(
                "supervisor did not finish within the join timeout"
            )

    def shutdown(self) -> None:
        """Force drain-and-shutdown (e.g. the sink drain timed out).

        Does not synthesize a fatal error: the caller knows why it is
        shutting down and reports that itself."""
        self._stop.set()
        self._fatal_shutdown()

    # -- monitoring ----------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.is_set():
            if self._sweep():
                break
            self._stop.wait(self.poll_interval)

    def _sweep(self) -> bool:
        """One liveness pass; True when every stage has wound down."""
        all_done = True
        for index, slot in enumerate(self._slots):
            worker = slot.worker
            if worker.is_alive():
                all_done = False
                continue
            if worker.completed:
                continue
            if not worker.crashed:
                # Not started or exited without marking; treat as done.
                continue
            slot.crash_log.append(repr(worker.error))
            if (self.fatal_error is None
                    and not self._stop.is_set()
                    and slot.restarts < self.restart_budget):
                self._restart(index, slot)
                all_done = False
            else:
                if self.fatal_error is None \
                        and not self._stop.is_set():
                    self.fatal_error = StageFailedError(
                        f"stage {worker.name} exhausted its restart "
                        f"budget ({self.restart_budget}); last error: "
                        f"{worker.error!r}"
                    )
                    self.fatal_error.__cause__ = worker.error
                self._fatal_shutdown()
                return True
        return all_done

    def _restart(self, index: int, slot: _StageSlot) -> None:
        dead = slot.worker
        slot.absorb_dead(dead)
        replacement = dead.respawn()
        inflight = dead.inflight
        if inflight is not None:
            # Unprocessed items rerun the stage; a processed item that
            # died in the forward hand-off skips straight downstream.
            if dead.inflight_processed and dead.outbound is not None:
                dead.outbound.put_front(inflight)
            else:
                dead.inbound.put_front(inflight)
        slot.worker = replacement
        slot.restarts += 1
        self.obs.registry.counter("stream_restarts",
                                  stage=str(index)).inc()
        self.obs.tracer.event(
            "restart",
            trace_id=getattr(inflight, "trace_id", None),
            parent_id=getattr(inflight, "trace_parent", None),
            stage=index,
            restart=slot.restarts,
            reinjected=inflight is not None,
            error=repr(dead.error),
        )
        replacement.start()

    def _fatal_shutdown(self) -> None:
        """Close every channel, wait for threads, finalize workers."""
        for channel in self._channels:
            channel.close()
        deadline = time.monotonic() + 10.0
        for slot in self._slots:
            remaining = max(0.0, deadline - time.monotonic())
            slot.worker.join_quietly(timeout=remaining)
        for slot in self._slots:
            slot.worker.finalize()

    # -- aggregation ---------------------------------------------------

    @property
    def stage_restarts(self) -> List[int]:
        return [slot.restarts for slot in self._slots]

    @property
    def total_restarts(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    def stage_items(self) -> List[int]:
        return [slot.total_items() for slot in self._slots]

    def stage_busy_seconds(self) -> List[float]:
        return [slot.total_busy() for slot in self._slots]

    def stage_retries(self) -> List[int]:
        return [slot.worker.ledger.retries for slot in self._slots]

    def stage_backoff_events(self) -> List[int]:
        return [slot.worker.ledger.backoff_events
                for slot in self._slots]

    def dead_letters(self) -> List[DeadLetter]:
        letters: List[DeadLetter] = []
        for slot in self._slots:
            letters.extend(slot.worker.ledger.dead_letters)
        return letters

    def heartbeat_ages(self) -> List[float]:
        return [slot.worker.heartbeat_age() for slot in self._slots]

    def stalled_stages(self) -> List[int]:
        """Indices of live stages whose heartbeat is older than the
        stall threshold (blocked or wedged — informational)."""
        return [
            index for index, slot in enumerate(self._slots)
            if slot.worker.is_alive()
            and slot.worker.heartbeat_age() > self.stall_threshold
        ]

    def live_workers(self) -> List[str]:
        return [slot.worker.name for slot in self._slots
                if slot.worker.is_alive()]
