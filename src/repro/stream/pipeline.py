"""The assembled inference pipeline: source -> stages -> sink.

:class:`Pipeline` wires one :class:`StageWorker` per merged primitive
layer with bounded channels, admits a stream of raw input tensors from
a producer thread, and collects per-request latency plus aggregate
throughput.  This is the real (threaded, crypto-correct) counterpart
of the discrete-event simulator: identical plans, identical stage
semantics, actual Paillier arithmetic.

Fault tolerance (docs/FAULT_TOLERANCE.md): stage workers retry
transient failures under a :class:`~repro.stream.retry.RetryPolicy`;
a request that hits a permanent error, exhausts its retries, or blows
its deadline is **dead-lettered** — recorded in
:class:`StreamStats.dead_letters` with reason and attempt count while
every other request completes normally.  A
:class:`~repro.stream.supervisor.Supervisor` restarts crashed workers
within a restart budget and performs orderly drain-and-shutdown when
a failure is fatal, so :meth:`Pipeline.run_stream` never leaves live
worker threads behind.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import StageFailedError, StreamError
from ..observability import OBS_OFF, Observability
from ..planner.plan import Plan
from ..protocol.roles import DataProvider, ModelProvider
from .channel import Channel, ChannelClosed
from .executors import StreamItem, build_executors
from .faults import FaultPlan, wrap_executors
from .retry import DeadLetter, RetryPolicy
from .supervisor import Supervisor
from .worker import StageWorker


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one streamed inference request.

    Attributes:
        request_id: admission order.
        prediction: argmax class.
        probabilities: final activation vector.
        latency: seconds from admission to completion.
    """

    request_id: int
    prediction: int
    probabilities: np.ndarray
    latency: float


@dataclass
class StreamStats:
    """Aggregate pipeline statistics for one run."""

    results: List[RequestResult] = field(default_factory=list)
    dead_letters: List[DeadLetter] = field(default_factory=list)
    wall_time: float = 0.0
    stage_busy_seconds: List[float] = field(default_factory=list)
    stage_items: List[int] = field(default_factory=list)
    stage_retries: List[int] = field(default_factory=list)
    stage_backoff_events: List[int] = field(default_factory=list)
    stage_restarts: List[int] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        """Mean completion latency in seconds.

        NaN when no request completed (e.g. every request was
        dead-lettered) — a run with zero completions is a legitimate
        outcome of the fault-tolerant path, not an API misuse, so it
        must not raise.
        """
        if not self.results:
            return float("nan")
        return float(np.mean([r.latency for r in self.results]))

    @property
    def throughput(self) -> float:
        if self.wall_time <= 0:
            raise StreamError("wall time not recorded")
        return len(self.results) / self.wall_time

    @property
    def total_retries(self) -> int:
        return sum(self.stage_retries)

    @property
    def total_backoff_events(self) -> int:
        return sum(self.stage_backoff_events)

    @property
    def total_restarts(self) -> int:
        return sum(self.stage_restarts)

    def stage_utilizations(self) -> List[float]:
        """Fraction of the run each stage spent busy (its pipeline
        occupancy); the bottleneck stage is the one nearest 1.0."""
        if self.wall_time <= 0:
            raise StreamError("wall time not recorded")
        return [busy / self.wall_time
                for busy in self.stage_busy_seconds]

    def failure_report(self) -> str:
        """Human-readable dead-letter summary for one run."""
        if not self.dead_letters:
            return "no dead-lettered requests"
        lines = [f"{len(self.dead_letters)} dead-lettered request(s):"]
        for letter in sorted(self.dead_letters,
                             key=lambda d: d.request_id):
            lines.append(f"  {letter.describe()}")
        return "\n".join(lines)

    def utilization_report(self) -> str:
        """Human-readable per-stage occupancy table for one run."""
        completed = len(self.results)
        latency = (f", mean latency {self.mean_latency:.2f}s"
                   if self.results else "")
        failures = (f", {len(self.dead_letters)} dead-lettered"
                    if self.dead_letters else "")
        lines = [
            f"{completed} requests in {self.wall_time:.2f}s "
            f"({self.throughput:.2f} req/s{latency}{failures})"
        ]
        utilizations = self.stage_utilizations()
        bottleneck = max(range(len(utilizations)),
                         key=lambda i: utilizations[i]) \
            if utilizations else -1
        for index, utilization in enumerate(utilizations):
            bar = "#" * int(round(utilization * 30))
            marker = "  <- bottleneck" if index == bottleneck else ""
            extras = ""
            if index < len(self.stage_retries) \
                    and self.stage_retries[index]:
                extras += f" retries={self.stage_retries[index]}"
            if index < len(self.stage_backoff_events) \
                    and self.stage_backoff_events[index]:
                extras += (" backoffs="
                           f"{self.stage_backoff_events[index]}")
            if index < len(self.stage_restarts) \
                    and self.stage_restarts[index]:
                extras += f" restarts={self.stage_restarts[index]}"
            lines.append(
                f"  stage {index}: {utilization:6.1%} |{bar:<30}|"
                f"{extras}{marker}"
            )
        if self.dead_letters:
            lines.append(self.failure_report())
        return "\n".join(lines)


class Pipeline:
    """A runnable pipeline bound to two parties and a plan.

    Args:
        model_provider / data_provider / plan: the two parties and the
            stage plan (as before).
        channel_capacity: bounded inter-stage queue depth.
        max_retries: legacy knob — when ``retry_policy`` is omitted,
            builds an immediate (no-backoff) policy.
        retry_policy: backoff + classification policy for every stage.
        request_deadline: per-request seconds from admission before a
            request is dead-lettered instead of processed further.
        fault_plan: scripted faults for robustness testing
            (:mod:`repro.stream.faults`).
        restart_budget: crashed-worker restarts allowed per stage.
        sink_timeout: max seconds the sink drain waits for any single
            item before forcing shutdown.
        executors: override the stage executors (one per plan stage)
            instead of building the in-process ones — the networked
            runtime passes remote stage proxies here so the thread
            pipeline and the network pipeline share this exact
            admission/retry/dead-letter/supervision code path.
        obs: observability sinks shared by admission, every stage
            worker, and the supervisor.  Defaults to the model
            provider's (then the data provider's) instance when one of
            them has observability enabled, else the no-op twins.
    """

    def __init__(
        self,
        model_provider: ModelProvider,
        data_provider: DataProvider,
        plan: Plan,
        channel_capacity: int = 8,
        max_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        request_deadline: float | None = None,
        fault_plan: FaultPlan | None = None,
        restart_budget: int = 2,
        sink_timeout: float = 300.0,
        executors: Sequence | None = None,
        obs: Observability | None = None,
    ):
        model_provider.register_public_key(data_provider.public_key)
        self.plan = plan
        self.model_provider = model_provider
        self.data_provider = data_provider
        if obs is None:
            for candidate in (getattr(model_provider, "obs", None),
                              getattr(data_provider, "obs", None)):
                if candidate is not None and candidate.enabled:
                    obs = candidate
                    break
        self.obs = obs if obs is not None else OBS_OFF
        self._executors = wrap_executors(
            list(executors) if executors is not None
            else build_executors(model_provider, data_provider, plan,
                                 obs=self.obs),
            fault_plan,
        )
        self._channel_capacity = channel_capacity
        self._retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy.immediate(max_retries)
        )
        self._request_deadline = request_deadline
        self._restart_budget = restart_budget
        self._sink_timeout = sink_timeout

    def run_stream(self, inputs: Sequence[np.ndarray]) -> StreamStats:
        """Push all inputs through the pipeline; block until drained.

        Inputs are admitted from a producer thread, so the bounded
        source channel backpressures admission against sink draining
        instead of deadlocking when ``len(inputs)`` exceeds total
        channel capacity.

        Returns partial results plus a failure report
        (:class:`StreamStats.dead_letters`) when some requests were
        dead-lettered; raises :class:`StageFailedError` only on a
        fatal runtime failure (a stage exhausted its restart budget),
        after an orderly drain-and-shutdown.
        """
        inputs = list(inputs)
        if not inputs:
            raise StreamError("no inputs to stream")
        num_stages = len(self._executors)
        channels = [
            Channel(self._channel_capacity) for _ in range(num_stages + 1)
        ]
        workers = [
            StageWorker(
                name=f"stage-{index}",
                executor=executor,
                inbound=channels[index],
                outbound=channels[index + 1],
                retry_policy=self._retry_policy,
                deadline=self._request_deadline,
                dead_letter=True,
                stage_index=index,
                seed=index,
                obs=self.obs,
            )
            for index, executor in enumerate(self._executors)
        ]
        supervisor = Supervisor(
            workers, channels, restart_budget=self._restart_budget,
            obs=self.obs,
        )

        stats = StreamStats()
        source = channels[0]
        sink = channels[-1]
        tracer = self.obs.tracer
        # Per-request root spans: opened on the producer thread,
        # finished at the sink drain (hence begin_span, not the
        # context manager).  With tracing off these are all the
        # NULL_SPAN singleton.
        roots: dict = {}

        def admit() -> None:
            # Producer thread: encrypt + enqueue under backpressure.
            try:
                for request_id, raw in enumerate(inputs):
                    trace_id = tracer.new_trace_id(f"req{request_id}")
                    root = tracer.begin_span(
                        "request", trace_id=trace_id,
                        request_id=request_id,
                    )
                    roots[request_id] = root
                    with tracer.span(
                        "admit", trace_id=trace_id,
                        parent_id=root.span_id, request_id=request_id,
                    ):
                        tensor = self.data_provider.encrypt_input(
                            np.asarray(raw)
                        )
                        source.put(StreamItem(
                            request_id=request_id,
                            tensor=tensor,
                            enqueue_time=time.perf_counter(),
                            trace_id=trace_id,
                            trace_parent=root.span_id,
                        ))
                source.close()
            except StreamError:
                # Fatal shutdown closed the source mid-admission; the
                # supervisor's failure report covers it.
                pass

        producer = threading.Thread(
            target=admit, name="repro-stream-source", daemon=True
        )
        start_wall = time.perf_counter()
        supervisor.start()
        producer.start()

        accounted = 0
        drain_error: StreamError | None = None
        while accounted < len(inputs):
            try:
                item = sink.get(timeout=self._sink_timeout)
            except ChannelClosed:
                break  # fatal shutdown closed the sink
            except StreamError as exc:
                drain_error = exc
                supervisor.shutdown()
                break
            if item.fault is not None:
                accounted += 1
                root = roots.pop(item.request_id, None)
                if root is not None:
                    root.set_attr("outcome", "dead-letter")
                    root.finish()
                continue
            if item.result is None:
                drain_error = StreamError(
                    f"request {item.request_id} exited without a result"
                )
                supervisor.shutdown()
                break
            stats.results.append(RequestResult(
                request_id=item.request_id,
                prediction=int(np.asarray(item.result).argmax()),
                probabilities=np.asarray(item.result),
                latency=time.perf_counter() - item.enqueue_time,
            ))
            accounted += 1
            root = roots.pop(item.request_id, None)
            if root is not None:
                root.set_attr("outcome", "completed")
                root.finish()
        stats.wall_time = time.perf_counter() - start_wall

        supervisor.join(timeout=60.0)
        producer.join(timeout=10.0)
        for root in roots.values():
            # Requests stranded by a fatal shutdown still get a closed
            # root span so no trace is left dangling.
            root.set_attr("outcome", "aborted")
            root.finish()
        roots.clear()
        stats.stage_busy_seconds = supervisor.stage_busy_seconds()
        stats.stage_items = supervisor.stage_items()
        stats.stage_retries = supervisor.stage_retries()
        stats.stage_backoff_events = supervisor.stage_backoff_events()
        stats.stage_restarts = supervisor.stage_restarts
        stats.dead_letters = supervisor.dead_letters()

        if supervisor.fatal_error is not None:
            raise supervisor.fatal_error
        if drain_error is not None:
            raise drain_error
        completed = len(stats.results) + len(stats.dead_letters)
        if completed < len(inputs):
            raise StreamError(
                f"pipeline drained after {completed}/{len(inputs)} "
                "requests"
            )
        return stats
