"""The assembled inference pipeline: source -> stages -> sink.

:class:`Pipeline` wires one :class:`StageWorker` per merged primitive
layer with bounded channels, admits a stream of raw input tensors, and
collects per-request latency plus aggregate throughput.  This is the
real (threaded, crypto-correct) counterpart of the discrete-event
simulator: identical plans, identical stage semantics, actual Paillier
arithmetic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import StreamError
from ..planner.plan import Plan
from ..protocol.roles import DataProvider, ModelProvider
from .channel import Channel, ChannelClosed
from .executors import StreamItem, build_executors
from .worker import StageWorker


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one streamed inference request.

    Attributes:
        request_id: admission order.
        prediction: argmax class.
        probabilities: final activation vector.
        latency: seconds from admission to completion.
    """

    request_id: int
    prediction: int
    probabilities: np.ndarray
    latency: float


@dataclass
class StreamStats:
    """Aggregate pipeline statistics for one run."""

    results: List[RequestResult] = field(default_factory=list)
    wall_time: float = 0.0
    stage_busy_seconds: List[float] = field(default_factory=list)
    stage_items: List[int] = field(default_factory=list)
    stage_retries: List[int] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        if not self.results:
            raise StreamError("no results collected")
        return float(np.mean([r.latency for r in self.results]))

    @property
    def throughput(self) -> float:
        if self.wall_time <= 0:
            raise StreamError("wall time not recorded")
        return len(self.results) / self.wall_time

    def stage_utilizations(self) -> List[float]:
        """Fraction of the run each stage spent busy (its pipeline
        occupancy); the bottleneck stage is the one nearest 1.0."""
        if self.wall_time <= 0:
            raise StreamError("wall time not recorded")
        return [busy / self.wall_time
                for busy in self.stage_busy_seconds]

    def utilization_report(self) -> str:
        """Human-readable per-stage occupancy table for one run."""
        lines = [
            f"{len(self.results)} requests in {self.wall_time:.2f}s "
            f"({self.throughput:.2f} req/s, mean latency "
            f"{self.mean_latency:.2f}s)"
        ]
        utilizations = self.stage_utilizations()
        bottleneck = max(range(len(utilizations)),
                         key=lambda i: utilizations[i]) \
            if utilizations else -1
        for index, utilization in enumerate(utilizations):
            bar = "#" * int(round(utilization * 30))
            marker = "  <- bottleneck" if index == bottleneck else ""
            retries = (f" retries={self.stage_retries[index]}"
                       if index < len(self.stage_retries)
                       and self.stage_retries[index] else "")
            lines.append(
                f"  stage {index}: {utilization:6.1%} |{bar:<30}|"
                f"{retries}{marker}"
            )
        return "\n".join(lines)


class Pipeline:
    """A runnable pipeline bound to two parties and a plan."""

    def __init__(
        self,
        model_provider: ModelProvider,
        data_provider: DataProvider,
        plan: Plan,
        channel_capacity: int = 8,
        max_retries: int = 0,
    ):
        model_provider.register_public_key(data_provider.public_key)
        self.plan = plan
        self.model_provider = model_provider
        self.data_provider = data_provider
        self._executors = build_executors(
            model_provider, data_provider, plan
        )
        self._channel_capacity = channel_capacity
        self._max_retries = max_retries

    def run_stream(self, inputs: Sequence[np.ndarray]) -> StreamStats:
        """Push all inputs through the pipeline; block until drained."""
        inputs = list(inputs)
        if not inputs:
            raise StreamError("no inputs to stream")
        num_stages = len(self._executors)
        channels = [
            Channel(self._channel_capacity) for _ in range(num_stages + 1)
        ]
        workers = [
            StageWorker(
                name=f"stage-{index}",
                executor=executor,
                inbound=channels[index],
                outbound=channels[index + 1],
                max_retries=self._max_retries,
            )
            for index, executor in enumerate(self._executors)
        ]
        for worker in workers:
            worker.start()

        stats = StreamStats()
        start_wall = time.perf_counter()
        source = channels[0]
        sink = channels[-1]

        # Admit requests; the bounded first channel applies backpressure.
        for request_id, raw in enumerate(inputs):
            tensor = self.data_provider.encrypt_input(np.asarray(raw))
            source.put(StreamItem(
                request_id=request_id,
                tensor=tensor,
                enqueue_time=time.perf_counter(),
            ))
        source.close()

        done = 0
        while done < len(inputs):
            try:
                item = sink.get(timeout=300.0)
            except ChannelClosed:
                break
            if item.result is None:
                raise StreamError(
                    f"request {item.request_id} exited without a result"
                )
            stats.results.append(RequestResult(
                request_id=item.request_id,
                prediction=int(np.asarray(item.result).argmax()),
                probabilities=np.asarray(item.result),
                latency=time.perf_counter() - item.enqueue_time,
            ))
            done += 1
        stats.wall_time = time.perf_counter() - start_wall
        for worker in workers:
            worker.join(timeout=60.0)
        stats.stage_busy_seconds = [w.busy_seconds for w in workers]
        stats.stage_items = [w.items_processed for w in workers]
        stats.stage_retries = [w.retries for w in workers]
        if done < len(inputs):
            raise StreamError(
                f"pipeline drained after {done}/{len(inputs)} requests"
            )
        return stats
