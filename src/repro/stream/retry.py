"""Retry policies and the dead-letter record for the stream runtime.

The runtime distinguishes *transient* failures (worth retrying, with
exponential backoff + jitter) from *permanent* ones (dead-letter the
request immediately).  Classification is type-based:
:class:`~repro.errors.TransientStageError` is always transient,
:class:`~repro.errors.PoisonedRequestError` and protocol violations
are always permanent, and unclassified exceptions default to transient
(the conservative choice inherited from the old bare-retry loop) unless
the policy says otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..errors import (
    PoisonedRequestError,
    ProtocolError,
    StreamError,
    TransientStageError,
)

#: Reasons recorded on a :class:`DeadLetter`.
REASON_PERMANENT = "permanent-error"
REASON_EXHAUSTED = "retries-exhausted"
REASON_DEADLINE = "deadline-exceeded"
REASON_SHUTDOWN = "shutdown-drain"


@dataclass(frozen=True)
class DeadLetter:
    """One request removed from the stream instead of killing it.

    Attributes:
        request_id: the failed request.
        stage: index of the stage where the failure surfaced
            (-1 when the request never reached a stage).
        reason: one of ``permanent-error`` / ``retries-exhausted`` /
            ``deadline-exceeded``.
        attempts: executor attempts made before giving up (0 for a
            deadline miss detected before processing).
        error: repr of the final exception, if any.
    """

    request_id: int
    stage: int
    reason: str
    attempts: int
    error: str = ""

    def describe(self) -> str:
        detail = f" ({self.error})" if self.error else ""
        return (f"request {self.request_id}: {self.reason} at stage "
                f"{self.stage} after {self.attempts} attempt(s){detail}")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter plus error classification.

    The delay before retry ``k`` (1-based) is
    ``min(max_delay, base_delay * multiplier**(k-1))`` scaled by a
    uniform jitter draw from ``[1 - jitter, 1 + jitter]``.

    Attributes:
        max_retries: retries per item after the first attempt.
        base_delay: seconds before the first retry.
        multiplier: exponential growth factor.
        max_delay: backoff ceiling in seconds.
        jitter: relative jitter width in [0, 1).
        retry_unclassified: treat exceptions that are neither
            explicitly transient nor explicitly permanent as
            transient (retryable).
        jitter_seed: when set, :meth:`backoff_delay` calls that pass
            no explicit RNG draw jitter from a policy-owned
            ``random.Random(jitter_seed)`` instead of skipping jitter
            — never from the module-global RNG — so soak runs and
            failover property tests replay their backoff schedules
            exactly.  Thread it from
            :attr:`repro.config.RuntimeConfig.seed` (the coordinator
            and the soak harness do).
    """

    max_retries: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    retry_unclassified: bool = True
    jitter_seed: int | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise StreamError("max_retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise StreamError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise StreamError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise StreamError("jitter must be in [0, 1)")

    @classmethod
    def immediate(cls, max_retries: int) -> "RetryPolicy":
        """The old bare-retry semantics: no backoff, no jitter."""
        return cls(max_retries=max_retries, base_delay=0.0,
                   jitter=0.0)

    @classmethod
    def none(cls) -> "RetryPolicy":
        return cls.immediate(0)

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying."""
        if isinstance(exc, TransientStageError):
            return True
        if isinstance(exc, (PoisonedRequestError, ProtocolError)):
            return False
        return self.retry_unclassified

    def jitter_rng(self) -> random.Random | None:
        """The policy-owned seeded jitter RNG (lazily built from
        ``jitter_seed``); None when no seed was configured.  Shared by
        every :meth:`backoff_delay` call that passes no explicit RNG,
        so a policy's implicit jitter stream is one deterministic
        sequence."""
        if self.jitter_seed is None:
            return None
        rng = getattr(self, "_jitter_rng", None)
        if rng is None:
            rng = random.Random(self.jitter_seed)
            # Frozen dataclass: the cache bypasses field immutability
            # (it is derived state, not part of the policy's value).
            object.__setattr__(self, "_jitter_rng", rng)
        return rng

    def backoff_delay(self, attempt: int,
                      rng: random.Random | None = None) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based).

        Jitter draws come from ``rng`` when given, else from the
        policy's seeded :meth:`jitter_rng`, else jitter is skipped —
        the module-global RNG is never consulted, so seeded runs
        replay exactly.
        """
        if attempt < 1:
            raise StreamError("backoff attempt is 1-based")
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            if rng is None:
                rng = self.jitter_rng()
            if rng is not None:
                delay *= rng.uniform(1 - self.jitter, 1 + self.jitter)
        return delay


@dataclass
class RetryBudgetLedger:
    """Mutable per-worker counters the retry loop reports into."""

    retries: int = 0
    backoff_events: int = 0
    backoff_seconds: float = 0.0
    dead_letters: List[DeadLetter] = field(default_factory=list)
