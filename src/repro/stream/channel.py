"""Bounded channels connecting pipeline stages.

A deque guarded by condition variables, with close semantics: a closed
channel raises :class:`ChannelClosed` on the consumer side once
drained, which is how stage workers learn the stream has ended.
Bounded capacity gives natural backpressure — a slow stage slows its
upstream instead of queueing unboundedly.

Close is a flag, not an in-band sentinel, so closing never blocks —
even when the channel is at capacity — and never consumes a capacity
slot (the historical sentinel-based implementation could stall a
worker's shutdown path on a full channel).  Closing also wakes every
blocked producer (which then sees :class:`StreamError`) and consumer
(which drains the remaining items, then sees :class:`ChannelClosed`),
so no thread is ever left parked on a dead channel.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from ..errors import StreamError


class ChannelClosed(StreamError):
    """Raised by :meth:`Channel.get` once a closed channel drains."""


class Channel:
    """A bounded, closable FIFO between two pipeline stages."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise StreamError("channel capacity must be >= 1")
        self._capacity = capacity
        self._items: deque = deque()
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Enqueue an item, blocking while the channel is full.

        Raises:
            StreamError: the channel is (or becomes, while blocked)
                closed, or the wait timed out.
        """
        with self._not_full:
            if self._closed:
                raise StreamError("cannot put into a closed channel")
            while len(self._items) >= self._capacity:
                if not self._not_full.wait(timeout=timeout):
                    raise StreamError(
                        f"channel put timed out after {timeout}s"
                    )
                if self._closed:
                    raise StreamError(
                        "cannot put into a closed channel"
                    )
            self._items.append(item)
            self._not_empty.notify()

    def put_front(self, item: Any) -> None:
        """Re-inject an item at the head, ignoring capacity.

        Used by the supervisor to return a restarted worker's
        in-flight item to its inbound channel; permitted even after
        close (the item still drains before :class:`ChannelClosed`
        surfaces) because the upstream producer finishing does not
        cancel work already admitted.
        """
        with self._not_empty:
            self._items.appendleft(item)
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue an item; raises :class:`ChannelClosed` at stream end.

        Args:
            timeout: max seconds to wait; None blocks indefinitely.

        Raises:
            ChannelClosed: the producer closed and everything is drained.
            StreamError: on timeout.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise ChannelClosed("channel closed")
                if not self._not_empty.wait(timeout=timeout):
                    raise StreamError(
                        f"channel get timed out after {timeout}s"
                    )
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Signal end-of-stream; consumers drain then see ChannelClosed.

        Never blocks, regardless of queue fullness, and wakes all
        blocked producers and consumers.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def drain(self) -> list:
        """Atomically remove and return everything still queued.

        Shutdown-path helper: lets a winding-down consumer claim all
        stranded items (to dead-letter them) without racing producers
        or other consumers.  Works on open and closed channels; wakes
        blocked producers since capacity was freed.
        """
        with self._lock:
            items = list(self._items)
            self._items.clear()
            if items:
                self._not_full.notify_all()
            return items

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def capacity(self) -> int:
        return self._capacity

    def approx_size(self) -> int:
        return len(self._items)
