"""Bounded channels connecting pipeline stages.

A thin wrapper over ``queue.Queue`` adding close semantics: a closed
channel raises :class:`ChannelClosed` on the consumer side once
drained, which is how stage workers learn the stream has ended.
Bounded capacity gives natural backpressure — a slow stage slows its
upstream instead of queueing unboundedly.
"""

from __future__ import annotations

import queue
from typing import Any

from ..errors import StreamError


class ChannelClosed(StreamError):
    """Raised by :meth:`Channel.get` once a closed channel drains."""


_CLOSE = object()


class Channel:
    """A bounded, closable FIFO between two pipeline stages."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise StreamError("channel capacity must be >= 1")
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._closed = False

    def put(self, item: Any) -> None:
        """Enqueue an item, blocking when the channel is full."""
        if self._closed:
            raise StreamError("cannot put into a closed channel")
        self._queue.put(item)

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue an item; raises :class:`ChannelClosed` at stream end.

        Args:
            timeout: max seconds to wait; None blocks indefinitely.

        Raises:
            ChannelClosed: the producer closed and everything is drained.
            StreamError: on timeout.
        """
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty as exc:
            raise StreamError(
                f"channel get timed out after {timeout}s"
            ) from exc
        if item is _CLOSE:
            # propagate the sentinel for any other consumers
            self._queue.put(_CLOSE)
            raise ChannelClosed("channel closed")
        return item

    def close(self) -> None:
        """Signal end-of-stream; consumers drain then see ChannelClosed."""
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSE)

    @property
    def closed(self) -> bool:
        return self._closed

    def approx_size(self) -> int:
        return self._queue.qsize()
