"""Stage workers: one thread per stage pulling from its input channel.

A :class:`StageWorker` loops: get item -> executor.process -> put item
downstream, until the input channel closes.  Failures are handled per
the worker's :class:`~repro.stream.retry.RetryPolicy`:

* transient errors are retried with exponential backoff + jitter;
* permanent errors (and exhausted retries, and blown deadlines) either
  **dead-letter** the request — the item is tagged with a
  :class:`~repro.stream.retry.DeadLetter` and forwarded downstream as
  a tombstone so the sink can account for it — or, for an
  unsupervised stand-alone worker, are re-raised at :meth:`join` as
  :class:`StageFailedError` (the historical fail-loud posture);
* :class:`~repro.errors.WorkerCrashError` (and any failure outside
  item processing) kills the worker thread; a supervisor may restart
  it and re-inject the in-flight item.

Workers publish a heartbeat timestamp each loop iteration so the
supervisor can observe liveness.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Optional

from ..errors import (
    DeadlineExceededError,
    StageFailedError,
    StreamError,
    WorkerCrashError,
)
from ..observability import OBS_OFF, Observability
from ..observability.tracing import NULL_SPAN
from .channel import Channel, ChannelClosed
from .retry import (
    REASON_DEADLINE,
    REASON_EXHAUSTED,
    REASON_PERMANENT,
    REASON_SHUTDOWN,
    DeadLetter,
    RetryBudgetLedger,
    RetryPolicy,
)


class StageWorker:
    """Runs one stage executor against its channels on a daemon thread.

    Args:
        name: thread / diagnostic name.
        executor: object with ``process(item)`` (and optional
            ``shutdown()``).
        inbound: channel the worker consumes.
        outbound: channel the worker produces into (None for a final
            consumer).
        max_retries: legacy knob — builds an immediate (no-backoff)
            :class:`RetryPolicy` when ``retry_policy`` is not given.
        retry_policy: full backoff/classification policy.
        deadline: per-request seconds from admission
            (``item.enqueue_time``) before the request is
            dead-lettered unprocessed.
        dead_letter: route failed requests to the dead-letter path
            (tombstone-forwarded downstream) instead of failing the
            worker.  The pipeline always enables this; stand-alone
            workers default to the historical fail-loud behaviour.
        stage_index: pipeline position recorded on dead letters.
        seed: backoff-jitter RNG seed (deterministic per worker).
        obs: observability sinks (:mod:`repro.observability`); the
            worker records a per-stage service-time histogram, a
            queue-depth gauge, retry/dead-letter counters, and one
            ``stage-N`` span per item (with ``retry`` / ``dead-letter``
            child events) into them.  Defaults to the no-op twins.
    """

    def __init__(
        self,
        name: str,
        executor,
        inbound: Channel,
        outbound: Optional[Channel],
        max_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        deadline: float | None = None,
        dead_letter: bool = False,
        stage_index: int = -1,
        seed: int = 0,
        obs: Observability | None = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds")
        self.name = name
        self.executor = executor
        self.inbound = inbound
        self.outbound = outbound
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy.immediate(max_retries))
        self.deadline = deadline
        self.dead_letter = dead_letter
        self.stage_index = stage_index
        self.items_processed = 0
        self.busy_seconds = 0.0
        self.ledger = RetryBudgetLedger()
        self.last_heartbeat = time.monotonic()
        self.inflight = None
        self.inflight_processed = False
        self.supervised = False
        self.crashed = False
        self.completed = False
        self._seed = seed
        self._rng = random.Random(seed)
        self._error: BaseException | None = None
        self._finalized = False
        self.obs = obs if obs is not None else OBS_OFF
        self._tracer = self.obs.tracer
        stage_label = str(stage_index)
        registry = self.obs.registry
        self._m_service = registry.histogram(
            "stream_stage_service_seconds", stage=stage_label
        )
        self._m_terminal = registry.histogram(
            "stream_terminal_seconds", stage=stage_label
        )
        self._m_queue = registry.gauge("stream_queue_depth",
                                       stage=stage_label)
        self._m_retries = registry.counter("stream_retries",
                                           stage=stage_label)
        # Per-worker twins of the queue gauge: remote executors report
        # which cluster member served the last item (worker_label), so
        # backlog attributes to a specific member while the unlabeled
        # aggregate above keeps feeding existing dashboards.
        self._registry = registry
        self._stage_label = stage_label
        self._worker_queues: dict[str, object] = {}
        # Thread names carry the package-wide ``repro-`` prefix so
        # leak-sentinel and soak reports attribute every thread to its
        # subsystem; ``name`` stays as given for diagnostics.
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=(name if name.startswith("repro-")
                  else f"repro-{name}"),
        )

    # -- introspection -------------------------------------------------

    @property
    def max_retries(self) -> int:
        return self.retry_policy.max_retries

    @property
    def retries(self) -> int:
        return self.ledger.retries

    @property
    def backoff_events(self) -> int:
        return self.ledger.backoff_events

    @property
    def error(self) -> BaseException | None:
        return self._error

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def heartbeat_age(self) -> float:
        return time.monotonic() - self.last_heartbeat

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def respawn(self) -> "StageWorker":
        """A fresh worker bound to the same executor and channels.

        The replacement shares this worker's ledger so retry /
        dead-letter counters accumulate across restarts.
        """
        clone = StageWorker(
            name=self.name,
            executor=self.executor,
            inbound=self.inbound,
            outbound=self.outbound,
            retry_policy=self.retry_policy,
            deadline=self.deadline,
            dead_letter=self.dead_letter,
            stage_index=self.stage_index,
            seed=self._seed + 1,
            obs=self.obs,
        )
        clone.ledger = self.ledger
        clone.supervised = self.supervised
        return clone

    # -- processing ----------------------------------------------------

    def _deadline_blown(self, item) -> bool:
        enqueue = getattr(item, "enqueue_time", None)
        return (self.deadline is not None and enqueue is not None
                and time.perf_counter() - enqueue > self.deadline)

    def _fail(self, item, reason: str, attempts: int,
              exc: BaseException | None, span=NULL_SPAN):
        """Dead-letter the item (tombstone) or re-raise fail-loud."""
        if not self.dead_letter:
            if exc is not None:
                raise exc
            raise DeadlineExceededError(
                f"request {getattr(item, 'request_id', '?')} blew its "
                f"{self.deadline}s deadline at stage {self.name}"
            )
        letter = DeadLetter(
            request_id=int(getattr(item, "request_id", -1)),
            stage=self.stage_index,
            reason=reason,
            attempts=attempts,
            error=repr(exc) if exc is not None else "",
        )
        self.ledger.dead_letters.append(letter)
        item.fault = letter
        self.obs.registry.counter(
            "stream_dead_letters", stage=str(self.stage_index),
            reason=reason,
        ).inc()
        self._tracer.event(
            "dead-letter",
            trace_id=getattr(item, "trace_id", None),
            parent_id=span.span_id,
            request_id=letter.request_id,
            stage=self.stage_index,
            reason=reason,
            attempts=attempts,
        )
        enqueue = getattr(item, "enqueue_time", None)
        if enqueue:
            self._m_terminal.observe(time.perf_counter() - enqueue)
        return item

    def _process_with_retries(self, item, span=NULL_SPAN):
        """Run the executor under the retry policy.

        Returns the processed item, or the original item tagged with a
        :class:`DeadLetter` (dead-letter mode).  Raises on crash-class
        errors and, in fail-loud mode, on any terminal failure.
        """
        if self._deadline_blown(item):
            return self._fail(item, REASON_DEADLINE, 0, None, span)
        attempt = 0
        while True:
            self.last_heartbeat = time.monotonic()
            try:
                return self.executor.process(item)
            except WorkerCrashError:
                raise  # worker-scope failure: not an item problem
            except Exception as exc:  # noqa: BLE001 - classified below
                attempt += 1
                if not self.retry_policy.is_transient(exc):
                    return self._fail(item, REASON_PERMANENT,
                                      attempt, exc, span)
                if attempt > self.retry_policy.max_retries:
                    return self._fail(item, REASON_EXHAUSTED,
                                      attempt, exc, span)
                self.ledger.retries += 1
                self._m_retries.inc()
                delay = self.retry_policy.backoff_delay(
                    attempt, self._rng
                )
                self._tracer.event(
                    "retry",
                    trace_id=getattr(item, "trace_id", None),
                    parent_id=span.span_id,
                    request_id=getattr(item, "request_id", None),
                    stage=self.stage_index,
                    attempt=attempt,
                    backoff_seconds=delay,
                    error=repr(exc),
                )
                if delay > 0:
                    self.ledger.backoff_events += 1
                    self.ledger.backoff_seconds += delay
                    time.sleep(delay)
                if self._deadline_blown(item):
                    return self._fail(item, REASON_DEADLINE,
                                      attempt, exc, span)

    def _forward(self, item) -> None:
        if self.outbound is None:
            return
        try:
            self.outbound.put(item)
        except StreamError as exc:
            # Never lose the request silently: name it in the failure.
            request_id = getattr(item, "request_id", "?")
            raise StreamError(
                f"stage {self.name} could not forward request "
                f"{request_id} downstream: {exc}"
            ) from exc

    def _run(self) -> None:
        try:
            while True:
                self.last_heartbeat = time.monotonic()
                try:
                    item = self.inbound.get()
                except ChannelClosed:
                    break
                self.inflight = item
                self.inflight_processed = False
                depth = self.inbound.approx_size()
                self._m_queue.set(depth)
                label = getattr(self.executor, "worker_label", None)
                if label is not None:
                    gauge = self._worker_queues.get(label)
                    if gauge is None:
                        gauge = self._registry.gauge(
                            "stream_queue_depth",
                            stage=self._stage_label, worker=label,
                        )
                        self._worker_queues[label] = gauge
                    gauge.set(depth)
                if getattr(item, "fault", None) is not None:
                    self.inflight_processed = True
                    self._forward(item)  # tombstone pass-through
                    self.inflight = None
                    continue
                start = time.perf_counter()
                with self._tracer.span(
                    f"stage-{self.stage_index}",
                    trace_id=getattr(item, "trace_id", None),
                    parent_id=getattr(item, "trace_parent", None),
                    request_id=getattr(item, "request_id", None),
                    stage=self.stage_index,
                ) as span:
                    item = self._process_with_retries(item, span)
                elapsed = time.perf_counter() - start
                self.busy_seconds += elapsed
                self._m_service.observe(elapsed)
                if getattr(item, "fault", None) is None:
                    self.items_processed += 1
                    # A set result marks the request's terminal stage
                    # (the final executor produced the probabilities).
                    if getattr(item, "result", None) is not None:
                        enqueue = getattr(item, "enqueue_time", None)
                        if enqueue:
                            self._m_terminal.observe(
                                time.perf_counter() - enqueue
                            )
                self.inflight = item
                self.inflight_processed = True
                self._forward(item)
                self.inflight = None
        except BaseException as exc:  # noqa: BLE001 - reported at join
            self._error = exc
            self.crashed = True
            if not self.supervised:
                # Nobody will restart us: release downstream consumers.
                self.finalize()
            return
        self.completed = True
        self.finalize()

    def finalize(self) -> None:
        """Close the outbound channel and shut the executor down.

        Idempotent; called on normal completion, on unsupervised
        crash, and by the supervisor when it gives a stage up.

        In dead-letter mode, items still stranded in the inbound
        channel are tombstoned (:data:`REASON_SHUTDOWN`) and forwarded
        before the outbound closes — a peer disconnect or fatal
        shutdown mid-stream thus drains to dead letters the sink can
        account for, instead of hanging the drain loop on requests
        nobody will ever deliver."""
        if self._finalized:
            return
        self._finalized = True
        if self.dead_letter:
            self._drain_to_dead_letters()
        if self.outbound is not None:
            self.outbound.close()
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def _drain_to_dead_letters(self) -> None:
        for item in self.inbound.drain():
            if getattr(item, "fault", None) is None:
                letter = DeadLetter(
                    request_id=int(getattr(item, "request_id", -1)),
                    stage=self.stage_index,
                    reason=REASON_SHUTDOWN,
                    attempts=0,
                    error="stage shut down with the item still queued",
                )
                self.ledger.dead_letters.append(letter)
                item.fault = letter
                self.obs.registry.counter(
                    "stream_dead_letters", stage=str(self.stage_index),
                    reason=REASON_SHUTDOWN,
                ).inc()
            if self.outbound is not None:
                # put_front: never blocks and works after close, so the
                # tombstone still reaches the sink if it is listening.
                self.outbound.put_front(item)

    def join(self, timeout: float | None = None) -> None:
        """Wait for the worker; re-raise any captured stage failure."""
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise StageFailedError(f"stage {self.name} did not finish")
        if self._error is not None:
            raise StageFailedError(
                f"stage {self.name} failed: {self._error!r}"
            ) from self._error

    def join_quietly(self, timeout: float | None = None) -> bool:
        """Join without raising; True when the thread has exited."""
        self._thread.join(timeout)
        return not self._thread.is_alive()
