"""Stage workers: one thread per stage pulling from its input channel.

A :class:`StageWorker` loops: get item -> executor.process -> put item
downstream, until the input channel closes.  Failures are captured and
re-raised at join time as :class:`StageFailedError` so a crashing stage
takes the pipeline down loudly instead of hanging it.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..errors import StageFailedError
from .channel import Channel, ChannelClosed


class StageWorker:
    """Runs one stage executor against its channels on a daemon thread.

    A transient executor failure is retried up to ``max_retries`` times
    per item (the stream-processing fault-tolerance posture of
    AF-Stream, which the paper builds on); a persistent failure takes
    the pipeline down loudly at :meth:`join`.
    """

    def __init__(
        self,
        name: str,
        executor,
        inbound: Channel,
        outbound: Optional[Channel],
        max_retries: int = 0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.name = name
        self.executor = executor
        self.inbound = inbound
        self.outbound = outbound
        self.max_retries = max_retries
        self.items_processed = 0
        self.retries = 0
        self.busy_seconds = 0.0
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _process_with_retries(self, item):
        attempt = 0
        while True:
            try:
                return self.executor.process(item)
            except Exception:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self.retries += 1

    def _run(self) -> None:
        try:
            while True:
                try:
                    item = self.inbound.get()
                except ChannelClosed:
                    break
                start = time.perf_counter()
                item = self._process_with_retries(item)
                self.busy_seconds += time.perf_counter() - start
                self.items_processed += 1
                if self.outbound is not None:
                    self.outbound.put(item)
        except BaseException as exc:  # noqa: BLE001 - reported at join
            self._error = exc
        finally:
            if self.outbound is not None:
                self.outbound.close()
            shutdown = getattr(self.executor, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def join(self, timeout: float | None = None) -> None:
        """Wait for the worker; re-raise any captured stage failure."""
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise StageFailedError(f"stage {self.name} did not finish")
        if self._error is not None:
            raise StageFailedError(
                f"stage {self.name} failed: {self._error!r}"
            ) from self._error
