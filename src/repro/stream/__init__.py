"""Distributed stream-processing runtime (the AF-Stream stand-in).

A real, threaded pipeline: each merged primitive layer becomes a stage
with its own worker thread and intra-stage thread pool (the plan's y_i
threads), connected by bounded channels.  Inference requests flow
through the stages concurrently, so multiple requests are in flight at
once — the paper's "treating inference data as real-time data streams".

Within a stage, tensor partitioning splits each request into per-thread
tasks (rows of the stage's affine map, or element ranges for
non-linear stages).  Note: CPython's GIL serializes pure-Python
big-integer work, so intra-stage threading here demonstrates
correctness and pipelining rather than linear CPU scaling; the
multi-server scaling experiments run on the calibrated simulator
(DESIGN.md, substitution 1).
"""

from .channel import Channel, ChannelClosed
from .executors import (
    LinearStageExecutor,
    NonLinearStageExecutor,
    build_executors,
)
from .faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from .pipeline import Pipeline, RequestResult, StreamStats
from .retry import DeadLetter, RetryPolicy
from .supervisor import Supervisor
from .worker import StageWorker

__all__ = [
    "Channel",
    "ChannelClosed",
    "DeadLetter",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "LinearStageExecutor",
    "NonLinearStageExecutor",
    "build_executors",
    "Pipeline",
    "RequestResult",
    "RetryPolicy",
    "StreamStats",
    "StageWorker",
    "Supervisor",
]
