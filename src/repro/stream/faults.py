"""Deterministic fault injection for the stream runtime.

A :class:`FaultPlan` scripts failures against (stage, request) pairs so
robustness is testable and reproducible: transient executor failures
(succeed after ``count`` retries), permanent per-request poisons, slow
stages, channel stalls, and worker crashes.  A :class:`FaultInjector`
wraps a real stage executor and consults the plan before delegating.

The same plan drives the discrete-event simulator
(:mod:`repro.simulate`), so simulated and threaded runs agree on
failure semantics: a transient fault costs extra service time plus
backoff, a permanent fault dead-letters exactly its request.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Tuple

from ..errors import (
    PoisonedRequestError,
    StreamError,
    TransientStageError,
    WorkerCrashError,
)


class FaultKind(str, Enum):
    """What a scripted fault does when its (stage, request) hits."""

    #: Raise :class:`TransientStageError` for the first ``count``
    #: attempts, then succeed — exercises retry + backoff.
    TRANSIENT = "transient"
    #: Raise :class:`PoisonedRequestError` on every attempt — the
    #: request must be dead-lettered, never retried to success.
    PERMANENT = "permanent"
    #: Sleep ``delay`` seconds before processing — a slow stage.
    SLOW = "slow"
    #: Sleep ``delay`` seconds after processing, delaying the hand-off
    #: to the outbound channel — a channel stall.
    STALL = "stall"
    #: Raise :class:`WorkerCrashError` for the first ``count``
    #: attempts — kills the worker thread; only a supervisor restart
    #: (which re-injects the in-flight item) recovers.
    CRASH = "crash"


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    Attributes:
        kind: what happens (see :class:`FaultKind`).
        stage: pipeline stage index the fault is bound to.
        request_id: request the fault targets.
        count: how many attempts fail (transient / crash kinds).
        delay: sleep seconds (slow / stall kinds).
    """

    kind: FaultKind
    stage: int
    request_id: int
    count: int = 1
    delay: float = 0.0

    def __post_init__(self):
        if self.stage < 0:
            raise StreamError("fault stage must be >= 0")
        if self.request_id < 0:
            raise StreamError("fault request_id must be >= 0")
        if self.count < 1:
            raise StreamError("fault count must be >= 1")
        if self.delay < 0:
            raise StreamError("fault delay must be non-negative")


class FaultPlan:
    """An immutable script of faults, addressable by (stage, request).

    Build one directly from :class:`FaultSpec` instances, parse the
    compact CLI syntax with :meth:`parse`, or draw a seeded random
    transient-only plan with :meth:`random_transient`.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._by_site: Dict[Tuple[int, int], List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(
                (spec.stage, spec.request_id), []
            ).append(spec)

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def lookup(self, stage: int, request_id: int) -> List[FaultSpec]:
        return self._by_site.get((stage, request_id), [])

    def stage_has_faults(self, stage: int) -> bool:
        return any(spec.stage == stage for spec in self.specs)

    def only_transient(self) -> bool:
        """True when every fault is recoverable without a dead letter
        (transient retries, slow stages, stalls, supervised crashes)."""
        return all(spec.kind is not FaultKind.PERMANENT
                   for spec in self.specs)

    def describe(self) -> str:
        if not self.specs:
            return "no faults"
        return "; ".join(
            f"{s.kind.value} stage={s.stage} request={s.request_id}"
            + (f" count={s.count}"
               if s.kind in (FaultKind.TRANSIENT, FaultKind.CRASH)
               else "")
            + (f" delay={s.delay}"
               if s.kind in (FaultKind.SLOW, FaultKind.STALL) else "")
            for s in self.specs
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact CLI syntax.

        ``kind:stage=S:request=R[:count=N][:delay=D]`` with multiple
        faults separated by ``;``, e.g.::

            transient:stage=0:request=1:count=2;permanent:stage=2:request=3
        """
        specs: List[FaultSpec] = []
        for clause in filter(None,
                             (c.strip() for c in text.split(";"))):
            fields = clause.split(":")
            try:
                kind = FaultKind(fields[0].strip().lower())
            except ValueError as exc:
                raise StreamError(
                    f"unknown fault kind {fields[0]!r}; expected one "
                    f"of {[k.value for k in FaultKind]}"
                ) from exc
            kwargs: Dict[str, float] = {}
            for assignment in fields[1:]:
                key, _, value = assignment.partition("=")
                key = key.strip()
                if key not in ("stage", "request", "count", "delay"):
                    raise StreamError(
                        f"unknown fault field {key!r} in {clause!r}"
                    )
                try:
                    kwargs[key] = (float(value) if key == "delay"
                                   else int(value))
                except ValueError as exc:
                    raise StreamError(
                        f"bad value for {key!r} in {clause!r}"
                    ) from exc
            if "stage" not in kwargs or "request" not in kwargs:
                raise StreamError(
                    f"fault {clause!r} needs stage= and request="
                )
            specs.append(FaultSpec(
                kind=kind,
                stage=int(kwargs["stage"]),
                request_id=int(kwargs["request"]),
                count=int(kwargs.get("count", 1)),
                delay=float(kwargs.get("delay", 0.0)),
            ))
        return cls(specs)

    @classmethod
    def random_transient(
        cls,
        seed: int,
        num_requests: int,
        num_stages: int,
        rate: float = 0.1,
        max_count: int = 2,
    ) -> "FaultPlan":
        """A seeded transient-only plan: each (stage, request) site
        independently faults with probability ``rate``, failing a
        uniform 1..``max_count`` attempts before succeeding.  The same
        seed always yields the same plan."""
        if not 0.0 <= rate <= 1.0:
            raise StreamError("fault rate must be in [0, 1]")
        rng = random.Random(seed)
        specs = [
            FaultSpec(
                kind=FaultKind.TRANSIENT,
                stage=stage,
                request_id=request_id,
                count=rng.randint(1, max_count),
            )
            for request_id in range(num_requests)
            for stage in range(num_stages)
            if rng.random() < rate
        ]
        return cls(specs)


class FaultInjected(TransientStageError):
    """A scripted transient fault (distinguishable from real ones)."""


class PermanentFaultInjected(PoisonedRequestError):
    """A scripted permanent fault."""


class CrashInjected(WorkerCrashError):
    """A scripted worker crash."""


class FaultInjector:
    """Wraps a stage executor, applying the plan's scripted faults.

    Attempt counters live on the injector, which the supervisor
    re-binds unchanged into a restarted worker — so a ``count=2``
    crash fault survives one restart and fires again, and a transient
    fault's remaining failures are honoured across retries.
    """

    def __init__(self, executor, stage_index: int, plan: FaultPlan):
        self.executor = executor
        self.stage_index = stage_index
        self.plan = plan
        self.injected_faults = 0
        self._attempts: Dict[Tuple[int, int], int] = {}

    def process(self, item):
        for spec_index, spec in enumerate(
            self.plan.lookup(self.stage_index, item.request_id)
        ):
            site = (item.request_id, spec_index)
            if spec.kind is FaultKind.SLOW:
                time.sleep(spec.delay)
            elif spec.kind is FaultKind.TRANSIENT:
                fired = self._attempts.get(site, 0)
                if fired < spec.count:
                    self._attempts[site] = fired + 1
                    self.injected_faults += 1
                    raise FaultInjected(
                        f"injected transient fault #{fired + 1}/"
                        f"{spec.count} at stage {self.stage_index} "
                        f"for request {item.request_id}"
                    )
            elif spec.kind is FaultKind.PERMANENT:
                self.injected_faults += 1
                raise PermanentFaultInjected(
                    f"injected permanent fault at stage "
                    f"{self.stage_index} for request {item.request_id}"
                )
            elif spec.kind is FaultKind.CRASH:
                fired = self._attempts.get(site, 0)
                if fired < spec.count:
                    self._attempts[site] = fired + 1
                    self.injected_faults += 1
                    raise CrashInjected(
                        f"injected worker crash #{fired + 1}/"
                        f"{spec.count} at stage {self.stage_index} "
                        f"(request {item.request_id} in flight)"
                    )
        result = self.executor.process(item)
        for spec in self.plan.lookup(self.stage_index,
                                     item.request_id):
            if spec.kind is FaultKind.STALL:
                time.sleep(spec.delay)
        return result

    def shutdown(self) -> None:
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()


def wrap_executors(executors, plan: FaultPlan | None):
    """Wrap each executor whose stage the plan targets."""
    if not plan:
        return list(executors)
    return [
        FaultInjector(executor, index, plan)
        if plan.stage_has_faults(index) else executor
        for index, executor in enumerate(executors)
    ]
