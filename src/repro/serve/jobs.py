"""Job lifecycle for the serving gateway: FSM, tracker, worker fleet.

Every request admitted through the gateway becomes a :class:`Job`
stepping through a small state machine::

    QUEUED ──> RUNNING ──> DONE
       │          ├──────> FAILED
       │          └──────> DEADLINE
       ├──> SHED                (admission control refused it)
       ├──> DEADLINE            (expired while still queued)
       └──> FAILED              (gateway shutdown drained the queue)

Terminal states (``DONE`` / ``FAILED`` / ``SHED`` / ``DEADLINE``)
absorb: any further transition raises
:class:`~repro.errors.JobStateError`, so a job can never be
double-terminal and the accounting identity *accepted + shed ==
submitted* holds exactly under any interleaving (the concurrency test
battery hammers this).

The :class:`JobManager` owns a bounded queue plus a fixed fleet of
worker threads (``repro-serve-worker-<i>``).  Admission control sheds
instead of queueing when the queue is at
:attr:`~repro.config.RuntimeConfig.serve_queue_capacity` or the
tenant is at :attr:`~repro.config.RuntimeConfig.serve_tenant_quota`
in-flight jobs — the gateway maps a shed job to HTTP 503 +
``Retry-After``.  Queue pops skip tenants that already have a job
running, so one chatty tenant cannot head-of-line-block the fleet
(per-tenant runs are serialized anyway: a tenant's pipeline state is
single-job).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..errors import DeadlineExceededError, JobStateError, ServeError
from ..observability import OBS_OFF, Observability

#: Job states (values are the wire/JSON form).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
SHED = "shed"
DEADLINE = "deadline"

#: The only legal edges of the job state machine.
LEGAL_TRANSITIONS: Dict[str, frozenset] = {
    QUEUED: frozenset({RUNNING, SHED, DEADLINE, FAILED}),
    RUNNING: frozenset({DONE, FAILED, DEADLINE}),
    DONE: frozenset(),
    FAILED: frozenset(),
    SHED: frozenset(),
    DEADLINE: frozenset(),
}

#: States with no outgoing edges.
TERMINAL_STATES = frozenset({DONE, FAILED, SHED, DEADLINE})


class Job:
    """One inference request moving through the gateway.

    Attributes:
        job_id: opaque unique id handed back to the client.
        tenant: owning tenant name; status reads from any other
            tenant are refused by the gateway.
        payload: the raw input tensor (opaque to this module).
        deadline: absolute monotonic time after which the job is
            dead (None = no deadline).
        state: current FSM state; mutate only via :meth:`transition`.
        result: the runner's result payload, set before ``DONE``.
        error: repr of the failure, set before ``FAILED`` /
            ``DEADLINE``.
    """

    __slots__ = (
        "job_id", "tenant", "payload", "deadline", "state", "result",
        "error", "submitted_unix", "submitted_monotonic",
        "started_monotonic", "finished_monotonic", "queue_seconds",
        "service_seconds", "_lock",
    )

    def __init__(self, tenant: str, payload,
                 deadline: float | None = None,
                 job_id: str | None = None):
        self.job_id = job_id if job_id is not None else uuid.uuid4().hex
        self.tenant = tenant
        self.payload = payload
        self.deadline = deadline
        self.state = QUEUED
        self.result = None
        self.error: str | None = None
        self.submitted_unix = time.time()
        self.submitted_monotonic = time.monotonic()
        self.started_monotonic: float | None = None
        self.finished_monotonic: float | None = None
        self.queue_seconds: float | None = None
        self.service_seconds: float | None = None
        self._lock = threading.Lock()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, new_state: str) -> None:
        """Step the FSM; raises :class:`JobStateError` on any edge
        not in :data:`LEGAL_TRANSITIONS` (including *any* transition
        out of a terminal state)."""
        if new_state not in LEGAL_TRANSITIONS:
            raise JobStateError(
                f"job {self.job_id}: unknown state {new_state!r}"
            )
        with self._lock:
            if new_state not in LEGAL_TRANSITIONS[self.state]:
                raise JobStateError(
                    f"job {self.job_id}: illegal transition "
                    f"{self.state} -> {new_state}"
                )
            now = time.monotonic()
            if new_state == RUNNING:
                self.started_monotonic = now
                self.queue_seconds = now - self.submitted_monotonic
            elif new_state in TERMINAL_STATES:
                self.finished_monotonic = now
                if self.state == RUNNING:
                    self.service_seconds = now - self.started_monotonic
                elif self.queue_seconds is None:
                    self.queue_seconds = now - self.submitted_monotonic
            self.state = new_state

    def to_dict(self) -> dict:
        """JSON-safe status document (the ``GET /v1/jobs/<id>`` body).
        The result payload is only present once the job is ``DONE``."""
        doc = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "terminal": self.terminal,
            "submitted_unix": self.submitted_unix,
            "queue_seconds": self.queue_seconds,
            "service_seconds": self.service_seconds,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.state == DONE and self.result is not None:
            doc["result"] = self.result
        return doc


class JobTracker:
    """Thread-safe registry of every job ever submitted, with a
    bounded terminal-job history.

    A serving gateway runs indefinitely, so the tracker cannot retain
    every job forever: with ``max_terminal`` set (the JobManager
    passes ``config.serve_job_history``), the oldest *terminal* jobs
    beyond the cap are evicted — their state is folded into monotonic
    eviction counters first, so :meth:`counts` and :func:`len` keep
    the *accepted + shed == submitted* identity exact for the
    gateway's whole lifetime while memory stays bounded by the cap.
    Non-terminal jobs are never evicted.  A status poll for an
    evicted job id returns None (the gateway answers 404).
    """

    def __init__(self, max_terminal: int | None = None) -> None:
        self._jobs: Dict[str, Job] = {}
        self._terminal_order: Deque[str] = deque()
        self._evicted_counts: Dict[str, int] = {}
        self._evicted = 0
        self._max_terminal = max_terminal
        self._lock = threading.Lock()

    def add(self, job: Job) -> None:
        with self._lock:
            if job.job_id in self._jobs:
                raise ServeError(f"duplicate job id {job.job_id}")
            self._jobs[job.job_id] = job

    def note_terminal(self, job: Job) -> None:
        """Record that a tracked job reached a terminal state.

        Releases the job's request payload (it can never run again)
        and, when a history cap is set, evicts the oldest terminal
        jobs beyond it into the monotonic eviction counters.
        """
        job.payload = None
        if self._max_terminal is None:
            return
        with self._lock:
            if job.job_id not in self._jobs:
                return
            self._terminal_order.append(job.job_id)
            while len(self._terminal_order) > self._max_terminal:
                old_id = self._terminal_order.popleft()
                old = self._jobs.pop(old_id, None)
                if old is not None:
                    self._evicted_counts[old.state] = \
                        self._evicted_counts.get(old.state, 0) + 1
                    self._evicted += 1

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """The *retained* jobs (evicted ones live on only in
        :meth:`counts`)."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Job count per state — retained jobs by their current state
        plus every evicted job by its terminal state, so totals cover
        the gateway's whole lifetime."""
        with self._lock:
            counts = dict(self._evicted_counts)
            jobs = list(self._jobs.values())
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def all_terminal(self) -> bool:
        return all(job.terminal for job in self.jobs())

    def __len__(self) -> int:
        """Every job ever tracked (retained + evicted) — the
        denominator of the accounting identity."""
        with self._lock:
            return len(self._jobs) + self._evicted


class JobManager:
    """Bounded admission queue + fixed worker fleet over a runner.

    Args:
        runner: ``runner(job) -> result-dict``; raise
            :class:`~repro.errors.DeadlineExceededError` for a blown
            deadline (-> ``DEADLINE``), anything else fails the job
            (-> ``FAILED``).  Called on fleet threads, one job per
            tenant at a time.
        config: supplies the ``serve_*`` knobs (queue capacity, fleet
            size, per-tenant quota, default deadline).
        obs: observability sinks; per-tenant counters
            (``serve_jobs_submitted`` / ``serve_jobs_shed`` /
            ``serve_jobs_terminal``), queue/service histograms, and
            the queue-depth gauge land in its registry.
        tracker: inject a shared tracker (defaults to a fresh one
            whose terminal-job history is bounded by
            ``config.serve_job_history``).
    """

    def __init__(self, runner: Callable[[Job], Optional[dict]],
                 config, obs: Observability | None = None,
                 tracker: JobTracker | None = None):
        self._runner = runner
        self.config = config
        self.obs = obs if obs is not None else OBS_OFF
        self.tracker = (tracker if tracker is not None
                        else JobTracker(
                            max_terminal=config.serve_job_history))
        self._queue: List[Job] = []
        self._cond = threading.Condition()
        self._inflight: Dict[str, int] = {}
        self._running_tenants: set = set()
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self._m_depth = self.obs.registry.gauge("serve_queue_depth")

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn the worker fleet (``serve_workers`` threads)."""
        if self._threads:
            return
        for index in range(self.config.serve_workers):
            thread = threading.Thread(
                target=self._work, daemon=True,
                name=f"repro-serve-worker-{index}",
            )
            self._threads.append(thread)
            thread.start()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop admission, fail every still-queued job
        (``error="gateway shutdown"``), and join the fleet.  Jobs
        already running finish normally."""
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            drained = list(self._queue)
            self._queue.clear()
            self._m_depth.set(0)
            for job in drained:
                job.error = "gateway shutdown"
                job.transition(FAILED)
                self._finish_locked(job)
            self._cond.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
        self._threads = []

    # -- admission -----------------------------------------------------

    def submit(self, tenant: str, payload,
               deadline_seconds: float | None = None) -> Job:
        """Admit (or shed) one request; always returns a tracked job.

        The returned job is ``QUEUED`` when admitted and ``SHED``
        when the queue is full, the tenant is at its quota, or the
        manager is shutting down — the caller inspects ``job.state``
        (the gateway turns ``SHED`` into 503 + ``Retry-After``).

        Args:
            deadline_seconds: end-to-end budget from now; defaults to
                ``config.serve_default_deadline`` (0 disables).
        """
        if deadline_seconds is None:
            deadline_seconds = self.config.serve_default_deadline
        absolute = (time.monotonic() + deadline_seconds
                    if deadline_seconds and deadline_seconds > 0
                    else None)
        job = Job(tenant, payload, deadline=absolute)
        self.tracker.add(job)
        self.obs.registry.counter(
            "serve_jobs_submitted", tenant=tenant
        ).inc()
        with self._cond:
            quota = self._inflight.get(tenant, 0)
            if (self._stopping
                    or len(self._queue) >= self.config.serve_queue_capacity
                    or quota >= self.config.serve_tenant_quota):
                job.error = ("gateway shutting down" if self._stopping
                             else "admission control: over capacity")
                job.transition(SHED)
                self.obs.registry.counter(
                    "serve_jobs_shed", tenant=tenant
                ).inc()
                self._record_terminal(job)
                return job
            self._inflight[tenant] = quota + 1
            self._queue.append(job)
            self._m_depth.set(len(self._queue))
            self._cond.notify()
        return job

    def inflight(self, tenant: str) -> int:
        """Queued + running jobs for one tenant (quota accounting)."""
        with self._cond:
            return self._inflight.get(tenant, 0)

    # -- fleet ---------------------------------------------------------

    def _next_job(self) -> Job | None:
        """Pop the next runnable job, expiring stale ones on the way.

        Skips jobs whose tenant already has one running (per-tenant
        serialization without head-of-line blocking); returns None
        only when the manager is stopping and the queue is drained.
        """
        with self._cond:
            while True:
                if self._stopping and not self._queue:
                    return None
                now = time.monotonic()
                picked = None
                for index, job in enumerate(self._queue):
                    if job.tenant in self._running_tenants:
                        continue
                    picked = index
                    break
                if picked is None:
                    self._cond.wait(0.05)
                    continue
                job = self._queue.pop(picked)
                self._m_depth.set(len(self._queue))
                if job.deadline is not None and now >= job.deadline:
                    job.error = "deadline expired in queue"
                    job.transition(DEADLINE)
                    self._finish_locked(job)
                    continue
                self._running_tenants.add(job.tenant)
                job.transition(RUNNING)
                return job

    def _work(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            outcome, result, error = DONE, None, None
            try:
                result = self._runner(job)
            except DeadlineExceededError as exc:
                outcome, error = DEADLINE, repr(exc)
            except Exception as exc:  # noqa: BLE001 - fleet must survive
                outcome, error = FAILED, repr(exc)
            with self._cond:
                self._running_tenants.discard(job.tenant)
                job.result = result
                if error is not None:
                    job.error = error
                job.transition(outcome)
                self._finish_locked(job)

    def _finish_locked(self, job: Job) -> None:
        """Quota release + terminal metrics; caller holds the cond."""
        remaining = self._inflight.get(job.tenant, 0) - 1
        if remaining > 0:
            self._inflight[job.tenant] = remaining
        else:
            self._inflight.pop(job.tenant, None)
        self._record_terminal(job)
        self._cond.notify_all()

    def _record_terminal(self, job: Job) -> None:
        self.tracker.note_terminal(job)
        registry = self.obs.registry
        registry.counter("serve_jobs_terminal", tenant=job.tenant,
                         state=job.state).inc()
        if job.queue_seconds is not None:
            registry.histogram("serve_queue_seconds",
                               tenant=job.tenant
                               ).observe(job.queue_seconds)
        if job.service_seconds is not None:
            registry.histogram("serve_service_seconds",
                               tenant=job.tenant
                               ).observe(job.service_seconds)
