"""Concurrency load generator for the serving gateway.

``python -m repro loadgen`` drives N concurrent tenants against a
gateway — self-hosted in-process by default (local stages or a
shared in-thread TCP worker fleet), or an external one via
``--url`` — submitting a burst per tenant over HTTP, polling every
job to a terminal state, and writing ``BENCH_serve.json``
(schema ``serve/1``):

* throughput (completed req/s) and client-observed latency
  percentiles;
* exact admission accounting: ``accepted + shed + rate_limited ==
  submitted`` with every accepted job terminal;
* honest backpressure handling: 429/503 replies that carry a
  ``Retry-After`` header are retried after the advertised delay
  (bounded by ``submit_retries`` attempts and ``retry_after_cap``
  seconds per sleep), and every retry is counted in the report;
* cross-tenant isolation probes (self-hosted only): for each
  adjacent tenant pair, a ciphertext encrypted under tenant A's
  public key is attacked with tenant B's private key — any
  successful recovery is reported (and is always zero).

The default knobs oversubscribe on purpose (per-tenant bursts beyond
the tenant quota), so shedding and its accounting are exercised on
every run, not just under pathological load.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import ServeError
from .jobs import TERMINAL_STATES

#: BENCH_serve.json schema tag.
SCHEMA = "serve/1"


@dataclass
class LoadgenOptions:
    """Knobs for one loadgen run (CLI flags map 1:1)."""

    tenants: int = 4
    requests: int = 6           # per tenant, submitted as a burst
    mode: str = "fleet"         # local | fleet (self-hosted modes)
    fleet_workers: int = 2
    key_size: int = 128
    seed: int = 11
    deadline: float | None = None
    queue_capacity: int = 8
    serve_workers: int = 2
    tenant_quota: int = 4
    url: str | None = None      # drive an external gateway instead
    out: str | None = "BENCH_serve.json"
    model: str = "tiny"
    poll_interval: float = 0.05
    poll_timeout: float = 120.0
    submit_retries: int = 2     # extra attempts after a 429/503
    retry_after_cap: float = 2.0  # per-sleep bound on Retry-After

    def __post_init__(self):
        if self.tenants < 1 or self.requests < 1:
            raise ServeError(
                "loadgen needs at least one tenant and one request"
            )
        if self.mode not in ("local", "fleet"):
            raise ServeError(f"unknown loadgen mode {self.mode!r}")
        if self.submit_retries < 0 or self.retry_after_cap < 0:
            raise ServeError(
                "submit_retries and retry_after_cap must be >= 0"
            )


class _Client:
    """Minimal urllib JSON client for one gateway base URL."""

    def __init__(self, base: str):
        self.base = base.rstrip("/")

    def post(self, path: str, doc: dict) -> tuple[int, dict, dict]:
        data = json.dumps(doc).encode("utf-8")
        request = urllib.request.Request(
            self.base + path, data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._send(request)

    def get(self, path: str) -> tuple[int, dict, dict]:
        return self._send(urllib.request.Request(self.base + path))

    def _send(self, request) -> tuple[int, dict, dict]:
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                body = reply.read()
                return (reply.status, json.loads(body or b"{}"),
                        dict(reply.headers))
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                doc = json.loads(body or b"{}")
            except ValueError:
                doc = {"error": body.decode("utf-8", "replace")}
            return exc.code, doc, dict(exc.headers or {})
        except (urllib.error.URLError, OSError) as exc:
            # Transport-level failure (e.g. the server thread died):
            # surface it as a synthetic status so the accounting
            # marks the run broken instead of crashing the driver.
            return 599, {"error": repr(exc)}, {}


@dataclass
class _TenantOutcome:
    submitted: int = 0
    accepted: int = 0
    shed: int = 0
    rate_limited: int = 0     # requests whose final reply was a 429
    retries: int = 0          # extra POSTs driven by Retry-After
    shed_posts: int = 0       # every 503 seen, including retried ones
    states: Dict[str, int] = None
    latencies: List[float] = None
    errors: List[str] = None

    def __post_init__(self):
        self.states = {}
        self.latencies = []
        self.errors = []


def _retry_after_seconds(headers: dict) -> float | None:
    """The ``Retry-After`` delay, or ``None`` when absent/garbage."""
    for name, value in headers.items():
        if str(name).lower() == "retry-after":
            try:
                return max(0.0, float(value))
            except (TypeError, ValueError):
                return None
    return None


def _submit(client: _Client, doc: dict, options: LoadgenOptions,
            outcome: _TenantOutcome) -> tuple[int, dict]:
    """POST one request, honoring ``Retry-After`` on 429/503.

    The gateway's contract is that those two statuses are *transient*
    (shed queue slot, closed rate window) and always carry a
    ``Retry-After`` header; anything without the header is final.
    Retries are bounded (``submit_retries`` attempts, each sleep
    capped at ``retry_after_cap`` seconds) so an overloaded server
    cannot stall the generator, and counted in the outcome.
    """
    attempts = 0
    while True:
        status, body, headers = client.post("/v1/infer", doc)
        if status == 503:
            outcome.shed_posts += 1
        if status not in (429, 503):
            return status, body
        if attempts >= options.submit_retries:
            return status, body
        delay = _retry_after_seconds(headers)
        if delay is None:
            return status, body
        attempts += 1
        outcome.retries += 1
        time.sleep(min(delay, options.retry_after_cap))


def _drive_tenant(client: _Client, tenant: str, inputs,
                  options: LoadgenOptions,
                  outcome: _TenantOutcome) -> None:
    pending: List[tuple[str, float]] = []
    for sample in inputs:
        doc = {"tenant": tenant, "input": sample}
        if options.deadline is not None:
            doc["deadline"] = options.deadline
        started = time.monotonic()
        status, body = _submit(client, doc, options, outcome)
        outcome.submitted += 1
        if status == 202:
            outcome.accepted += 1
            pending.append((body["job_id"], started))
        elif status == 503:
            outcome.shed += 1
        elif status == 429:
            outcome.rate_limited += 1
        else:
            outcome.errors.append(
                f"submit -> HTTP {status}: {body.get('error')}"
            )
    poll_deadline = time.monotonic() + options.poll_timeout
    for job_id, started in pending:
        state = None
        while time.monotonic() < poll_deadline:
            status, body, _headers = client.get(
                f"/v1/jobs/{job_id}?tenant={tenant}"
            )
            if status != 200:
                outcome.errors.append(
                    f"poll {job_id} -> HTTP {status}"
                )
                break
            state = body["state"]
            if state in TERMINAL_STATES:
                outcome.latencies.append(
                    time.monotonic() - started
                )
                break
            time.sleep(options.poll_interval)
        outcome.states[state] = outcome.states.get(state, 0) + 1


def _cross_tenant_probes(gateway) -> dict:
    """Attack each adjacent tenant pair's ciphertexts with the other
    tenant's private key; count recoveries (must be zero)."""
    names = gateway.registry.names()
    probe_values = np.array([1.25, -2.5, 7.0])
    attempts = 0
    recoveries = 0
    self_ok = True
    for index, name in enumerate(names):
        owner = gateway.registry.get(name)
        ciphertext = owner.data_provider.encrypt_input(probe_values)
        recovered = ciphertext.decrypt_float(owner.private_key)
        if not np.allclose(recovered.reshape(-1), probe_values,
                           atol=1e-6):
            self_ok = False
        attacker = gateway.registry.get(
            names[(index + 1) % len(names)]
        )
        if attacker is owner:
            continue
        attempts += 1
        try:
            stolen = ciphertext.decrypt_float(attacker.private_key)
            if np.allclose(stolen.reshape(-1), probe_values,
                           atol=1e-3):
                recoveries += 1
        except Exception:  # noqa: BLE001 - failure IS isolation
            pass
    return {
        "attempts": attempts,
        "recoveries": recoveries,
        "self_decrypt_ok": self_ok,
    }


def _percentile_ms(latencies: List[float], q: float) -> float | None:
    if not latencies:
        return None
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def run_loadgen(options: LoadgenOptions,
                progress=lambda text: None) -> dict:
    """Run one loadgen campaign; returns (and optionally writes) the
    ``serve/1`` report."""
    gateway = None
    fleet = []
    rng = np.random.default_rng(options.seed)
    try:
        if options.url is not None:
            base = options.url
            input_shape = (1, 8, 8)
            mode = "remote"
        else:
            from ..config import RuntimeConfig
            from .gateway import ServeGateway, build_serve_model

            model, decimals, input_shape = build_serve_model(
                options.model
            )
            config = RuntimeConfig(
                key_size=options.key_size, seed=options.seed,
            ).with_serve(
                queue_capacity=options.queue_capacity,
                workers=options.serve_workers,
                tenant_quota=options.tenant_quota,
            )
            addresses = None
            if options.mode == "fleet":
                from ..net import WorkerServer

                for _ in range(options.fleet_workers):
                    server = WorkerServer()
                    fleet.append(server)
                addresses = [server.start() for server in fleet]
                progress(
                    f"fleet: {len(fleet)} shared TCP workers on "
                    + ", ".join(f"{h}:{p}" for h, p in addresses)
                )
            gateway = ServeGateway(
                model, decimals, config, mode=options.mode,
                worker_addresses=addresses,
            )
            host, port = gateway.start()
            base = f"http://{host}:{port}"
            mode = options.mode
            progress(f"gateway: {base} ({mode} stages, "
                     f"{options.serve_workers} job workers)")

        client = _Client(base)
        tenants = [f"tenant-{i}" for i in range(options.tenants)]
        inputs = {
            name: [rng.uniform(0, 1, input_shape).tolist()
                   for _ in range(options.requests)]
            for name in tenants
        }
        outcomes = {name: _TenantOutcome() for name in tenants}
        threads = [
            threading.Thread(
                target=_drive_tenant,
                args=(client, name, inputs[name], options,
                      outcomes[name]),
                name=f"repro-loadgen-{name}",
            )
            for name in tenants
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - start

        submitted = sum(o.submitted for o in outcomes.values())
        accepted = sum(o.accepted for o in outcomes.values())
        shed = sum(o.shed for o in outcomes.values())
        rate_limited = sum(o.rate_limited for o in outcomes.values())
        retries = sum(o.retries for o in outcomes.values())
        shed_posts = sum(o.shed_posts for o in outcomes.values())
        states: Dict[str, int] = {}
        latencies: List[float] = []
        errors: List[str] = []
        for outcome in outcomes.values():
            for state, count in outcome.states.items():
                key = state if state is not None else "unresolved"
                states[key] = states.get(key, 0) + count
            latencies.extend(outcome.latencies)
            errors.extend(outcome.errors)
        terminal_observed = sum(
            count for state, count in states.items()
            if state in TERMINAL_STATES
        )
        accounting_ok = (accepted + shed + rate_limited == submitted
                         and terminal_observed == accepted
                         and not errors)
        done = states.get("done", 0)

        isolation = None
        if gateway is not None and len(tenants) > 1:
            isolation = _cross_tenant_probes(gateway)

        report = {
            "schema": SCHEMA,
            "mode": mode,
            "tenants": options.tenants,
            "requests_per_tenant": options.requests,
            "submitted": submitted,
            "accepted": accepted,
            "shed": shed,
            "rate_limited": rate_limited,
            "retries": retries,
            "outcomes": states,
            "accounting_ok": accounting_ok,
            "errors": errors,
            "wall_seconds": wall,
            "req_per_s": (done / wall) if wall > 0 else 0.0,
            "latency_ms": {
                "p50": _percentile_ms(latencies, 50),
                "p99": _percentile_ms(latencies, 99),
                "mean": (float(np.mean(latencies)) * 1000.0
                         if latencies else None),
            },
            "cross_tenant_decrypts": (
                isolation["recoveries"] if isolation else None
            ),
            "isolation": isolation,
            "config": {
                "key_size": options.key_size,
                "seed": options.seed,
                "model": options.model,
                "queue_capacity": options.queue_capacity,
                "serve_workers": options.serve_workers,
                "tenant_quota": options.tenant_quota,
                "fleet_workers": (options.fleet_workers
                                  if mode == "fleet" else None),
                "deadline": options.deadline,
            },
        }
        if gateway is not None:
            # Server-side cross-check: the tracker must agree with
            # the client's accounting and hold no non-terminal job.
            # Every 202 and every 503 (retried ones included) made a
            # tracked job; 429s never reached the job manager.
            tracker = gateway.manager.tracker
            report["server"] = {
                "jobs": len(tracker),
                "counts": tracker.counts(),
                "all_terminal": tracker.all_terminal(),
            }
            report["accounting_ok"] = (
                report["accounting_ok"]
                and len(tracker) == accepted + shed_posts
                and tracker.all_terminal()
            )
        if options.out:
            with open(options.out, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return report
    finally:
        if gateway is not None:
            gateway.close()
        for server in fleet:
            server.stop()


def render_report(report: dict) -> str:
    """Human-readable summary of one loadgen report."""
    latency = report["latency_ms"]
    lines = [
        f"{report['tenants']} tenants x "
        f"{report['requests_per_tenant']} requests "
        f"({report['mode']} mode): "
        f"{report['submitted']} submitted, "
        f"{report['accepted']} accepted, {report['shed']} shed "
        f"in {report['wall_seconds']:.2f}s",
        f"  outcomes: {report['outcomes']}",
        f"  backpressure: {report.get('retries', 0)} Retry-After "
        f"retries, {report.get('rate_limited', 0)} rate-limited",
        f"  throughput: {report['req_per_s']:.2f} done req/s",
    ]
    if latency["p50"] is not None:
        lines.append(
            f"  latency: p50 {latency['p50']:.0f} ms, "
            f"p99 {latency['p99']:.0f} ms"
        )
    accounting = "exact" if report["accounting_ok"] else "BROKEN"
    lines.append(f"  accounting (accepted + shed + rate-limited == "
                 f"submitted, all terminal): {accounting}")
    if report.get("isolation") is not None:
        isolation = report["isolation"]
        lines.append(
            f"  isolation: {isolation['recoveries']} cross-tenant "
            f"decrypts in {isolation['attempts']} attack(s), "
            f"own-key decrypt "
            f"{'ok' if isolation['self_decrypt_ok'] else 'BROKEN'}"
        )
    return "\n".join(lines)
