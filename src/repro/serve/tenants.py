"""Per-tenant crypto isolation over one shared worker fleet.

Each tenant gets a :class:`TenantRuntime`: its **own Paillier
keypair** (the tenant's config seed is derived from the gateway's
master seed and the tenant name, and
:class:`~repro.protocol.roles.DataProvider` derives the keypair from
the seed), its own obfuscator state, its own stage plan, and — in
fleet mode — its own :class:`~repro.net.coordinator.Coordinator`
handshaking the *shared* workers under its tenant name.  Workers host
one isolated session per tenant (role pinned per process, keypair
pinned per tenant; see :mod:`repro.net.worker`), so tenant A's
private key never touches tenant B's ciphertexts anywhere in the
system.

The :class:`TenantRegistry` bounds how many tenants a gateway will
ever hold (:attr:`~repro.config.RuntimeConfig.serve_max_tenants`) and
validates names before they become metric labels or URL components.
"""

from __future__ import annotations

import hashlib
import re
import threading
import time
from dataclasses import replace
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..errors import (
    DeadlineExceededError,
    ServeError,
    TenantError,
    TenantRejectedError,
)
from ..observability import OBS_OFF, Observability
from ..planner.allocation import allocate_even
from ..planner.plan import ClusterSpec, ServerSpec
from ..protocol.roles import DataProvider, ModelProvider
from ..stream.pipeline import Pipeline, StreamStats
from ..stream.retry import REASON_DEADLINE, RetryPolicy
from .jobs import Job

#: Tenant names become metric labels, URL components, and handshake
#: header fields — keep them to a safe charset.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Seed salt separating loadgen/test probe RNGs from tenant streams.
_PROBE_SALT = 0x7E57


def compress_served_model(model, config, eval_data=None):
    """The pruned + clustered form of the served model, plus a report.

    Runs :func:`repro.nn.rewrite.prune_model` at
    ``config.compress_sparsity`` then
    :func:`repro.scaling.clustering.cluster_model` at
    ``config.compress_clusters`` — deterministic under the gateway's
    master seed, so a restarted gateway re-derives byte-identical
    weights (and therefore identical handshake spec digests on the
    fleet).  With ``eval_data`` (an ``(inputs, labels)`` pair) the
    pruning pass backs off to stay inside
    ``config.compress_accuracy_budget`` and the combined dense-vs-
    compressed accuracy drop is gated — a budget-blowing compression
    raises :class:`~repro.errors.ServeError` at startup instead of
    silently serving a degraded model.  Without eval data (e.g. the
    untrained ``tiny`` smoke model) compression is structural only
    and the budget is enforced where data exists (the bench gate).
    """
    from ..nn.rewrite import prune_model
    from ..scaling.clustering import cluster_model

    inputs = labels = None
    if eval_data is not None:
        inputs, labels = eval_data
    pruned, prune_report = prune_model(
        model, config.compress_sparsity,
        inputs=inputs, labels=labels,
        accuracy_budget=config.compress_accuracy_budget,
    )
    clustered, cluster_report = cluster_model(
        pruned, config.compress_clusters,
        seed=config.seed,
        inputs=inputs, labels=labels,
    )
    report = {
        "target_sparsity": config.compress_sparsity,
        "applied_sparsity": prune_report.applied_sparsity,
        "clusters": config.compress_clusters,
        "baseline_accuracy": prune_report.baseline_accuracy,
        "compressed_accuracy": cluster_report.clustered_accuracy,
    }
    if (prune_report.baseline_accuracy is not None
            and cluster_report.clustered_accuracy is not None):
        drop = (prune_report.baseline_accuracy
                - cluster_report.clustered_accuracy)
        report["accuracy_drop"] = drop
        if drop > config.compress_accuracy_budget + 1e-12:
            raise ServeError(
                f"compressed model blows the accuracy budget: drop "
                f"{drop:.4f} > {config.compress_accuracy_budget}"
            )
    return clustered, report


def tenant_seed(master_seed: int, name: str) -> int:
    """The config seed for one tenant: a cryptographic hash of the
    master seed and the tenant name.

    Collision resistance is a *security* requirement here, not a
    nicety: tenant names are attacker-chosen (any client can register
    one on first use), and two names with the same seed would derive
    the **same Paillier keypair** — the colliding tenant's
    DataProvider would hold the victim's private key.  A non-crypto
    checksum (the original implementation used CRC32) lets an
    adversary compute a colliding name outright, so the seed is the
    first 64 bits of SHA-256 over ``"{master_seed}:{name}"``.  The
    mapping stays deterministic, so a restarted gateway re-derives
    the same keys."""
    digest = hashlib.sha256(
        f"{master_seed}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class TenantRuntime:
    """One tenant's isolated serving state.

    Args:
        name: validated tenant name.
        model / decimals: the shared served model (architecture and
            weights are the *gateway's*, not per-tenant) and its
            scaling exponent.
        config: the gateway config; this runtime replaces its seed
            with :func:`tenant_seed`, which re-keys the tenant's
            DataProvider, obfuscator, and every derived RNG stream.
        cluster: cluster spec shared by every tenant (it mirrors the
            one worker fleet).
        mode: ``"local"`` executes stages in-process (a fresh
            pipeline per job over persistent providers); ``"fleet"``
            ships stages to the shared TCP workers through a
            per-tenant coordinator.
        worker_addresses: fleet mode's ``(host, port)`` per cluster
            server, in server-id order.
        obs: the gateway-wide observability sinks.
    """

    def __init__(
        self,
        name: str,
        model,
        decimals: int,
        config,
        cluster: ClusterSpec,
        mode: str = "local",
        worker_addresses: Sequence[tuple] | None = None,
        obs: Observability | None = None,
        departed: Sequence[int] = (),
    ):
        if mode not in ("local", "fleet"):
            raise TenantError(f"unknown tenant mode {mode!r}")
        self.name = name
        self.mode = mode
        self.obs = obs if obs is not None else OBS_OFF
        self.config = replace(config, seed=tenant_seed(config.seed,
                                                       name))
        self.model_provider = ModelProvider(
            model, decimals=decimals, config=self.config, obs=self.obs
        )
        self.data_provider = DataProvider(
            value_decimals=decimals, config=self.config, obs=self.obs
        )
        self.plan = allocate_even(self.model_provider.stages,
                                  cluster).plan
        self.jobs_run = 0
        #: Monotonic timestamp of creation / last job, read by the
        #: registry's idle-eviction scan.
        self.last_used = time.monotonic()
        # One job at a time per tenant: the providers' obfuscator and
        # engine state are session-scoped, not concurrency-safe.  The
        # job manager already serializes per tenant; this lock is the
        # enforcement, not a hint.
        self._lock = threading.Lock()
        self._coordinator = None
        if mode == "fleet":
            from ..cluster import ElasticCoordinator

            if worker_addresses is None:
                raise TenantError(
                    "fleet mode needs worker addresses"
                )
            # Elastic so the gateway can grow/shrink the shared fleet
            # under load; membership joins arrive through the registry
            # API, not the wire, so no per-tenant listener is opened.
            self._coordinator = ElasticCoordinator(
                self.model_provider,
                self.data_provider,
                self.plan,
                [tuple(address) for address in worker_addresses],
                # Generous retries: a killed fleet worker heals via
                # reconnect in well under this window, so a job in
                # flight during the death completes instead of
                # dead-lettering.
                retry_policy=RetryPolicy(
                    max_retries=6, base_delay=0.05,
                    jitter_seed=self.config.seed ^ 0x10AD,
                ),
                obs=self.obs,
                tenant=name,
                membership=False,
            )
            # A tenant created after a shrink inherits the full
            # (append-only) address list; draining the departed slots
            # up front re-plans around them and keeps connect() from
            # dialing workers that are gone.
            for server_id in departed:
                self._coordinator.drain_member(server_id)
            self.plan = self._coordinator.plan

    # -- elastic fleet (docs/ELASTIC.md) -------------------------------

    def admit_worker(self, address: tuple, role: str,
                     cores: int = 2) -> None:
        """Admit one shared-fleet worker into this tenant's
        coordinator (live: jobs mid-flight keep streaming)."""
        if self._coordinator is None:
            raise TenantError(
                f"tenant {self.name!r} runs in local mode; there is "
                "no fleet to grow"
            )
        self._coordinator.admit_join(address, role, cores=cores)
        self.plan = self._coordinator.plan

    def drain_worker(self, server_id: int) -> None:
        """Drain one shared-fleet member out of this tenant's
        coordinator (re-plans around it, quiesces its connections)."""
        if self._coordinator is None:
            raise TenantError(
                f"tenant {self.name!r} runs in local mode; there is "
                "no fleet to shrink"
            )
        self._coordinator.drain_member(server_id)
        self.plan = self._coordinator.plan

    @property
    def public_key(self):
        return self.data_provider.public_key

    @property
    def private_key(self):
        """This tenant's private key — exposed for the isolation
        tests and loadgen cross-tenant decrypt probes only; nothing
        in the serving path reads it."""
        return self.data_provider._private_key

    def run(self, job: Job) -> dict:
        """Execute one job end-to-end; returns the result payload.

        Raises :class:`DeadlineExceededError` when the job's budget
        is already (or becomes) blown — the remaining budget is
        threaded into the pipeline as its per-request deadline, so
        the stream runtime's own deadline/dead-letter machinery does
        the enforcement mid-flight.
        """
        remaining = None
        if job.deadline is not None:
            remaining = job.deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"job {job.job_id} blew its deadline before "
                    "execution"
                )
        payload = np.asarray(job.payload, dtype=np.float64)
        with self._lock:
            self.last_used = time.monotonic()
            stats = self._run_stream([payload], remaining)
            self.jobs_run += 1
            self.last_used = time.monotonic()
        if stats.dead_letters:
            letter = stats.dead_letters[0]
            if letter.reason == REASON_DEADLINE:
                raise DeadlineExceededError(letter.describe())
            raise ServeError(
                f"tenant {self.name}: {letter.describe()}"
            )
        result = stats.results[0]
        return {
            "prediction": int(result.prediction),
            "probabilities": [float(p)
                              for p in result.probabilities],
        }

    def _run_stream(self, inputs: List[np.ndarray],
                    request_deadline: float | None) -> StreamStats:
        if self._coordinator is not None:
            return self._coordinator.run_stream(
                inputs, request_deadline=request_deadline
            )
        pipeline = Pipeline(
            self.model_provider,
            self.data_provider,
            self.plan,
            retry_policy=RetryPolicy(
                max_retries=3, base_delay=0.01,
                jitter_seed=self.config.seed ^ 0x10AD,
            ),
            request_deadline=request_deadline,
            obs=self.obs,
        )
        return pipeline.run_stream(inputs)

    def close(self) -> None:
        with self._lock:
            if self._coordinator is not None:
                self._coordinator.close()
                self._coordinator = None


class _Creation:
    """Per-name latch for a tenant runtime being built outside the
    registry lock; waiters block on ``event`` and re-raise ``error``
    when the creator failed."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error: BaseException | None = None


class TenantRegistry:
    """Bounded name -> :class:`TenantRuntime` registry.

    Tenants are created on first use (``ensure``), up to
    ``config.serve_max_tenants``; lookups for unknown tenants raise
    :class:`TenantError` so the gateway can 404/403 precisely.

    Registration hardening (all knobs on the config):

    * ``serve_tenant_allowlist`` — when non-empty, names off the list
      are refused with :class:`TenantRejectedError` *before* any
      keygen is spent on them.
    * ``serve_tenant_idle_seconds`` — when the table is full, the
      least-recently-used tenant that is idle past this threshold
      (and has no job in flight, per the injected :attr:`in_use`
      predicate) is evicted to make room; 0 disables eviction and a
      full table stays full.
    * Runtime construction (Paillier keygen, fleet handshakes) runs
      **outside** the registry lock behind a per-name latch, so one
      new tenant's keygen never stalls ``get`` for every running job.
    """

    def __init__(
        self,
        model,
        decimals: int,
        config,
        cluster: ClusterSpec | None = None,
        mode: str = "local",
        worker_addresses: Sequence[tuple] | None = None,
        obs: Observability | None = None,
        eval_data=None,
    ):
        self._model = model
        self._decimals = decimals
        self.config = config
        #: Compression report when ``config.compress_enabled`` (the
        #: pruned + clustered model is derived once, eagerly, and
        #: shared by every opted-in tenant — each tenant still builds
        #: its own keys, plans, and provider state from it).
        self.compression: dict | None = None
        self._compressed_model = None
        if getattr(config, "compress_enabled", False):
            self._compressed_model, self.compression = \
                compress_served_model(model, config,
                                      eval_data=eval_data)
        self.cluster = (cluster if cluster is not None
                        else ClusterSpec.homogeneous(1, 1, 2))
        self.mode = mode
        self._worker_addresses = (list(worker_addresses)
                                  if worker_addresses is not None
                                  else None)
        #: Server ids drained out of the shared fleet; slots are
        #: append-only, so departed ids are masked rather than reused.
        self._departed: set[int] = set()
        self.obs = obs if obs is not None else OBS_OFF
        self._tenants: Dict[str, TenantRuntime] = {}
        self._pending: Dict[str, _Creation] = {}
        self._lock = threading.Lock()
        #: Injected by the gateway: ``in_use(name)`` is True while the
        #: tenant has any job queued or running, which vetoes idle
        #: eviction.  None = only the runtime's own run-lock is
        #: checked.
        self.in_use: Callable[[str], bool] | None = None

    def ensure(self, name: str) -> TenantRuntime:
        """The runtime for ``name``, creating it on first use.

        The expensive construction (keygen, fleet handshakes) happens
        outside the registry lock; concurrent ``ensure`` calls for the
        same name share one construction, and calls for *other*
        names — including plain ``get`` from the job workers — never
        block behind it.
        """
        if not isinstance(name, str) or not _TENANT_NAME.match(name):
            raise TenantError(
                f"invalid tenant name {name!r} (want "
                "[A-Za-z0-9][A-Za-z0-9_.-]{0,63})"
            )
        allowlist = self.config.serve_tenant_allowlist
        if allowlist and name not in allowlist:
            raise TenantRejectedError(
                f"tenant {name!r} is not on the allowlist; "
                "registration refused"
            )
        while True:
            evicted = None
            with self._lock:
                runtime = self._tenants.get(name)
                if runtime is not None:
                    return runtime
                latch = self._pending.get(name)
                if latch is None:
                    occupied = len(self._tenants) + len(self._pending)
                    if occupied >= self.config.serve_max_tenants:
                        evicted = self._pick_idle_locked()
                        if evicted is None:
                            raise TenantRejectedError(
                                f"tenant cap reached "
                                f"({self.config.serve_max_tenants}) "
                                f"and no tenant is evictable; "
                                f"refusing new tenant {name!r}"
                            )
                        del self._tenants[evicted.name]
                    latch = _Creation()
                    self._pending[name] = latch
                    break
            # Someone else is mid-keygen for this name: wait off-lock,
            # then re-read (success) or re-raise (their failure).
            latch.event.wait()
            if latch.error is not None:
                raise TenantError(
                    f"tenant {name!r} failed to initialize: "
                    f"{latch.error!r}"
                ) from latch.error
        if evicted is not None:
            evicted.close()
            self.obs.registry.counter("serve_tenants_evicted").inc()
        with self._lock:
            cluster = self.cluster
            addresses = (list(self._worker_addresses)
                         if self._worker_addresses is not None
                         else None)
            departed = tuple(sorted(self._departed))
        try:
            runtime = TenantRuntime(
                name, self._model_for(name), self._decimals,
                self.config, cluster, mode=self.mode,
                worker_addresses=addresses,
                obs=self.obs, departed=departed,
            )
        except BaseException as exc:
            with self._lock:
                self._pending.pop(name, None)
            latch.error = exc
            latch.event.set()
            raise
        with self._lock:
            self._pending.pop(name, None)
            self._tenants[name] = runtime
            self.obs.registry.gauge("serve_tenants").set(
                len(self._tenants)
            )
        latch.event.set()
        return runtime

    def _model_for(self, name: str):
        """The model this tenant serves: the compressed form when
        compression is on and the tenant is opted in
        (``serve_compress_tenants`` empty = every tenant), else the
        dense original."""
        if self._compressed_model is None:
            return self._model
        chosen = getattr(self.config, "serve_compress_tenants", ())
        if chosen and name not in chosen:
            return self._model
        return self._compressed_model

    def _pick_idle_locked(self) -> TenantRuntime | None:
        """The least-recently-used evictable tenant, or None.

        Evictable = idle past ``serve_tenant_idle_seconds`` (0 = the
        feature is off), not mid-job on its own run lock, and not in
        use per the gateway's quota accounting.  Caller holds the
        registry lock."""
        idle_after = self.config.serve_tenant_idle_seconds
        if idle_after <= 0:
            return None
        now = time.monotonic()
        candidates = [
            runtime for runtime in self._tenants.values()
            if now - runtime.last_used >= idle_after
            and not runtime._lock.locked()
            and not (self.in_use is not None
                     and self.in_use(runtime.name))
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.last_used)

    # -- elastic fleet (docs/ELASTIC.md) -------------------------------

    def grow(self, address: tuple, role: str,
             cores: int = 2) -> int:
        """Admit one worker into every tenant's fleet.

        Appends the worker to the registry's cluster and address list
        (so tenants created later see it from birth) and fans the
        admit out to every existing tenant's coordinator — live; jobs
        in flight keep streaming.  Returns the new server id.
        """
        if self.mode != "fleet":
            raise ServeError("grow() only applies to fleet mode")
        address = (str(address[0]), int(address[1]))
        with self._lock:
            addresses = self._worker_addresses or []
            server_id = len(addresses)
            addresses.append(address)
            self._worker_addresses = addresses
            self.cluster = ClusterSpec(
                self.cluster.servers
                + (ServerSpec(server_id, int(cores), role),),
                self.cluster.hyperthreading,
            )
            tenants = list(self._tenants.values())
        for runtime in tenants:
            runtime.admit_worker(address, role, cores=cores)
        self.obs.registry.counter("serve_fleet_grown").inc()
        self._refresh_fleet_gauge()
        return server_id

    def shrink(self, server_id: int) -> None:
        """Drain one worker out of every tenant's fleet.

        The slot's id stays reserved (append-only ids); tenants
        created later drain it at construction so they never dial
        the departed worker.
        """
        if self.mode != "fleet":
            raise ServeError("shrink() only applies to fleet mode")
        with self._lock:
            known = len(self._worker_addresses or [])
            if not 0 <= server_id < known:
                raise ServeError(
                    f"no fleet worker with server id {server_id}"
                )
            if server_id in self._departed:
                raise ServeError(
                    f"fleet worker {server_id} already drained"
                )
            target = self.cluster.servers[server_id]
            survivors = [
                server for server in self.cluster.servers
                if server.server_id != server_id
                and server.server_id not in self._departed
            ]
            if not any(server.role == target.role
                       for server in survivors):
                raise ServeError(
                    f"cannot drain the last {target.role} worker "
                    f"(server {server_id})"
                )
            self._departed.add(server_id)
            tenants = list(self._tenants.values())
        for runtime in tenants:
            runtime.drain_worker(server_id)
        self.obs.registry.counter("serve_fleet_shrunk").inc()
        self._refresh_fleet_gauge()

    def _refresh_fleet_gauge(self) -> None:
        with self._lock:
            present = (len(self._worker_addresses or [])
                       - len(self._departed))
        self.obs.registry.gauge("serve_fleet_size").set(present)

    def get(self, name: str) -> TenantRuntime:
        """The runtime for an *existing* tenant (no creation)."""
        with self._lock:
            runtime = self._tenants.get(name)
        if runtime is None:
            raise TenantError(f"unknown tenant {name!r}")
        return runtime

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def close(self) -> None:
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for runtime in tenants:
            runtime.close()
