"""The stdlib HTTP front door for multi-tenant encrypted inference.

Endpoints (JSON in/out; see docs/SERVING.md for full shapes):

* ``POST /v1/infer`` — body ``{"tenant", "input", "deadline"?}``;
  202 + ``{"job_id", ...}`` on admission, **503 +** ``Retry-After``
  when admission control sheds the request (a *transient* capacity
  condition), **403 without** ``Retry-After`` when tenant
  registration is refused outright (name off the allowlist, tenant
  table full — retrying cannot help), 400 on malformed input, 404 on
  an unknown route.
* ``GET /v1/jobs/<id>?tenant=<name>`` — job status document; 403
  when the job belongs to a different tenant (cross-tenant status
  reads are refused, and counted), 404 when unknown.
* ``GET /metrics`` — the shared registry in Prometheus text format.
* ``GET /healthz`` — liveness.

The server is :class:`http.server.ThreadingHTTPServer` (stdlib only —
no new dependencies); each connection thread renames itself to
``repro-serve-http`` so the soak sentinels attribute it.  Tracing is
deliberately off (``NULL_TRACER``): a long-running server must not
accumulate spans without bound, while metrics are fixed-cardinality.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence
from urllib.parse import parse_qs, urlparse

from ..errors import (
    ReproError,
    ServeError,
    TenantError,
    TenantRejectedError,
)
from ..observability import NULL_TRACER, Observability
from ..planner.plan import ClusterSpec
from ..protocol.ratelimit import RateLimiter, RateLimitExceeded
from .jobs import JobManager, SHED
from .tenants import TenantRegistry


def build_serve_model(key: str = "tiny") -> tuple:
    """``(model, decimals, input_shape)`` for the gateway to serve.

    ``"tiny"`` is an untrained 1-conv+2-FC over ``(1, 8, 8)`` inputs
    — the same shape the networked-runtime tests use, fast enough
    for CI smoke runs; any other key is a Table III model key,
    trained via :func:`repro.experiments.common.prepare_model`.
    """
    if key == "tiny":
        from ..nn import model_zoo

        model = model_zoo.conv_fc(
            (1, 8, 8), 3, conv_channels=(2,), fc_hidden=8, seed=3,
            name="serve-tiny",
        )
        return model, 2, (1, 8, 8)
    from ..experiments.common import prepare_model

    prepared = prepare_model(key)
    return (prepared.model, prepared.decimals,
            prepared.dataset.test_x[0].shape)


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    gateway: "ServeGateway"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # requests are counted in the registry, not stderr

    def _reply(self, status: int, doc: dict,
               headers: dict | None = None) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.gateway.obs.registry.counter(
            "serve_http_responses", code=str(status)
        ).inc()

    # -- routes --------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        threading.current_thread().name = "repro-serve-http"
        if urlparse(self.path).path != "/v1/infer":
            self._reply(404, {"error": f"no such route {self.path}"})
            return
        gateway = self.server.gateway
        try:
            length = int(self.headers.get("Content-Length", "0"))
            doc = json.loads(self.rfile.read(length) or b"{}")
            tenant = doc["tenant"]
            values = doc["input"]
            deadline = doc.get("deadline")
            if deadline is not None:
                deadline = float(deadline)
        except (KeyError, TypeError, ValueError) as exc:
            self._reply(400, {"error": f"malformed request: {exc}"})
            return
        try:
            job = gateway.submit(tenant, values, deadline)
        except RateLimitExceeded as exc:
            # Transient by definition — the window slides open within
            # a second, so 429 with a Retry-After of one window.
            self._reply(429, {"error": str(exc)},
                        headers={"Retry-After": "1"})
            return
        except TenantRejectedError as exc:
            # Allowlist miss or a full tenant table: retrying cannot
            # succeed, so no Retry-After — 403, not 503.
            self._reply(403, {"error": str(exc)})
            return
        except TenantError as exc:
            self._reply(400, {"error": str(exc)})
            return
        except ReproError as exc:
            self._reply(500, {"error": repr(exc)})
            return
        if job.state == SHED:
            self._reply(503, job.to_dict(), headers={
                "Retry-After": _retry_after(gateway),
            })
            return
        self._reply(202, job.to_dict())

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        threading.current_thread().name = "repro-serve-http"
        gateway = self.server.gateway
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            text = gateway.obs.registry.to_prometheus()
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if parsed.path == "/healthz":
            self._reply(200, {"ok": True})
            return
        if parsed.path.startswith("/v1/jobs/"):
            job_id = parsed.path[len("/v1/jobs/"):]
            tenant = parse_qs(parsed.query).get("tenant", [None])[0]
            job = gateway.manager.tracker.get(job_id)
            if job is None:
                self._reply(404, {"error": f"unknown job {job_id}"})
                return
            if tenant != job.tenant:
                gateway.obs.registry.counter(
                    "serve_cross_tenant_denied",
                    tenant=str(tenant),
                ).inc()
                self._reply(403, {
                    "error": "job belongs to a different tenant",
                })
                return
            self._reply(200, job.to_dict())
            return
        self._reply(404, {"error": f"no such route {parsed.path}"})


def _retry_after(gateway: "ServeGateway") -> str:
    value = gateway.config.serve_retry_after
    return (str(int(value)) if float(value).is_integer()
            else str(value))


class ServeGateway:
    """The assembled serving stack: registry + job manager + HTTP.

    Args:
        model / decimals: what to serve (see
            :func:`build_serve_model`).
        config: the ``serve_*`` knobs plus everything the per-tenant
            runtimes derive from it (key size, master seed, net
            knobs, chaos knobs in fleet mode).
        mode: ``"local"`` (in-process stages) or ``"fleet"``
            (per-tenant coordinators over shared TCP workers).
        worker_addresses: fleet mode's worker addresses, in cluster
            server-id order.
        cluster: cluster spec mirroring the fleet; defaults to one
            model + one data server.
        host / port: HTTP listen address (port 0 = ephemeral).
        obs: observability; defaults to an enabled registry with
            tracing off (span growth is unbounded on a server).
    """

    def __init__(
        self,
        model,
        decimals: int,
        config,
        mode: str = "local",
        worker_addresses: Sequence[tuple] | None = None,
        cluster: ClusterSpec | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        obs: Observability | None = None,
        eval_data=None,
    ):
        self.config = config
        self.obs = obs if obs is not None else Observability(
            enabled=True, tracer=NULL_TRACER
        )
        # Per-tenant sliding-window rate limiters (serve_tenant_rps;
        # created lazily per registered tenant, so the map is bounded
        # by serve_max_tenants).
        self._limiters: dict[str, RateLimiter] = {}
        self._limiter_lock = threading.Lock()
        if cluster is None and mode == "fleet":
            if not worker_addresses or len(worker_addresses) < 2:
                raise ServeError(
                    "fleet mode needs at least two worker addresses "
                    "(one model role, one data role)"
                )
            model_workers = max(1, len(worker_addresses) // 2)
            cluster = ClusterSpec.homogeneous(
                model_workers,
                len(worker_addresses) - model_workers, 2,
            )
        self.registry = TenantRegistry(
            model, decimals, config, cluster=cluster, mode=mode,
            worker_addresses=worker_addresses, obs=self.obs,
            eval_data=eval_data,
        )
        self.manager = JobManager(self._run_job, config,
                                  obs=self.obs)
        # Idle eviction must never reap a tenant with a job queued or
        # running; quota accounting is the authoritative signal.
        self.registry.in_use = \
            lambda name: self.manager.inflight(name) > 0
        self._httpd = _GatewayHTTPServer((host, port), _Handler)
        self._httpd.gateway = self
        self.address: tuple[str, int] = \
            self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None
        self._closed = False

    # -- job execution -------------------------------------------------

    def _run_job(self, job) -> dict:
        return self.registry.get(job.tenant).run(job)

    def submit(self, tenant: str, values,
               deadline_seconds: float | None = None):
        """Admit one request (the HTTP POST body lands here).

        Creates the tenant on first use (so its keypair exists before
        any job runs), then defers to the job manager's admission
        control.  Raises :class:`TenantError` for a bad name or a
        full tenant table.
        """
        self.registry.ensure(tenant)
        self._admit_rate(tenant)
        return self.manager.submit(tenant, values, deadline_seconds)

    def _admit_rate(self, tenant: str) -> None:
        """Per-tenant sliding-window rate limiting (serve_tenant_rps).

        Runs *after* :meth:`TenantRegistry.ensure` so only registered
        tenants ever get a limiter — the map stays bounded by
        ``serve_max_tenants``.  Over-limit submits raise
        :class:`~repro.protocol.ratelimit.RateLimitExceeded` (the HTTP
        handler maps it to 429 + ``Retry-After``), counted per tenant
        in ``serve_rate_limited``.
        """
        rps = getattr(self.config, "serve_tenant_rps", 0)
        if rps <= 0:
            return
        with self._limiter_lock:
            limiter = self._limiters.get(tenant)
            if limiter is None:
                limiter = RateLimiter(rps, 1.0)
                self._limiters[tenant] = limiter
        try:
            limiter.admit()
        except RateLimitExceeded:
            self.obs.registry.counter(
                "serve_rate_limited", tenant=tenant
            ).inc()
            raise

    # -- elastic fleet (docs/ELASTIC.md) -------------------------------

    def grow_fleet(self, address: tuple, role: str = "model",
                   cores: int = 2) -> int:
        """Admit one worker into the shared fleet, live, for every
        tenant (and every future tenant).  Returns the server id."""
        return self.registry.grow(address, role, cores=cores)

    def shrink_fleet(self, server_id: int) -> None:
        """Drain one shared-fleet worker out of every tenant's
        coordinator; its slot id is retired, never reused."""
        self.registry.shrink(server_id)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start the fleet and the HTTP accept loop; returns the
        bound ``(host, port)``."""
        self.manager.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-serve-gateway-{self.address[1]}",
            daemon=True,
        )
        self._serve_thread.start()
        return self.address

    def close(self) -> None:
        """Orderly shutdown: stop accepting, fail queued jobs, wait
        for running jobs, release every tenant's coordinator."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        self.manager.shutdown()
        self.registry.close()

    def __enter__(self) -> "ServeGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
