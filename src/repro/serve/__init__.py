"""Multi-tenant serving gateway (docs/SERVING.md).

An async HTTP front door over the existing stream runtime: a bounded
job queue with admission control (overload is shed with HTTP 503 +
``Retry-After`` instead of unbounded latency), a per-job state
machine, and per-tenant crypto isolation — every tenant gets its own
Paillier keypair and session state while all jobs multiplex onto one
shared worker fleet.

Layers (each importable on its own):

* :mod:`repro.serve.jobs` — job FSM, tracker, and the
  :class:`~repro.serve.jobs.JobManager` worker fleet;
* :mod:`repro.serve.tenants` — per-tenant runtimes (keypair, plan,
  pipeline or per-tenant coordinator) and the bounded registry;
* :mod:`repro.serve.gateway` — the stdlib HTTP server exposing
  ``POST /v1/infer`` / ``GET /v1/jobs/<id>`` / ``GET /metrics``;
* :mod:`repro.serve.loadgen` — the concurrency load generator behind
  ``python -m repro loadgen`` (writes ``BENCH_serve.json``).
"""

from .jobs import (
    DEADLINE,
    DONE,
    FAILED,
    Job,
    JobManager,
    JobTracker,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    SHED,
    TERMINAL_STATES,
)
from .tenants import TenantRegistry, TenantRuntime, tenant_seed
from .gateway import ServeGateway, build_serve_model
from .loadgen import LoadgenOptions, run_loadgen

__all__ = [
    "DEADLINE",
    "DONE",
    "FAILED",
    "Job",
    "JobManager",
    "JobTracker",
    "LEGAL_TRANSITIONS",
    "LoadgenOptions",
    "QUEUED",
    "RUNNING",
    "SHED",
    "ServeGateway",
    "TERMINAL_STATES",
    "TenantRegistry",
    "TenantRuntime",
    "build_serve_model",
    "run_loadgen",
    "tenant_seed",
]
