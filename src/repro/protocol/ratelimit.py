"""Rate limiting of inference requests (paper Section II-C).

A compromised data provider could mount a model-stealing attack by
issuing many queries and training a surrogate on the answers.  The
paper's suggested countermeasure is to "rate-limit the number of
requests issued by the data provider" [Juvekar et al.].  This module
implements that guard as a sliding-window limiter plus a lifetime query
budget, which the model provider consults before serving a round.
"""

from __future__ import annotations

import threading
from collections import deque

from ..errors import ProtocolError


class RateLimitExceeded(ProtocolError):
    """The data provider exceeded its query allowance."""


class RateLimiter:
    """Sliding-window + lifetime-budget request limiter.

    Attributes:
        max_per_window: requests allowed inside any ``window_seconds``
            span.
        window_seconds: sliding-window length.
        lifetime_budget: total requests ever allowed (None = unlimited).
    """

    def __init__(
        self,
        max_per_window: int,
        window_seconds: float,
        lifetime_budget: int | None = None,
        clock=None,
    ):
        if max_per_window < 1:
            raise ProtocolError("max_per_window must be >= 1")
        if window_seconds <= 0:
            raise ProtocolError("window_seconds must be positive")
        if lifetime_budget is not None and lifetime_budget < 1:
            raise ProtocolError("lifetime_budget must be >= 1 or None")
        self.max_per_window = max_per_window
        self.window_seconds = window_seconds
        self.lifetime_budget = lifetime_budget
        self._clock = clock if clock is not None else _monotonic
        self._events: deque[float] = deque()
        self._total = 0
        self._lock = threading.Lock()

    def admit(self) -> None:
        """Record one request; raises :class:`RateLimitExceeded` when
        either the window or the lifetime budget is exhausted."""
        now = self._clock()
        with self._lock:
            if self.lifetime_budget is not None and \
                    self._total >= self.lifetime_budget:
                raise RateLimitExceeded(
                    f"lifetime budget of {self.lifetime_budget} "
                    "requests exhausted"
                )
            horizon = now - self.window_seconds
            while self._events and self._events[0] <= horizon:
                self._events.popleft()
            if len(self._events) >= self.max_per_window:
                raise RateLimitExceeded(
                    f"more than {self.max_per_window} requests in "
                    f"{self.window_seconds}s"
                )
            self._events.append(now)
            self._total += 1

    @property
    def total_admitted(self) -> int:
        return self._total

    def remaining_in_window(self) -> int:
        now = self._clock()
        with self._lock:
            horizon = now - self.window_seconds
            while self._events and self._events[0] <= horizon:
                self._events.popleft()
            return max(self.max_per_window - len(self._events), 0)


def _monotonic() -> float:
    import time

    return time.monotonic()
