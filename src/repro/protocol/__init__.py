"""The collaborative inference protocol of the paper's Figure 3.

Real, crypto-correct execution of the three-round workflow: the data
provider encrypts inputs and evaluates non-linear operations on
(permuted) plaintexts; the model provider evaluates linear operations
homomorphically and (de)obfuscates tensors; every exchanged message is
recorded in a transcript so the security guarantees of Section III-D
can be checked mechanically in tests.
"""

from .message import Message, Transcript
from .ratelimit import RateLimiter, RateLimitExceeded
from .roles import DataProvider, ModelProvider
from .session import InferenceOutcome, InferenceSession

__all__ = [
    "Message",
    "Transcript",
    "RateLimiter",
    "RateLimitExceeded",
    "DataProvider",
    "ModelProvider",
    "InferenceOutcome",
    "InferenceSession",
]
