"""The two protocol parties: model provider and data provider.

Responsibilities follow Section III exactly:

* :class:`ModelProvider` holds the (scaled) model parameters, evaluates
  linear primitive stages homomorphically, and (de)obfuscates tensors.
  It never holds the private key and never sees a plaintext tensor.
* :class:`DataProvider` holds the Paillier keypair and the raw input,
  evaluates non-linear operations on decrypted (permuted) values, and
  re-encrypts results.  It never sees model parameters.

Both roles record what they observe during a session; the security
tests assert over those views (ciphertexts only at the model provider,
only permuted intermediates at the data provider).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, RuntimeConfig
from ..costs import CompressionStats
from ..crypto.encoding import LanePacker
from ..crypto.engine import PaillierEngine
from ..crypto.sparse import SparseMatvecPlan, plan_if_worthwhile
from ..observability import Observability
from ..crypto.paillier import PaillierPublicKey, generate_keypair
from ..crypto.tensor import EncryptedTensor, PackedEncryptedTensor
from ..errors import ProtocolError, SecurityViolationError
from ..nn.layers import Flatten, LayerKind
from ..nn.model import Sequential
from ..obfuscation.obfuscator import Obfuscator
from ..planner.primitive import MergedPrimitive, model_stages
from ..scaling.fixed_point import ScaledAffine, scaled_affine_for_layer
from ..scaling.headroom import LanePlan
from ..scaling.headroom import plan_lane_packing as _plan_lane_packing

#: Non-linear activations the data provider knows how to execute.
#: ReLU and Sigmoid are permutation-compatible; SoftMax is
#: position-sensitive and only legal in the final (non-obfuscated) round.
ELEMENTWISE_ACTIVATIONS = ("relu", "sigmoid")
FINAL_ACTIVATIONS = ("softmax",)


@dataclass
class LinearStagePlan:
    """The model provider's prepared form of one linear stage.

    ``matvec_plans`` is parallel to ``affines``: the per-layer
    :class:`~repro.crypto.sparse.SparseMatvecPlan` when the scaled
    weight matrix's structure (pruning sparsity, cluster dedup) makes
    the engine's compressed kernels the clear winner, else ``None``
    for the dense path.  Built once at session setup and carried by
    every runtime — in-process sessions, the threaded stream
    executors, and (serialized into the handshake spec) remote
    workers — so all of them hit identical kernels.
    """

    stage: MergedPrimitive
    affines: List[ScaledAffine] = field(default_factory=list)
    matvec_plans: List[SparseMatvecPlan | None] = \
        field(default_factory=list)


class ModelProvider:
    """Holds model parameters; executes linear stages under encryption."""

    def __init__(
        self,
        model: Sequential,
        decimals: int,
        config: RuntimeConfig = DEFAULT_CONFIG,
        obs: Observability | None = None,
    ):
        self.decimals = decimals
        self.config = config
        self._model = model
        #: Observability sinks.  Defaults from ``config.observability``
        #: (no-op twins when off); pass one shared instance to both
        #: parties to aggregate a session's metrics in one registry.
        self.obs = obs if obs is not None \
            else Observability.from_config(config)
        self._rng = random.Random(config.seed ^ 0x4D50)
        self._obfuscator = Obfuscator(config.seed ^ 0x0BF5)
        self._public_key: PaillierPublicKey | None = None
        #: Batched crypto engine, built when the public key arrives.
        #: The model provider never holds the private key, so its
        #: engine gets no CRT acceleration — only the blinding pool,
        #: power caches, and (if configured) the process pool.
        self.engine: PaillierEngine | None = None
        self.stages = model_stages(model)
        self._linear_plans: dict[int, LinearStagePlan] = {}
        for stage in self.stages:
            if stage.kind is LayerKind.LINEAR:
                plan = LinearStagePlan(stage)
                shape = stage.input_shape
                for primitive in stage.primitives:
                    if isinstance(primitive.layer, Flatten):
                        # Row-major flattening is a no-op on the flat
                        # ciphertext stream.
                        shape = primitive.output_shape
                        continue
                    affine = scaled_affine_for_layer(
                        primitive.layer, primitive.input_shape,
                        decimals,
                    )
                    plan.affines.append(affine)
                    plan.matvec_plans.append(
                        plan_if_worthwhile(affine.weight)
                    )
                    shape = primitive.output_shape
                self._linear_plans[stage.index] = plan
        #: What this party observed (for security tests): payload kinds.
        self.observed: List[str] = []
        # Static-bias encryption cache: the model is fixed, so each
        # affine's encrypted bias at a given input exponent can be
        # computed once and reused across requests.
        self._bias_cache: dict[tuple[int, int, int], object] = {}
        # Lane-packing state: admission plans per batch size, and the
        # packed twin of the bias cache (bias broadcast across lanes).
        self._lane_plans: dict[int, LanePlan] = {}
        self._packed_bias_cache: dict[tuple, object] = {}

    def _encrypted_bias(
        self,
        stage_index: int,
        affine_index: int,
        affine: ScaledAffine,
        input_exponent: int,
        public_key: PaillierPublicKey,
    ):
        from ..crypto.tensor import EncryptedTensor

        key = (stage_index, affine_index, input_exponent)
        cached = self._bias_cache.get(key)
        if cached is None:
            cached = EncryptedTensor.encrypt(
                affine.bias_at(input_exponent), public_key, self._rng,
                exponent=input_exponent + affine.decimals,
            )
            self._bias_cache[key] = cached
        return cached

    def register_public_key(self, public_key: PaillierPublicKey) -> None:
        """Receive the data provider's public key at session setup."""
        self._public_key = public_key
        if self.engine is None or self.engine.public_key.n != public_key.n:
            self.engine = PaillierEngine(
                public_key,
                workers=self.config.workers,
                pool_size=self.config.blinding_pool_size,
                window_bits=self.config.power_window_bits,
                seed=self.config.seed ^ 0x4D50E,
                obs=self.obs,
                dispatch_min_items=self.config.dispatch_min_items,
                backend=self.config.bigint_backend,
                power_cache_entries=self.config.power_cache_entries,
            )

    def nonlinear_activations(self, stage_index: int) -> List[str]:
        """Activation specs of a non-linear stage (protocol-public).

        Parameterized activations carry their (non-secret,
        architectural) parameter in the spec, e.g. ``leaky_relu:0.01``.
        """
        stage = self.stages[stage_index]
        if stage.kind is not LayerKind.NONLINEAR:
            raise ProtocolError(f"stage {stage_index} is not non-linear")
        return [activation_spec(primitive.layer)
                for primitive in stage.primitives]

    def compression_stats(self) -> List[CompressionStats | None]:
        """Per-stage compression structure for the planner cost model.

        One entry per merged stage (aligned with :attr:`stages`):
        ``None`` for non-linear stages and for linear stages running
        the dense path, else a :class:`~repro.costs.CompressionStats`
        aggregated over the stage's planned affines — feed the list to
        :func:`repro.planner.profiling.profile_primitive_times` so
        stage assignment charges compressed layers their surviving
        exponentiations instead of the dense count.
        """
        out: List[CompressionStats | None] = []
        for stage in self.stages:
            stage_plan = self._linear_plans.get(stage.index)
            plans = ([p for p in stage_plan.matvec_plans
                      if p is not None]
                     if stage_plan is not None else [])
            if not plans:
                out.append(None)
                continue
            total = sum(p.total for p in plans)
            nnz = sum(p.nnz for p in plans)
            ncols = sum(len(p.columns) for p in plans)
            pairs = sum(p.distinct_pairs for p in plans)
            out.append(CompressionStats(
                density=(nnz / total if total else 1.0),
                clusters=max(p.distinct_values for p in plans) or None,
                distinct_per_column=(pairs / ncols if ncols else None),
            ))
        return out

    def process_linear_stage(
        self,
        stage_index: int,
        tensor: EncryptedTensor,
        inbound_obfuscation_round: int | None,
        final: bool,
    ) -> tuple[EncryptedTensor, int | None]:
        """Steps (x.5)/(x.6)/(x.7) of Figure 3 for one linear stage.

        Args:
            stage_index: index of the linear merged primitive.
            tensor: encrypted (possibly still-permuted) input tensor.
            inbound_obfuscation_round: obfuscator round id the inbound
                tensor is permuted under, or None in the first round.
            final: True for the last linear stage — its output is sent
                back *without* obfuscation (step 3.4).

        Returns:
            (output tensor, obfuscation round id or None when final).
        """
        if self._public_key is None:
            raise ProtocolError("public key not registered")
        if not isinstance(tensor, EncryptedTensor):
            raise SecurityViolationError(
                "model provider only accepts encrypted tensors"
            )
        plan = self._linear_plans.get(stage_index)
        if plan is None:
            raise ProtocolError(f"stage {stage_index} is not linear")
        self.observed.append("ciphertext")
        stage_start = time.perf_counter()

        cells = list(tensor.flatten().cells())
        if inbound_obfuscation_round is not None:
            cells = self._obfuscator.deobfuscate(
                inbound_obfuscation_round, cells
            )
        current = EncryptedTensor(
            tensor.public_key, cells, (len(cells),), tensor.exponent
        )
        for affine_index, affine in enumerate(plan.affines):
            encrypted_bias = self._encrypted_bias(
                stage_index, affine_index, affine, current.exponent,
                tensor.public_key,
            )
            current = current.affine(
                affine.weight,
                encrypted_bias,
                self._rng,
                weight_exponent=affine.decimals,
                engine=self.engine,
                plan=plan.matvec_plans[affine_index],
            )
        if final:
            self.obs.registry.histogram(
                "protocol_linear_stage_seconds", stage=str(stage_index)
            ).observe(time.perf_counter() - stage_start)
            return current, None
        round_id, permuted = self._obfuscator.obfuscate(
            list(current.cells())
        )
        permuted_tensor = EncryptedTensor(
            current.public_key, permuted, (len(permuted),),
            current.exponent,
        )
        self.obs.registry.histogram(
            "protocol_linear_stage_seconds", stage=str(stage_index)
        ).observe(time.perf_counter() - stage_start)
        return permuted_tensor, round_id

    # -- lane packing ---------------------------------------------------

    def plan_lane_packing(self, batch: int) -> LanePlan:
        """Admission analysis for packing ``batch`` samples per
        ciphertext (cached — the model and key size are fixed)."""
        plan = self._lane_plans.get(batch)
        if plan is None:
            plan = _plan_lane_packing(
                self._model, self.decimals, self.config.key_size,
                lanes=batch,
            )
            self._lane_plans[batch] = plan
        return plan

    def lane_packer(self, batch: int) -> LanePacker | None:
        """The packer for an admitted batch size, or None.

        The lane geometry is derived from protocol-public quantities
        (key size, scaling exponent, worst-case magnitude bounds of
        the *scaled* model), so sharing the packer with the data
        provider leaks nothing beyond the batch size.
        """
        if self._public_key is None:
            raise ProtocolError("public key not registered")
        plan = self.plan_lane_packing(batch)
        if not plan.admitted:
            return None
        return LanePacker(
            self._public_key, lanes=batch,
            mag_bits=plan.mag_bits, guard_bits=plan.guard_bits,
        )

    def _encrypted_bias_packed(
        self,
        stage_index: int,
        affine_index: int,
        affine: ScaledAffine,
        input_exponent: int,
        packer: LanePacker,
        batch: int,
    ) -> PackedEncryptedTensor:
        key = (stage_index, affine_index, input_exponent, batch,
               packer.lane_bits)
        cached = self._packed_bias_cache.get(key)
        if cached is None:
            bias = affine.bias_at(input_exponent)
            lanes = [[int(b)] * batch for b in np.asarray(bias).reshape(-1)]
            cells = self.engine.encrypt_many_packed(
                lanes, packer, rng=self._rng
            )
            cached = PackedEncryptedTensor(
                packer.public_key, cells, (len(cells),), packer, batch,
                exponent=input_exponent + affine.decimals,
            )
            self._packed_bias_cache[key] = cached
        return cached

    def process_linear_stage_packed(
        self,
        stage_index: int,
        tensor: PackedEncryptedTensor,
        inbound_obfuscation_round: int | None,
        final: bool,
    ) -> tuple[PackedEncryptedTensor, int | None]:
        """Lane-packed twin of :meth:`process_linear_stage`.

        One homomorphic pass serves every sample in the batch; the
        obfuscator permutes packed cells exactly as it permutes scalar
        ones (all lanes of a position travel together, so the whole
        batch shares one permutation per round).
        """
        if self._public_key is None:
            raise ProtocolError("public key not registered")
        if not isinstance(tensor, PackedEncryptedTensor):
            raise SecurityViolationError(
                "model provider only accepts encrypted tensors"
            )
        plan = self._linear_plans.get(stage_index)
        if plan is None:
            raise ProtocolError(f"stage {stage_index} is not linear")
        self.observed.append("ciphertext")
        stage_start = time.perf_counter()

        cells = list(tensor.flatten().cells())
        if inbound_obfuscation_round is not None:
            cells = self._obfuscator.deobfuscate(
                inbound_obfuscation_round, cells
            )
        current = PackedEncryptedTensor(
            tensor.public_key, cells, (len(cells),), tensor.packer,
            tensor.batch, tensor.exponent,
        )
        for affine_index, affine in enumerate(plan.affines):
            encrypted_bias = self._encrypted_bias_packed(
                stage_index, affine_index, affine, current.exponent,
                tensor.packer, tensor.batch,
            )
            current = current.affine(
                affine.weight,
                encrypted_bias,
                self._rng,
                weight_exponent=affine.decimals,
                engine=self.engine,
                plan=plan.matvec_plans[affine_index],
            )
        histogram = self.obs.registry.histogram(
            "protocol_linear_stage_seconds", stage=str(stage_index)
        )
        if final:
            histogram.observe(time.perf_counter() - stage_start)
            return current, None
        round_id, permuted = self._obfuscator.obfuscate(
            list(current.cells())
        )
        permuted_tensor = PackedEncryptedTensor(
            current.public_key, permuted, (len(permuted),),
            current.packer, current.batch, current.exponent,
        )
        histogram.observe(time.perf_counter() - stage_start)
        return permuted_tensor, round_id


class DataProvider:
    """Holds the keypair and raw input; executes non-linear stages."""

    def __init__(
        self,
        value_decimals: int,
        config: RuntimeConfig = DEFAULT_CONFIG,
        obs: Observability | None = None,
    ):
        if value_decimals < 0:
            raise ProtocolError("value_decimals must be non-negative")
        self.value_decimals = value_decimals
        self.config = config
        #: Observability sinks (see :class:`ModelProvider.obs`).
        self.obs = obs if obs is not None \
            else Observability.from_config(config)
        self._rng = random.Random(config.seed ^ 0x4450)
        self.public_key, self._private_key = generate_keypair(
            config.key_size, seed=config.seed ^ 0x6B65
        )
        #: Batched crypto engine.  As the key holder, the data
        #: provider's engine uses CRT-accelerated blinding for its
        #: offline pool (sound only on this side of the protocol).
        self.engine = PaillierEngine(
            self.public_key,
            private_key=self._private_key,
            workers=config.workers,
            pool_size=config.blinding_pool_size,
            window_bits=config.power_window_bits,
            seed=config.seed ^ 0x4450E,
            obs=self.obs,
            dispatch_min_items=config.dispatch_min_items,
            backend=config.bigint_backend,
            power_cache_entries=config.power_cache_entries,
        )
        # The paper's offline phase: precompute the blinding-factor
        # pool now, before any request arrives, so online encryption
        # during streaming is one modular multiply per ciphertext.
        self.engine.prefill()
        #: Decrypted intermediate vectors observed (permuted except the
        #: final round) — inspected by the security tests.
        self.observed_plaintexts: List[np.ndarray] = []

    def encrypt_input(self, x: np.ndarray) -> EncryptedTensor:
        """Step (1.1): scale the raw input and encrypt element-wise."""
        from ..scaling.fixed_point import scale_to_int

        start = time.perf_counter()
        x = np.asarray(x, dtype=np.float64)
        scaled = scale_to_int(x, self.value_decimals)
        tensor = EncryptedTensor.encrypt(
            scaled, self.public_key,
            exponent=self.value_decimals,
            engine=self.engine,
        )
        self.obs.registry.histogram(
            "protocol_encrypt_seconds"
        ).observe(time.perf_counter() - start)
        return tensor

    def process_nonlinear_stage(
        self,
        tensor: EncryptedTensor,
        activations: Sequence[str],
        final: bool,
    ) -> EncryptedTensor | np.ndarray:
        """Steps (2.1)-(2.3) (or (3.5)-(3.7) when final) of Figure 3.

        Decrypt, run the activations on the (permuted) plaintext, and
        re-encrypt — or, in the final round, return the inference
        result as floats.
        """
        start = time.perf_counter()
        values = tensor.decrypt_float(self._private_key,
                                      engine=self.engine)
        self.observed_plaintexts.append(values.copy())
        flat = values.reshape(-1)
        for activation in activations:
            flat = self._apply_activation(activation, flat, final)
        histogram = self.obs.registry.histogram(
            "protocol_nonlinear_stage_seconds", final=str(final).lower()
        )
        if final:
            histogram.observe(time.perf_counter() - start)
            return flat
        from ..scaling.fixed_point import scale_to_int

        rescaled = scale_to_int(flat, self.value_decimals)
        result = EncryptedTensor.encrypt(
            rescaled, self.public_key,
            exponent=self.value_decimals,
            engine=self.engine,
        )
        histogram.observe(time.perf_counter() - start)
        return result

    def _apply_activation(
        self, activation: str, flat: np.ndarray, final: bool
    ) -> np.ndarray:
        return apply_activation(activation, flat, final)

    # -- lane packing ---------------------------------------------------

    def encrypt_input_batch(
        self, xs: np.ndarray, packer: LanePacker
    ) -> PackedEncryptedTensor:
        """Packed step (1.1): one ciphertext per position for the
        whole batch of inputs (shape ``(batch, *sample_shape)``)."""
        from ..scaling.fixed_point import scale_to_int

        start = time.perf_counter()
        xs = np.asarray(xs, dtype=np.float64)
        scaled = scale_to_int(xs, self.value_decimals)
        tensor = PackedEncryptedTensor.encrypt_batch(
            scaled, packer,
            exponent=self.value_decimals,
            engine=self.engine,
        )
        self.obs.registry.histogram(
            "protocol_encrypt_seconds"
        ).observe(time.perf_counter() - start)
        return tensor

    def process_nonlinear_stage_packed(
        self,
        tensor: PackedEncryptedTensor,
        activations: Sequence[str],
        final: bool,
    ) -> PackedEncryptedTensor | np.ndarray:
        """Lane-packed twin of :meth:`process_nonlinear_stage`.

        One CRT decryption per position serves the whole batch; the
        activations run row-wise (SoftMax normalizes each sample
        independently).  The decrypted (batch, positions) block is
        recorded in ``observed_plaintexts`` like the scalar path —
        every row is permuted under the same round permutation.
        """
        start = time.perf_counter()
        values = tensor.decrypt_float(self._private_key,
                                      engine=self.engine)
        self.observed_plaintexts.append(values.copy())
        rows = values.reshape(tensor.batch, -1)
        for activation in activations:
            rows = apply_activation_batch(activation, rows, final)
        histogram = self.obs.registry.histogram(
            "protocol_nonlinear_stage_seconds", final=str(final).lower()
        )
        if final:
            histogram.observe(time.perf_counter() - start)
            return rows
        from ..scaling.fixed_point import scale_to_int

        rescaled = scale_to_int(rows, self.value_decimals)
        result = PackedEncryptedTensor.encrypt_batch(
            rescaled, tensor.packer,
            exponent=self.value_decimals,
            engine=self.engine,
        )
        histogram.observe(time.perf_counter() - start)
        return result


def activation_spec(layer) -> str:
    """The protocol-public activation spec string of a layer."""
    from ..nn.layers import LeakyReLU

    if isinstance(layer, LeakyReLU):
        return f"leaky_relu:{layer.alpha}"
    return layer.name


def apply_activation(spec: str, flat: np.ndarray,
                     final: bool) -> np.ndarray:
    """Execute one activation spec on a flat (possibly permuted)
    vector.  ReLU/LeakyReLU/Sigmoid/Tanh are element-wise and legal on
    permuted data; SoftMax is position-sensitive and only legal in the
    final round (Section III-C)."""
    name, _, parameter = spec.partition(":")
    if name == "relu":
        return np.maximum(flat, 0.0)
    if name == "leaky_relu":
        alpha = float(parameter) if parameter else 0.01
        return np.where(flat > 0, flat, alpha * flat)
    if name == "tanh":
        return np.tanh(flat)
    if name == "sigmoid":
        out = np.empty_like(flat)
        positive = flat >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-flat[positive]))
        exp_x = np.exp(flat[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return out
    if name == "softmax":
        if not final:
            raise SecurityViolationError(
                "SoftMax is position-sensitive and only legal in the "
                "final, non-obfuscated round (Section III-C)"
            )
        shifted = flat - flat.max()
        exp = np.exp(shifted)
        return exp / exp.sum()
    raise ProtocolError(f"unknown activation {spec!r}")


def apply_activation_batch(spec: str, rows: np.ndarray,
                           final: bool) -> np.ndarray:
    """Batch (row-per-sample) form of :func:`apply_activation`.

    Element-wise activations vectorize over the 2-D block unchanged;
    SoftMax must normalize each sample's row independently."""
    name = spec.partition(":")[0]
    if name == "softmax":
        if not final:
            raise SecurityViolationError(
                "SoftMax is position-sensitive and only legal in the "
                "final, non-obfuscated round (Section III-C)"
            )
        shifted = rows - rows.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
    return apply_activation(spec, rows, final)
