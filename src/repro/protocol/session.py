"""Orchestration of the Figure 3 workflow over merged stages.

An :class:`InferenceSession` walks the alternating linear/non-linear
stage sequence round by round: the data provider encrypts, the model
provider runs the linear stage and obfuscates (except in the last
round), the data provider decrypts/activates/re-encrypts, and so on,
until the final non-obfuscated round yields the inference result.

Every exchanged tensor is logged into a :class:`Transcript` so tests
can verify the security properties of Section III-D mechanically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..crypto.serialize import tensor_frame_bytes
from ..crypto.tensor import PackedEncryptedTensor
from ..errors import DeadlineExceededError, ProtocolError
from ..nn.layers import LayerKind
from ..observability import OBS_OFF, Observability
from .message import CIPHERTEXT, CIPHERTEXT_OBFUSCATED, Message, Transcript
from .roles import DataProvider, ModelProvider


@dataclass(frozen=True)
class InferenceOutcome:
    """Result of one collaborative inference.

    Attributes:
        probabilities: final activation output (e.g. SoftMax vector).
        prediction: argmax class.
        transcript: all exchanged messages.
        wall_time: end-to-end seconds.
    """

    probabilities: np.ndarray
    prediction: int
    transcript: Transcript
    wall_time: float


class InferenceSession:
    """Binds a model provider and a data provider for inference."""

    def __init__(self, model_provider: ModelProvider,
                 data_provider: DataProvider,
                 rate_limiter=None,
                 obs: Observability | None = None):
        self.model_provider = model_provider
        self.data_provider = data_provider
        #: Observability sinks.  Defaults to whichever party has
        #: observability enabled (model provider first), so a session
        #: built from instrumented parties traces without extra wiring.
        if obs is None:
            for candidate in (getattr(model_provider, "obs", None),
                              getattr(data_provider, "obs", None)):
                if candidate is not None and candidate.enabled:
                    obs = candidate
                    break
        self.obs = obs if obs is not None else OBS_OFF
        #: Optional model-stealing countermeasure (Section II-C): a
        #: :class:`repro.protocol.ratelimit.RateLimiter` consulted
        #: before each request is served.
        self.rate_limiter = rate_limiter
        stages = model_provider.stages
        kinds = [stage.kind for stage in stages]
        if kinds[0] is not LayerKind.LINEAR:
            raise ProtocolError(
                "the protocol assumes the network starts with a linear "
                "layer (Section III-A)"
            )
        if kinds[-1] is not LayerKind.NONLINEAR:
            raise ProtocolError(
                "the protocol assumes the network ends with a non-linear "
                "layer (Section III-A)"
            )
        for position, kind in enumerate(kinds):
            expected = (
                LayerKind.LINEAR if position % 2 == 0
                else LayerKind.NONLINEAR
            )
            if kind is not expected:
                raise ProtocolError(
                    f"stages must alternate linear/non-linear; stage "
                    f"{position} is {kind.value}"
                )
        model_provider.register_public_key(data_provider.public_key)
        self._num_pairs = len(stages) // 2
        self._cipher_bytes = 2 * data_provider.public_key.key_size // 8

    def _frame_bytes(self, tensor) -> int:
        """Exact framed wire size of a tensor, per the serialize
        v2 format (header + dims + fixed-width ciphertexts)."""
        return tensor_frame_bytes(
            self.data_provider.public_key.key_size,
            rank=len(tensor.shape),
            size=tensor.size,
            packed=isinstance(tensor, PackedEncryptedTensor),
        )

    def run(self, x: np.ndarray,
            deadline: float | None = None) -> InferenceOutcome:
        """Execute the full workflow for one input tensor.

        Args:
            x: raw input tensor.
            deadline: optional end-to-end budget in seconds; checked
                between protocol rounds (the stream runtime's
                per-request deadline, applied to the sequential path).

        Raises:
            RateLimitExceeded: when a rate limiter is configured and
                the data provider exceeded its allowance.
            DeadlineExceededError: the request blew its deadline.
        """
        if deadline is not None and deadline <= 0:
            raise ProtocolError("deadline must be positive seconds")
        if self.rate_limiter is not None:
            self.rate_limiter.admit()
        start = time.perf_counter()

        def check_deadline(round_index: int) -> None:
            if deadline is None:
                return
            elapsed = time.perf_counter() - start
            if elapsed > deadline:
                raise DeadlineExceededError(
                    f"inference blew its {deadline}s deadline after "
                    f"{elapsed:.3f}s ({round_index}/{self._num_pairs} "
                    "rounds complete)"
                )

        transcript = Transcript()
        tracer = self.obs.tracer
        registry = self.obs.registry
        trace_id = tracer.new_trace_id("inf")
        with tracer.span("inference", trace_id=trace_id) as root:
            with tracer.span("encrypt-input", trace_id=trace_id,
                             parent_id=root.span_id):
                tensor = self.data_provider.encrypt_input(np.asarray(x))
            obfuscation_round: int | None = None

            for pair in range(self._num_pairs):
                check_deadline(pair)
                linear_index = 2 * pair
                nonlinear_index = 2 * pair + 1
                final = pair == self._num_pairs - 1

                transcript.record(Message(
                    sender="data",
                    kind=(CIPHERTEXT if obfuscation_round is None
                          else CIPHERTEXT_OBFUSCATED),
                    elements=tensor.size,
                    bytes_estimate=tensor.size * self._cipher_bytes,
                    round_index=pair,
                    stage_index=linear_index,
                    obfuscation_round=obfuscation_round,
                    bytes_actual=self._frame_bytes(tensor),
                ))
                round_start = time.perf_counter()
                with tracer.span("linear-round", trace_id=trace_id,
                                 parent_id=root.span_id, round=pair,
                                 stage=linear_index):
                    tensor, outbound_round = \
                        self.model_provider.process_linear_stage(
                            linear_index, tensor, obfuscation_round,
                            final,
                        )
                registry.histogram(
                    "protocol_round_seconds", kind="linear",
                    stage=str(linear_index),
                ).observe(time.perf_counter() - round_start)
                transcript.record(Message(
                    sender="model",
                    kind=(CIPHERTEXT if outbound_round is None
                          else CIPHERTEXT_OBFUSCATED),
                    elements=tensor.size,
                    bytes_estimate=tensor.size * self._cipher_bytes,
                    round_index=pair,
                    stage_index=linear_index,
                    obfuscation_round=outbound_round,
                    bytes_actual=self._frame_bytes(tensor),
                ))

                activations = self.model_provider.nonlinear_activations(
                    nonlinear_index
                )
                round_start = time.perf_counter()
                with tracer.span("nonlinear-round", trace_id=trace_id,
                                 parent_id=root.span_id, round=pair,
                                 stage=nonlinear_index):
                    result = self.data_provider.process_nonlinear_stage(
                        tensor, activations, final,
                    )
                registry.histogram(
                    "protocol_round_seconds", kind="nonlinear",
                    stage=str(nonlinear_index),
                ).observe(time.perf_counter() - round_start)
                if final:
                    probabilities = np.asarray(result)
                    elapsed = time.perf_counter() - start
                    root.set_attr("prediction",
                                  int(probabilities.argmax()))
                    return InferenceOutcome(
                        probabilities=probabilities,
                        prediction=int(probabilities.argmax()),
                        transcript=transcript,
                        wall_time=elapsed,
                    )
                tensor = result
                obfuscation_round = outbound_round
        raise ProtocolError("stage walk ended without a final round")

    def run_batch(self, batch: np.ndarray,
                  deadline: float | None = None
                  ) -> list[InferenceOutcome]:
        """Run inference for a batch of samples.

        With ``config.pack_lanes > 1`` and a model the lane headroom
        analysis admits, up to ``pack_lanes`` samples ride in each
        ciphertext (one homomorphic pass per chunk; ``deadline`` then
        applies per packed chunk).  Otherwise every sample runs through
        :meth:`run` individually and ``deadline`` applies per sample.
        The ``packing_requests`` counter records which way each batch
        went; ``packing_fallbacks`` carries the reason.
        """
        batch = np.asarray(batch)
        lanes = getattr(self.model_provider.config, "pack_lanes", 0)
        if lanes <= 1 or len(batch) <= 1:
            return [self.run(sample, deadline=deadline)
                    for sample in batch]
        registry = self.obs.registry
        group = min(lanes, len(batch))
        plan = self.model_provider.plan_lane_packing(group)
        if not plan.admitted:
            registry.counter("packing_requests",
                             result="fallback").inc()
            registry.counter(
                "packing_fallbacks",
                reason=("headroom" if plan.reason is not None
                        and plan.reason.startswith("headroom")
                        else "capacity"),
            ).inc()
            return [self.run(sample, deadline=deadline)
                    for sample in batch]
        registry.counter("packing_requests", result="packed").inc()
        outcomes: list[InferenceOutcome] = []
        for start in range(0, len(batch), group):
            chunk = batch[start:start + group]
            if len(chunk) == 1:
                outcomes.append(self.run(chunk[0], deadline=deadline))
                continue
            packer = self.model_provider.lane_packer(len(chunk))
            outcomes.extend(self._run_packed(chunk, packer, deadline))
        return outcomes

    def _run_packed(self, batch: np.ndarray, packer,
                    deadline: float | None) -> list[InferenceOutcome]:
        """One packed pass of the Figure 3 workflow for a whole chunk.

        The chunk's samples share one transcript (their ciphertexts
        literally share cells on the wire) and one wall time.
        """
        if deadline is not None and deadline <= 0:
            raise ProtocolError("deadline must be positive seconds")
        if self.rate_limiter is not None:
            # Each packed sample is still one request for rate purposes.
            for _ in range(len(batch)):
                self.rate_limiter.admit()
        start = time.perf_counter()

        def check_deadline(round_index: int) -> None:
            if deadline is None:
                return
            elapsed = time.perf_counter() - start
            if elapsed > deadline:
                raise DeadlineExceededError(
                    f"packed inference blew its {deadline}s deadline "
                    f"after {elapsed:.3f}s ({round_index}/"
                    f"{self._num_pairs} rounds complete)"
                )

        transcript = Transcript()
        tracer = self.obs.tracer
        registry = self.obs.registry
        trace_id = tracer.new_trace_id("inf")
        with tracer.span("inference-packed", trace_id=trace_id,
                         batch=len(batch)) as root:
            with tracer.span("encrypt-input", trace_id=trace_id,
                             parent_id=root.span_id):
                tensor = self.data_provider.encrypt_input_batch(
                    np.asarray(batch), packer
                )
            obfuscation_round: int | None = None

            for pair in range(self._num_pairs):
                check_deadline(pair)
                linear_index = 2 * pair
                nonlinear_index = 2 * pair + 1
                final = pair == self._num_pairs - 1

                transcript.record(Message(
                    sender="data",
                    kind=(CIPHERTEXT if obfuscation_round is None
                          else CIPHERTEXT_OBFUSCATED),
                    elements=tensor.size,
                    bytes_estimate=tensor.size * self._cipher_bytes,
                    round_index=pair,
                    stage_index=linear_index,
                    obfuscation_round=obfuscation_round,
                    bytes_actual=self._frame_bytes(tensor),
                ))
                round_start = time.perf_counter()
                with tracer.span("linear-round", trace_id=trace_id,
                                 parent_id=root.span_id, round=pair,
                                 stage=linear_index):
                    tensor, outbound_round = \
                        self.model_provider.process_linear_stage_packed(
                            linear_index, tensor, obfuscation_round,
                            final,
                        )
                registry.histogram(
                    "protocol_round_seconds", kind="linear",
                    stage=str(linear_index),
                ).observe(time.perf_counter() - round_start)
                transcript.record(Message(
                    sender="model",
                    kind=(CIPHERTEXT if outbound_round is None
                          else CIPHERTEXT_OBFUSCATED),
                    elements=tensor.size,
                    bytes_estimate=tensor.size * self._cipher_bytes,
                    round_index=pair,
                    stage_index=linear_index,
                    obfuscation_round=outbound_round,
                    bytes_actual=self._frame_bytes(tensor),
                ))

                activations = self.model_provider.nonlinear_activations(
                    nonlinear_index
                )
                round_start = time.perf_counter()
                with tracer.span("nonlinear-round", trace_id=trace_id,
                                 parent_id=root.span_id, round=pair,
                                 stage=nonlinear_index):
                    result = \
                        self.data_provider.process_nonlinear_stage_packed(
                            tensor, activations, final,
                        )
                registry.histogram(
                    "protocol_round_seconds", kind="nonlinear",
                    stage=str(nonlinear_index),
                ).observe(time.perf_counter() - round_start)
                if final:
                    rows = np.asarray(result)
                    elapsed = time.perf_counter() - start
                    root.set_attr("predictions",
                                  [int(row.argmax()) for row in rows])
                    return [
                        InferenceOutcome(
                            probabilities=row,
                            prediction=int(row.argmax()),
                            transcript=transcript,
                            wall_time=elapsed,
                        )
                        for row in rows
                    ]
                tensor = result
                obfuscation_round = outbound_round
        raise ProtocolError("stage walk ended without a final round")
