"""Protocol messages and transcripts.

Every tensor exchanged between providers is wrapped in a
:class:`Message` that records direction, payload classification
(ciphertext vs plaintext, obfuscated or not), and size.  The
:class:`Transcript` aggregates messages per session; the security tests
assert properties over it — e.g. "the model provider never received a
plaintext" and "every intermediate tensor the data provider received
was obfuscated".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ProtocolError

#: Payload classifications.
CIPHERTEXT = "ciphertext"
CIPHERTEXT_OBFUSCATED = "ciphertext+obfuscated"

VALID_KINDS = (CIPHERTEXT, CIPHERTEXT_OBFUSCATED)


@dataclass(frozen=True)
class Message:
    """One provider-to-provider tensor transfer.

    Attributes:
        sender: "data" or "model".
        kind: payload classification (always a ciphertext variant —
            the protocol never sends plaintext over the wire, which the
            constructor enforces).
        elements: tensor element count.
        bytes_estimate: analytic wire size estimate (2 bytes per
            modulus bit per element — the paper's Section V figure).
        round_index: protocol round (0 = first).
        stage_index: pipeline stage the payload feeds/leaves.
        obfuscation_round: obfuscator round id, when permuted.
        bytes_actual: exact framed wire size per
            :func:`repro.crypto.serialize.tensor_frame_bytes`; ``None``
            for transcripts recorded before actual accounting existed.
    """

    sender: str
    kind: str
    elements: int
    bytes_estimate: int
    round_index: int
    stage_index: int
    obfuscation_round: int | None = None
    bytes_actual: int | None = None

    def __post_init__(self) -> None:
        if self.sender not in ("data", "model"):
            raise ProtocolError(f"unknown sender {self.sender!r}")
        if self.kind not in VALID_KINDS:
            raise ProtocolError(
                f"illegal payload kind {self.kind!r}: the protocol only "
                "ever exchanges ciphertexts (Section III-D)"
            )
        if self.elements < 1:
            raise ProtocolError("message must carry at least one element")

    @property
    def obfuscated(self) -> bool:
        return self.kind == CIPHERTEXT_OBFUSCATED


@dataclass
class Transcript:
    """All messages of one inference session, in order."""

    messages: List[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        self.messages.append(message)

    def from_sender(self, sender: str) -> List[Message]:
        return [m for m in self.messages if m.sender == sender]

    @property
    def total_elements(self) -> int:
        return sum(m.elements for m in self.messages)

    @property
    def total_bytes(self) -> int:
        """Total wire bytes, preferring exact frame sizes.

        Messages recorded with :attr:`Message.bytes_actual` contribute
        their real framed size; older ones fall back to the analytic
        estimate.  :attr:`total_bytes_estimate` keeps the pure-analytic
        number available as a cross-check.
        """
        return sum(
            m.bytes_actual if m.bytes_actual is not None
            else m.bytes_estimate
            for m in self.messages
        )

    @property
    def total_bytes_estimate(self) -> int:
        """Analytic total (2 bytes per modulus bit per element)."""
        return sum(m.bytes_estimate for m in self.messages)

    @property
    def rounds(self) -> int:
        if not self.messages:
            return 0
        return max(m.round_index for m in self.messages) + 1

    def all_ciphertext(self) -> bool:
        """Security check: nothing but ciphertexts ever crossed the wire."""
        return all(m.kind in VALID_KINDS for m in self.messages)
